#include "stochastic/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace qs::stochastic {

std::uint64_t binomial_sample(Xoshiro256& rng, std::uint64_t n, double prob) {
  require(prob >= 0.0 && prob <= 1.0, "binomial_sample: prob must be in [0, 1]");
  if (n == 0 || prob == 0.0) return 0;
  if (prob == 1.0) return n;

  // Work with p <= 1/2 and mirror at the end (keeps both branches stable).
  const bool mirrored = prob > 0.5;
  const double p = mirrored ? 1.0 - prob : prob;
  const double np = static_cast<double>(n) * p;

  std::uint64_t k;
  if (np < 30.0) {
    // Inverse-CDF walk over the PMF recurrence
    // P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
    const double ratio = p / (1.0 - p);
    double pmf = std::pow(1.0 - p, static_cast<double>(n));  // P(0)
    double cdf = pmf;
    double u = rng.uniform();
    k = 0;
    while (u > cdf && k < n) {
      pmf *= static_cast<double>(n - k) / static_cast<double>(k + 1) * ratio;
      cdf += pmf;
      ++k;
      if (pmf < 1e-300 && cdf >= 1.0 - 1e-12) break;  // numerical tail guard
    }
  } else {
    // Normal approximation with continuity correction; npq >= 15 here, so
    // the approximation error is negligible next to sampling noise.
    const double mean = np;
    const double stddev = std::sqrt(np * (1.0 - p));
    // Box-Muller from two uniforms.
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double value = std::round(mean + stddev * z);
    k = static_cast<std::uint64_t>(std::clamp(value, 0.0, static_cast<double>(n)));
  }
  return mirrored ? n - k : k;
}

void multinomial_sample_into(Xoshiro256& rng, std::uint64_t n,
                             std::span<const double> probabilities,
                             std::span<std::uint64_t> counts) {
  require(!probabilities.empty(), "multinomial_sample: empty probability vector");
  require(counts.size() == probabilities.size(),
          "multinomial_sample: counts/probabilities size mismatch");
  double total = 0.0;
  std::size_t last_positive = probabilities.size();
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    require(probabilities[i] >= 0.0,
            "multinomial_sample: probabilities must be nonnegative");
    total += probabilities[i];
    if (probabilities[i] > 0.0) last_positive = i;
  }
  require(std::abs(total - 1.0) < 1e-6,
          "multinomial_sample: probabilities must sum to 1");
  // total ~ 1 guarantees at least one strictly positive category.
  require(last_positive < probabilities.size(),
          "multinomial_sample: no positive-probability category");

  std::fill(counts.begin(), counts.end(), std::uint64_t{0});

  // Conditional-binomial decomposition: category i receives
  // Bin(remaining, p_i / remaining_mass).  The loop stops at the last
  // positive-probability category, which absorbs whatever floating-point
  // fall-through (an early remaining_mass underflow, conditionals rounded
  // below 1) left undistributed — never a zero-probability tail category.
  std::uint64_t remaining = n;
  double remaining_mass = total;
  for (std::size_t i = 0; i < last_positive && remaining > 0; ++i) {
    if (probabilities[i] <= 0.0) continue;
    const double conditional =
        std::clamp(probabilities[i] / remaining_mass, 0.0, 1.0);
    counts[i] = binomial_sample(rng, remaining, conditional);
    remaining -= counts[i];
    remaining_mass -= probabilities[i];
    if (remaining_mass <= 0.0) break;
  }
  counts[last_positive] += remaining;
}

std::vector<std::uint64_t> multinomial_sample(Xoshiro256& rng, std::uint64_t n,
                                              std::span<const double> probabilities) {
  std::vector<std::uint64_t> counts(probabilities.size(), 0);
  multinomial_sample_into(rng, n, probabilities, counts);
  return counts;
}

std::size_t categorical_sample(Xoshiro256& rng, std::span<const double> weights) {
  require(!weights.empty(), "categorical_sample: empty weight vector");
  double total = 0.0;
  std::size_t last_positive = weights.size();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    require(weights[i] >= 0.0, "categorical_sample: weights must be nonnegative");
    total += weights[i];
    if (weights[i] > 0.0) last_positive = i;
  }
  require(total > 0.0, "categorical_sample: all weights are zero");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;  // zero-weight indices are never returned
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  // Floating-point fall-through (u marginally above the sequentially
  // subtracted total): land on the last positive-weight index, not on a
  // possibly zero-weight final entry.
  return last_positive;
}

void sanitize_distribution(std::span<double> probabilities) {
  require(!probabilities.empty(), "sanitize_distribution: empty vector");
  // Clamp BEFORE summing: the clamped mass then never enters the
  // normaliser, so the rescaled entries sum to 1 exactly (to rounding).
  double total = 0.0;
  for (double& v : probabilities) {
    if (!(v > 0.0)) v = 0.0;  // negatives, -0.0, and NaN carry no mass
    total += v;
  }
  require(total > 0.0 && std::isfinite(total),
          "sanitize_distribution: no positive mass");
  const double inv = 1.0 / total;
  for (double& v : probabilities) v *= inv;
}

}  // namespace qs::stochastic
