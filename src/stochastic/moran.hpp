// Moran mutation-selection process: the overlapping-generations
// counterpart of Wright-Fisher.
//
// One event replaces one individual: a parent is drawn with probability
// proportional to fitness, its offspring mutates per site, and a uniformly
// random individual dies.  N_pop events make one "generation".  The Moran
// process has the same infinite-population limit as Wright-Fisher but
// different fluctuation structure (fixation probabilities, effective
// population size N_e = N_pop/2), which the tests exercise.
#pragma once

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "stochastic/population.hpp"
#include "support/rng.hpp"

namespace qs::stochastic {

/// Moran process bound to a model, landscape, and RNG stream.
class Moran {
 public:
  /// `model` must be a 2x2-factor kind (offspring mutation is applied site
  /// by site); `landscape` is referenced and must outlive the process.
  Moran(core::MutationModel model, const core::Landscape& landscape,
        std::uint64_t seed);

  /// Same, from an explicit RNG stream (the ensemble engine hands every
  /// replica a seed-jumped stream so replicas stay independent and
  /// reproducible no matter how they are scheduled across threads).
  Moran(core::MutationModel model, const core::Landscape& landscape,
        Xoshiro256 stream);

  /// One birth-death event in place. Population size is conserved.
  void event(Population& population);

  /// Runs `events` birth-death events.
  void run(Population& population, std::uint64_t events);

 private:
  seq_t mutate_offspring(seq_t parent);

  core::MutationModel model_;
  const core::Landscape* landscape_;
  Xoshiro256 rng_;
  std::vector<double> weight_scratch_;
};

}  // namespace qs::stochastic
