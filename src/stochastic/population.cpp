#include "stochastic/population.hpp"

#include <numeric>

#include "support/contracts.hpp"

namespace qs::stochastic {

Population::Population(unsigned nu, std::uint64_t size) : nu_(nu), size_(size) {
  require(nu >= 1 && nu <= 24, "Population: nu out of the dense-count range");
  counts_.assign(sequence_count(nu), 0);
}

Population Population::monomorphic(unsigned nu, std::uint64_t size) {
  Population p(nu, size);
  p.counts_[0] = size;
  return p;
}

Population Population::uniform(unsigned nu, std::uint64_t size) {
  Population p(nu, size);
  const seq_t n = p.species_count();
  const std::uint64_t base = size / n;
  std::uint64_t remainder = size % n;
  for (seq_t i = 0; i < n; ++i) {
    p.counts_[i] = base + (i < remainder ? 1 : 0);
  }
  return p;
}

void Population::refresh_size() {
  size_ = std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

std::vector<double> Population::frequencies() const {
  require(size_ > 0, "frequencies(): empty population");
  std::vector<double> x(counts_.size());
  const double inv = 1.0 / static_cast<double>(size_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    x[i] = static_cast<double>(counts_[i]) * inv;
  }
  return x;
}

std::size_t Population::occupied_species() const {
  std::size_t occupied = 0;
  for (std::uint64_t c : counts_) occupied += (c > 0) ? 1 : 0;
  return occupied;
}

}  // namespace qs::stochastic
