#include "stochastic/wright_fisher.hpp"

#include "stochastic/sampling.hpp"
#include "support/contracts.hpp"

namespace qs::stochastic {

WrightFisher::WrightFisher(core::MutationModel model, const core::Landscape& landscape,
                           std::uint64_t seed)
    : WrightFisher(std::move(model), landscape, Xoshiro256(seed)) {}

WrightFisher::WrightFisher(core::MutationModel model, const core::Landscape& landscape,
                           Xoshiro256 stream)
    : model_(std::move(model)), landscape_(&landscape), rng_(stream) {
  require(model_.dimension() == landscape.dimension(),
          "WrightFisher: model and landscape dimensions differ");
}

std::vector<double> WrightFisher::expected_offspring(const Population& population) const {
  require(population.nu() == model_.nu(), "WrightFisher: population nu mismatch");
  require(population.size() > 0, "WrightFisher: empty population");
  const auto counts = population.counts();
  const auto f = landscape_->values();

  // pi = Q (f .* n) normalised: selection then mutation, via Fmmp.
  std::vector<double> pi(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    pi[i] = f[i] * static_cast<double>(counts[i]);
  }
  model_.apply(pi);
  // Clamp the butterfly's negative rounding dust BEFORE normalising: the
  // reverse order leaves |sum - 1| at twice the clamped mass, which can
  // trip the multinomial sampler's precondition.
  sanitize_distribution(pi);
  return pi;
}

void WrightFisher::step(Population& population) {
  const auto pi = expected_offspring(population);
  const std::uint64_t n = population.size();
  multinomial_sample_into(rng_, n, pi, population.counts());
  population.refresh_size();
}

std::vector<double> WrightFisher::run(Population& population,
                                      std::uint64_t generations,
                                      std::uint64_t average_window) {
  require(average_window <= generations,
          "WrightFisher::run: averaging window exceeds the run length");
  const std::size_t n = population.counts().size();
  std::vector<double> accumulated(n, 0.0);
  const std::uint64_t averaging_start = generations - average_window;

  for (std::uint64_t g = 0; g < generations; ++g) {
    step(population);
    if (g >= averaging_start) {
      const auto counts = population.counts();
      const double inv = 1.0 / static_cast<double>(population.size());
      for (std::size_t i = 0; i < n; ++i) {
        accumulated[i] += static_cast<double>(counts[i]) * inv;
      }
    }
  }
  if (average_window == 0) return population.frequencies();
  for (double& v : accumulated) v /= static_cast<double>(average_window);
  return accumulated;
}

}  // namespace qs::stochastic
