// Wright-Fisher mutation-selection dynamics over the sequence space.
//
// The finite-population counterpart of Eigen's deterministic quasispecies
// equation: each (non-overlapping) generation, every one of the N_pop
// offspring independently picks species i with probability
//
//   pi_i = (Q (f .* n))_i / sum_j f_j n_j,
//
// i.e. selection proportional to fitness followed by per-site mutation —
// exactly the stochastic process whose infinite-population limit is the
// dominant eigenvector of W = Q F.  The expected offspring distribution
// rides on the fast mutation matrix product, so even the simulator costs
// Theta(N log2 N) per generation plus the multinomial draw; the paper's
// reference [11] studies this model's error-threshold shift at finite N_pop.
#pragma once

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "stochastic/population.hpp"
#include "support/rng.hpp"

namespace qs::stochastic {

/// Wright-Fisher process bound to a model, landscape, and RNG stream.
class WrightFisher {
 public:
  /// `model` is copied; `landscape` is referenced and must outlive the
  /// process. Dimensions must agree.
  WrightFisher(core::MutationModel model, const core::Landscape& landscape,
               std::uint64_t seed);

  /// Same, from an explicit RNG stream (see Xoshiro256::jump — replica
  /// ensembles hand each process a seed-jumped stream).
  WrightFisher(core::MutationModel model, const core::Landscape& landscape,
               Xoshiro256 stream);

  const core::MutationModel& model() const { return model_; }
  const core::Landscape& landscape() const { return *landscape_; }

  /// Expected next-generation distribution pi for the current population
  /// (the deterministic map whose fixed point is the quasispecies).
  std::vector<double> expected_offspring(const Population& population) const;

  /// Advances one generation in place (multinomial resampling around the
  /// expected distribution). Population size is conserved exactly.
  void step(Population& population);

  /// Runs `generations` steps and returns the time-average frequency vector
  /// over the last `average_window` generations (0 = just the final state).
  /// Time averaging is the standard estimator for the stationary
  /// distribution of the finite process.
  std::vector<double> run(Population& population, std::uint64_t generations,
                          std::uint64_t average_window = 0);

 private:
  core::MutationModel model_;
  const core::Landscape* landscape_;
  Xoshiro256 rng_;
};

}  // namespace qs::stochastic
