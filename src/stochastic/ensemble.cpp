#include "stochastic/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/error_classes.hpp"
#include "analysis/statistics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stochastic/sampling.hpp"
#include "support/contracts.hpp"

namespace qs::stochastic {

ReplicaEnsemble::ReplicaEnsemble(core::MutationModel model,
                                 const core::Landscape& landscape,
                                 const EnsembleOptions& options,
                                 const parallel::Engine* engine)
    : model_(std::move(model)),
      landscape_(&landscape),
      options_(options),
      engine_(engine != nullptr ? engine : &parallel::serial_engine()),
      op_(model_, landscape, core::Formulation::right, engine_,
          transforms::LevelOrder::ascending, core::EngineKernel::blocked,
          options.plan) {
  require(model_.dimension() == landscape.dimension(),
          "ReplicaEnsemble: model and landscape dimensions differ");
  require(options_.replicas >= 1, "ReplicaEnsemble: need at least one replica");
  require(options_.panel_width >= 1 && options_.panel_width <= kMaxPanelWidth,
          "ReplicaEnsemble: panel width must be in [1, 64]");
  require(options_.population_size >= 2,
          "ReplicaEnsemble: population size must be >= 2");

  const unsigned nu = model_.nu();
  const std::size_t n = model_.dimension();
  populations_.reserve(options_.replicas);
  rngs_.reserve(options_.replicas);
  expected_.resize(options_.replicas);

  // Stream r of the jumped family: seed the root once, then jump a running
  // generator — replica r sits exactly r * 2^128 draws downstream, so the
  // assignment of stream to replica never depends on scheduling.
  Xoshiro256 stream(options_.seed);
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    populations_.push_back(options_.start_uniform
                               ? Population::uniform(nu, options_.population_size)
                               : Population::monomorphic(nu, options_.population_size));
    rngs_.push_back(stream);
    if (options_.process == EnsembleProcess::moran) {
      morans_.emplace_back(model_, landscape, stream);
    } else {
      expected_[r].resize(n);
    }
    stream.jump();
  }
  if (options_.process == EnsembleProcess::wright_fisher) {
    panel_.resize(n * std::min(options_.panel_width, options_.replicas));
  }
}

const Population& ReplicaEnsemble::population(std::size_t r) const {
  require(r < populations_.size(), "ReplicaEnsemble: replica index out of range");
  return populations_[r];
}

std::span<const double> ReplicaEnsemble::expected(std::size_t r) const {
  require(options_.process == EnsembleProcess::wright_fisher,
          "ReplicaEnsemble: expected() is a Wright-Fisher concept");
  require(r < expected_.size(), "ReplicaEnsemble: replica index out of range");
  return expected_[r];
}

void ReplicaEnsemble::compute_expected(bool batched) {
  require(options_.process == EnsembleProcess::wright_fisher,
          "ReplicaEnsemble: compute_expected() requires the Wright-Fisher process");
  const std::size_t n = model_.dimension();
  const std::size_t R = populations_.size();

  if (!batched) {
    // Reference path: one single-vector banded product per replica, on the
    // same engine — exactly R times the memory traffic of the panel path.
    QS_TRACE_SPAN_ARG("ensemble.expected_sequential", solver, R);
    for (std::size_t r = 0; r < R; ++r) {
      const auto counts = populations_[r].counts();
      std::span<double> x(panel_.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = static_cast<double>(counts[i]);
      }
      op_.apply(x, expected_[r]);
      sanitize_distribution(expected_[r]);
    }
    return;
  }

  QS_TRACE_SPAN_ARG("ensemble.expected_batched", solver, R);
  for (std::size_t r0 = 0; r0 < R; r0 += options_.panel_width) {
    const std::size_t w = std::min(options_.panel_width, R - r0);
    const std::span<double> panel(panel_.data(), n * w);

    // Pack the replica counts into the interleaved panel: element i of
    // column j is panel[i*w + j].  Elementwise writes — deterministic
    // however the engine chunks the index space.
    {
      QS_TRACE_SPAN("ensemble.pack", kernel);
      double* pp = panel.data();
      std::vector<const std::uint64_t*> cols(w);
      for (std::size_t j = 0; j < w; ++j) {
        cols[j] = populations_[r0 + j].counts().data();
      }
      const std::uint64_t* const* cp = cols.data();
      engine_->dispatch(n, [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < w; ++j) {
            pp[i * w + j] = static_cast<double>(cp[j][i]);
          }
        }
      });
    }

    // All w columns through one banded panel product (in place).
    op_.apply_panel(panel, panel, w);

    // Unpack in one i-major sweep (column-major reads would touch a whole
    // cache line per element — w strided passes over the panel), fusing the
    // sanitiser's clamp + normaliser sum into the same sweep: partial sums
    // land in FIXED 4096-element blocks and are reduced in block order, so
    // the normaliser — hence the whole trajectory — is bit-identical no
    // matter how the engine chunks the index space.  Only the scale sweep
    // remains as a second pass.
    {
      QS_TRACE_SPAN("ensemble.unpack", kernel);
      constexpr std::size_t kBlock = 4096;
      const std::size_t blocks = (n + kBlock - 1) / kBlock;
      block_sums_.assign(blocks * w, 0.0);
      const double* pp = panel.data();
      double* bs = block_sums_.data();
      std::vector<double*> outs(w);
      for (std::size_t j = 0; j < w; ++j) outs[j] = expected_[r0 + j].data();
      double* const* out = outs.data();
      engine_->dispatch(blocks, [=](std::size_t bb, std::size_t be) {
        double colsum[kMaxPanelWidth];
        for (std::size_t b = bb; b < be; ++b) {
          const std::size_t i1 = std::min(n, (b + 1) * kBlock);
          for (std::size_t j = 0; j < w; ++j) colsum[j] = 0.0;
          for (std::size_t i = b * kBlock; i < i1; ++i) {
            for (std::size_t j = 0; j < w; ++j) {
              double v = pp[i * w + j];
              if (!(v > 0.0)) v = 0.0;  // negatives, -0.0, and NaN carry no mass
              out[j][i] = v;
              colsum[j] += v;
            }
          }
          for (std::size_t j = 0; j < w; ++j) bs[b * w + j] = colsum[j];
        }
      });
      engine_->dispatch(w, [=](std::size_t jb, std::size_t je) {
        for (std::size_t j = jb; j < je; ++j) {
          double total = 0.0;
          for (std::size_t b = 0; b < blocks; ++b) total += bs[b * w + j];
          require(total > 0.0 && std::isfinite(total),
                  "ReplicaEnsemble: expected distribution has no positive mass");
          const double inv = 1.0 / total;
          double* pi = out[j];
          for (std::size_t i = 0; i < n; ++i) pi[i] *= inv;
        }
      });
    }
  }
}

void ReplicaEnsemble::resample() {
  require(options_.process == EnsembleProcess::wright_fisher,
          "ReplicaEnsemble: resample() requires the Wright-Fisher process");
  QS_TRACE_SPAN_ARG("ensemble.resample", solver, populations_.size());
  // Replica r always draws from stream r: the draw sequence is a function
  // of the replica index alone, never of the lane that runs it.
  engine_->dispatch(populations_.size(), [this](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const std::uint64_t size = populations_[r].size();
      multinomial_sample_into(rngs_[r], size, expected_[r],
                              populations_[r].counts());
      populations_[r].refresh_size();
    }
  });
}

void ReplicaEnsemble::step_moran() {
  QS_TRACE_SPAN_ARG("ensemble.moran_generation", solver, populations_.size());
  // One "generation" = N_pop birth-death events per replica; replicas are
  // independent processes fanned out across the engine lanes.
  engine_->dispatch(populations_.size(), [this](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      morans_[r].run(populations_[r], populations_[r].size());
    }
  });
}

void ReplicaEnsemble::step() {
  if (options_.process == EnsembleProcess::moran) {
    step_moran();
    return;
  }
  QS_TRACE_SPAN("ensemble.generation", solver);
  compute_expected(true);
  resample();
}

void ReplicaEnsemble::step_sequential() {
  if (options_.process == EnsembleProcess::moran) {
    step_moran();
    return;
  }
  QS_TRACE_SPAN("ensemble.generation", solver);
  compute_expected(false);
  resample();
}

void ReplicaEnsemble::run(std::uint64_t generations, std::uint64_t average_window,
                          bool batched,
                          const std::function<bool()>& should_stop) {
  require(average_window <= generations,
          "ReplicaEnsemble::run: averaging window exceeds the run length");
  const std::size_t n = model_.dimension();
  const std::size_t R = populations_.size();
  averages_.resize(R);
  for (auto& avg : averages_) avg.assign(n, 0.0);
  generations_completed_ = 0;
  cancelled_ = false;

  const std::uint64_t averaging_start = generations - average_window;
  std::uint64_t averaged = 0;
  for (std::uint64_t g = 0; g < generations; ++g) {
    // Cooperative cancellation at a generation boundary: the averages
    // gathered so far stay consistent, so a SIGTERM'd run still reports
    // (partial-window) statistics instead of discarding hours of work.
    if (should_stop && should_stop()) {
      generations_completed_ = g;
      cancelled_ = true;
      break;
    }
    batched ? step() : step_sequential();
    generations_completed_ = g + 1;
    if (g >= averaging_start) {
      ++averaged;
      engine_->dispatch(R, [this, n](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const auto counts = populations_[r].counts();
          const double inv = 1.0 / static_cast<double>(populations_[r].size());
          std::vector<double>& avg = averages_[r];
          for (std::size_t i = 0; i < n; ++i) {
            avg[i] += static_cast<double>(counts[i]) * inv;
          }
        }
      });
    }
  }

  if (averaged == 0) {
    for (std::size_t r = 0; r < R; ++r) {
      const auto freqs = populations_[r].frequencies();
      std::copy(freqs.begin(), freqs.end(), averages_[r].begin());
    }
  } else {
    const double inv = 1.0 / static_cast<double>(averaged);
    for (auto& avg : averages_) {
      for (double& v : avg) v *= inv;
    }
  }
  have_averages_ = true;
}

std::span<const double> ReplicaEnsemble::replica_average(std::size_t r) const {
  require(have_averages_, "ReplicaEnsemble: run() has not been called");
  require(r < averages_.size(), "ReplicaEnsemble: replica index out of range");
  return averages_[r];
}

EnsembleStatistics ReplicaEnsemble::statistics() const {
  require(have_averages_, "ReplicaEnsemble: run() has not been called");
  const std::size_t n = model_.dimension();
  const std::size_t R = averages_.size();

  EnsembleStatistics stats;
  stats.replicas = R;
  stats.mean.assign(n, 0.0);
  stats.variance.assign(n, 0.0);

  const double inv_r = 1.0 / static_cast<double>(R);
  for (const auto& avg : averages_) {
    for (std::size_t i = 0; i < n; ++i) stats.mean[i] += avg[i] * inv_r;
  }
  if (R > 1) {
    const double inv_r1 = 1.0 / static_cast<double>(R - 1);
    for (const auto& avg : averages_) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = avg[i] - stats.mean[i];
        stats.variance[i] += d * d * inv_r1;
      }
    }
  }

  stats.class_mean = analysis::class_concentrations(model_.nu(), stats.mean);

  // Master-class smearing: the spread of the per-replica ordered-phase
  // order parameter is what distinguishes finite N from the deterministic
  // threshold (which is a step, not a distribution).
  double master_sum = 0.0, master_sq = 0.0;
  for (const auto& avg : averages_) {
    const double g0 = analysis::class_concentrations(model_.nu(), avg)[0];
    master_sum += g0;
    master_sq += g0 * g0;
  }
  stats.master_mean = master_sum * inv_r;
  const double var =
      R > 1 ? std::max(0.0, (master_sq - master_sum * master_sum * inv_r) /
                                static_cast<double>(R - 1))
            : 0.0;
  stats.master_std = std::sqrt(var);
  stats.mean_fitness = analysis::mean_fitness(*landscape_, stats.mean);
  return stats;
}

void ReplicaEnsemble::record_metrics(const EnsembleStatistics& stats) const {
  auto& m = obs::metrics();
  m.set_info("ensemble.process", options_.process == EnsembleProcess::moran
                                     ? "moran"
                                     : "wright-fisher");
  m.set_info("ensemble.backend", std::string(engine_->name()));
  m.set_value("ensemble.replicas", static_cast<double>(stats.replicas));
  m.set_value("ensemble.population", static_cast<double>(options_.population_size));
  m.set_value("ensemble.panel_width", static_cast<double>(options_.panel_width));
  m.set_value("ensemble.nu", static_cast<double>(model_.nu()));
  m.set_value("ensemble.master_mean", stats.master_mean);
  m.set_value("ensemble.master_std", stats.master_std);
  m.set_value("ensemble.mean_fitness", stats.mean_fitness);
}

}  // namespace qs::stochastic
