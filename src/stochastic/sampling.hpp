// Random sampling primitives for the finite-population simulators.
//
// The deterministic quasispecies equation is the infinite-population limit;
// the paper's reference [11] (Nowak & Schuster) studies how finite
// populations shift the error threshold.  These samplers generate the
// required binomial / multinomial / categorical variates from the library's
// deterministic RNG so simulation runs are reproducible by seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace qs::stochastic {

/// One binomial variate Bin(n, prob).
///
/// Exact inverse-CDF walk when the expected count is small (the common case
/// when distributing a population over 2^nu species); a continuity-corrected
/// normal approximation for large n*p*(1-p) (error far below sampling noise
/// in that regime). Requires prob in [0, 1].
std::uint64_t binomial_sample(Xoshiro256& rng, std::uint64_t n, double prob);

/// Multinomial sample: distributes `n` trials over `probabilities` (which
/// must be nonnegative and sum to ~1) via the conditional-binomial method.
/// Returns counts aligned with the input; counts sum to exactly n.
std::vector<std::uint64_t> multinomial_sample(Xoshiro256& rng, std::uint64_t n,
                                              std::span<const double> probabilities);

/// Categorical sample: index i with probability weights[i] / sum(weights).
/// Requires at least one strictly positive weight.
std::size_t categorical_sample(Xoshiro256& rng, std::span<const double> weights);

}  // namespace qs::stochastic
