// Random sampling primitives for the finite-population simulators.
//
// The deterministic quasispecies equation is the infinite-population limit;
// the paper's reference [11] (Nowak & Schuster) studies how finite
// populations shift the error threshold.  These samplers generate the
// required binomial / multinomial / categorical variates from the library's
// deterministic RNG so simulation runs are reproducible by seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace qs::stochastic {

/// One binomial variate Bin(n, prob).
///
/// Exact inverse-CDF walk when the expected count is small (the common case
/// when distributing a population over 2^nu species); a continuity-corrected
/// normal approximation for large n*p*(1-p) (error far below sampling noise
/// in that regime). Requires prob in [0, 1].
std::uint64_t binomial_sample(Xoshiro256& rng, std::uint64_t n, double prob);

/// Multinomial sample: distributes `n` trials over `probabilities` (which
/// must be nonnegative and sum to ~1) via the conditional-binomial method.
/// Returns counts aligned with the input; counts sum to exactly n.
/// Individuals left over by floating-point fall-through are assigned to the
/// last *positive*-probability category — zero-probability categories never
/// receive mass.
std::vector<std::uint64_t> multinomial_sample(Xoshiro256& rng, std::uint64_t n,
                                              std::span<const double> probabilities);

/// In-place multinomial sample into a caller-owned counts buffer (the
/// ensemble engine draws one multinomial per replica per generation over
/// 2^nu categories — reusing the buffer keeps that hot loop allocation
/// free).  Requires counts.size() == probabilities.size().
void multinomial_sample_into(Xoshiro256& rng, std::uint64_t n,
                             std::span<const double> probabilities,
                             std::span<std::uint64_t> counts);

/// Categorical sample: index i with probability weights[i] / sum(weights).
/// Requires at least one strictly positive weight; never returns a
/// zero-weight index (floating-point fall-through lands on the last
/// positive-weight category).
std::size_t categorical_sample(Xoshiro256& rng, std::span<const double> weights);

/// Turns an almost-probability vector (nonnegative up to rounding dust,
/// almost 1-norm-1) into an exact sampler input: clamps negative entries to
/// zero FIRST, then renormalises, so the result is nonnegative and sums to
/// 1 to machine precision regardless of how much negative dust the fast
/// mutation product left behind.  The reverse order (normalise, then clamp)
/// re-introduces a sum error of twice the clamped mass and can trip the
/// samplers' |sum - 1| < 1e-6 precondition.  Requires positive total mass.
void sanitize_distribution(std::span<double> probabilities);

}  // namespace qs::stochastic
