#include "sparse/csr.hpp"

#include "support/contracts.hpp"

namespace qs::sparse {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_offsets,
                     std::vector<std::size_t> column_indices,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      column_indices_(std::move(column_indices)),
      values_(std::move(values)) {
  require(row_offsets_.size() == rows_ + 1, "CsrMatrix: row_offsets size mismatch");
  require(row_offsets_.front() == 0, "CsrMatrix: row_offsets must start at 0");
  require(row_offsets_.back() == values_.size(),
          "CsrMatrix: row_offsets must end at nnz");
  require(column_indices_.size() == values_.size(),
          "CsrMatrix: indices/values size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    require(row_offsets_[r] <= row_offsets_[r + 1],
            "CsrMatrix: row offsets must be nondecreasing");
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      require(column_indices_[k] < cols_, "CsrMatrix: column index out of range");
      if (k > row_offsets_[r]) {
        require(column_indices_[k - 1] < column_indices_[k],
                "CsrMatrix: columns must be strictly ascending within a row");
      }
    }
  }
}

std::size_t CsrMatrix::memory_bytes() const {
  return row_offsets_.size() * sizeof(std::size_t) +
         column_indices_.size() * sizeof(std::size_t) +
         values_.size() * sizeof(double);
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  require(x.size() == cols_ && y.size() == rows_, "CsrMatrix::multiply: dimensions");
  require(x.data() != y.data(), "CsrMatrix::multiply: x and y must not alias");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      acc += values_[k] * x[column_indices_[k]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y,
                         const parallel::Engine& engine) const {
  require(x.size() == cols_ && y.size() == rows_, "CsrMatrix::multiply: dimensions");
  require(x.data() != y.data(), "CsrMatrix::multiply: x and y must not alias");
  const double* xp = x.data();
  double* yp = y.data();
  const std::size_t* offsets = row_offsets_.data();
  const std::size_t* columns = column_indices_.data();
  const double* vals = values_.data();
  engine.dispatch(rows_, [=](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        acc += vals[k] * xp[columns[k]];
      }
      yp[r] = acc;
    }
  });
}

linalg::DenseMatrix CsrMatrix::to_dense() const {
  require(rows_ <= 4096 && cols_ <= 4096, "to_dense: matrix too large");
  linalg::DenseMatrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      dense(r, column_indices_[k]) = values_[k];
    }
  }
  return dense;
}

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  require(rows >= 1 && cols >= 1, "CsrBuilder: empty shape");
  row_offsets_.reserve(rows + 1);
  row_offsets_.push_back(0);
}

void CsrBuilder::push(std::size_t column, double value) {
  require(current_row_ < rows_, "CsrBuilder::push: all rows already finished");
  require(column < cols_, "CsrBuilder::push: column out of range");
  require(!row_has_entries_ || column > last_column_in_row_,
          "CsrBuilder::push: columns must be strictly ascending within a row");
  last_column_in_row_ = column;
  row_has_entries_ = true;
  if (value != 0.0) {
    column_indices_.push_back(column);
    values_.push_back(value);
  }
}

void CsrBuilder::finish_row() {
  require(current_row_ < rows_, "CsrBuilder::finish_row: all rows already finished");
  ++current_row_;
  row_has_entries_ = false;
  row_offsets_.push_back(values_.size());
}

CsrMatrix CsrBuilder::build() {
  require(current_row_ == rows_, "CsrBuilder::build: not all rows finished");
  return CsrMatrix(rows_, cols_, std::move(row_offsets_),
                   std::move(column_indices_), std::move(values_));
}

CsrMatrix csr_from_dense(const linalg::DenseMatrix& dense, double threshold) {
  CsrBuilder builder(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense(r, c);
      if (std::abs(v) > threshold) builder.push(c, v);
    }
    builder.finish_row();
  }
  return builder.build();
}

}  // namespace qs::sparse
