#include "sparse/sparse_w.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace qs::sparse {

CsrMatrix SparseWOperator::assemble(const core::MutationModel& model,
                                    const core::Landscape& landscape,
                                    unsigned d_max) {
  require(model.kind() == core::MutationKind::uniform,
          "SparseWOperator: truncation requires the uniform mutation model");
  require(model.dimension() == landscape.dimension(),
          "SparseWOperator: model and landscape dimensions differ");
  const unsigned nu = model.nu();
  require(d_max <= nu, "SparseWOperator: d_max must satisfy d_max <= nu");
  require(nu <= 24, "SparseWOperator: assembly limited to nu <= 24");

  // Row i holds columns {i ^ m : popcount(m) <= d_max} with value
  // Q_Gamma(popcount(m)) * f_col.  Collect the mutation patterns once and
  // sort per row by the resulting column index.
  std::vector<seq_t> masks;
  std::vector<double> class_values(d_max + 1);
  for (unsigned k = 0; k <= d_max; ++k) {
    class_values[k] = model.class_value(k);
    FixedWeightMasks(nu, k).for_each([&](seq_t m) { masks.push_back(m); });
  }

  const std::size_t n = static_cast<std::size_t>(model.dimension());
  const auto f = landscape.values();
  CsrBuilder builder(n, n);
  std::vector<std::pair<seq_t, double>> row;
  row.reserve(masks.size());
  for (seq_t i = 0; i < n; ++i) {
    row.clear();
    for (seq_t m : masks) {
      const seq_t col = i ^ m;
      row.emplace_back(col, class_values[hamming_weight(m)] * f[col]);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [col, value] : row) builder.push(col, value);
    builder.finish_row();
  }
  return builder.build();
}

SparseWOperator::SparseWOperator(const core::MutationModel& model,
                                 const core::Landscape& landscape, unsigned d_max,
                                 const parallel::Engine* engine)
    : matrix_(assemble(model, landscape, d_max)),
      engine_(engine),
      name_("SparseW(" + std::to_string(d_max) + ")") {}

void SparseWOperator::apply(std::span<const double> x, std::span<double> y) const {
  if (engine_ != nullptr) {
    matrix_.multiply(x, y, *engine_);
  } else {
    matrix_.multiply(x, y);
  }
}

}  // namespace qs::sparse
