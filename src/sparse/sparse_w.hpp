// Materialised truncated W = Q F in CSR form.
//
// The explicit counterpart of core::XmvpOperator: both evaluate the
// Hamming-truncated product y_i = sum_{d_H(i,j) <= d} Q_ij f_j x_j, but
// this operator assembles the matrix once (Theta(N * sum_k C(nu,k)) memory)
// and then streams branch-free CSR rows, while Xmvp recomputes the XOR
// patterns every product at Theta(N) memory.  The bench
// `ablation_sparse_storage` quantifies the trade — the memory wall is
// exactly why the paper's line of work moved to implicit products.
#pragma once

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "parallel/engine.hpp"
#include "sparse/csr.hpp"

namespace qs::sparse {

/// CSR-materialised truncated W (right formulation).
class SparseWOperator final : public core::LinearOperator {
 public:
  /// Assembles the truncated matrix. Requires a uniform mutation model,
  /// d_max <= nu, and nu <= 24 (assembly cost guard; memory explodes far
  /// earlier in practice).  `engine`, when non-null, parallelises the row
  /// sweeps and must outlive the operator.
  SparseWOperator(const core::MutationModel& model, const core::Landscape& landscape,
                  unsigned d_max, const parallel::Engine* engine = nullptr);

  seq_t dimension() const override { return matrix_.rows(); }
  void apply(std::span<const double> x, std::span<double> y) const override;
  std::string_view name() const override { return name_; }

  const CsrMatrix& matrix() const { return matrix_; }

 private:
  static CsrMatrix assemble(const core::MutationModel& model,
                            const core::Landscape& landscape, unsigned d_max);

  CsrMatrix matrix_;
  const parallel::Engine* engine_;
  std::string name_;
};

}  // namespace qs::sparse
