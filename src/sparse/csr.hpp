// Compressed sparse row matrices.
//
// The paper's prior work [10] evaluates the truncated mutation matrix
// *implicitly* (recomputing XOR patterns on the fly, Theta(N) memory);
// the classical alternative materialises the truncated matrix once in CSR
// form and pays memory for faster, branch-free row sweeps.  This module is
// that substrate: a general CSR container with serial and engine-parallel
// SpMV, used by core::SparseWOperator and available for any other sparse
// structure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "parallel/engine.hpp"

namespace qs::sparse {

/// Immutable CSR matrix of doubles.
class CsrMatrix {
 public:
  /// Builds from the classic triple: row_offsets has rows+1 entries ending
  /// in nnz; column_indices/values have nnz entries, columns strictly
  /// ascending within each row.  Validates the invariants.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_offsets,
            std::vector<std::size_t> column_indices, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// Bytes of payload storage (offsets + indices + values).
  std::size_t memory_bytes() const;

  std::span<const std::size_t> row_offsets() const { return row_offsets_; }
  std::span<const std::size_t> column_indices() const { return column_indices_; }
  std::span<const double> values() const { return values_; }

  /// y = A x. Requires matching dimensions; x and y must not alias.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Engine-parallel SpMV (row-partitioned).
  void multiply(std::span<const double> x, std::span<double> y,
                const parallel::Engine& engine) const;

  /// Dense copy (test utility; requires small dimensions).
  linalg::DenseMatrix to_dense() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> column_indices_;
  std::vector<double> values_;
};

/// Incremental row-major builder for CSR matrices.
class CsrBuilder {
 public:
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Appends an entry to the current row. Columns must arrive in strictly
  /// ascending order within the row; zero values are skipped.
  void push(std::size_t column, double value);

  /// Closes the current row and moves to the next.
  void finish_row();

  /// Finalises the matrix. All rows must have been finished.
  CsrMatrix build();

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::size_t current_row_ = 0;
  std::size_t last_column_in_row_ = 0;
  bool row_has_entries_ = false;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> column_indices_;
  std::vector<double> values_;
};

/// CSR from a dense matrix, dropping entries with |a_ij| <= threshold.
CsrMatrix csr_from_dense(const linalg::DenseMatrix& dense, double threshold = 0.0);

}  // namespace qs::sparse
