// Binary persistence for concentration vectors and landscapes.
//
// The paper's closing remark makes memory the binding constraint "given the
// new solver"; long-running large-nu computations therefore need durable
// state: landscapes are experiment inputs worth pinning, and a power
// iteration interrupted at nu = 26 should resume instead of restart.  The
// format is a fixed little-endian header (magic, version, kind, two u64
// metadata fields) followed by the raw double payload.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/landscape.hpp"

namespace qs::io {

/// Writes a bare double vector. Throws std::runtime_error on I/O failure.
void save_vector(const std::filesystem::path& path, std::span<const double> data);

/// Reads a vector written by save_vector. Throws std::runtime_error on I/O
/// failure or malformed content.
std::vector<double> load_vector(const std::filesystem::path& path);

/// Writes a landscape (chain length + values).
void save_landscape(const std::filesystem::path& path, const core::Landscape& landscape);

/// Reads a landscape written by save_landscape.
core::Landscape load_landscape(const std::filesystem::path& path);

/// Power-iteration checkpoint: the current iterate plus progress counters.
struct SolverCheckpoint {
  std::uint64_t iteration = 0;
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;
};

/// Writes a solver checkpoint.
void save_checkpoint(const std::filesystem::path& path, const SolverCheckpoint& state);

/// Reads a solver checkpoint.
SolverCheckpoint load_checkpoint(const std::filesystem::path& path);

}  // namespace qs::io
