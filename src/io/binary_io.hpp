// Binary persistence for concentration vectors and landscapes.
//
// The paper's closing remark makes memory the binding constraint "given the
// new solver"; long-running large-nu computations therefore need durable
// state: landscapes are experiment inputs worth pinning, and a power
// iteration interrupted at nu = 26 should resume instead of restart.  The
// format is a fixed little-endian header (magic, version, kind, a payload
// checksum, two u64 metadata fields) followed by the raw double payload.
//
// Durability guarantees (the resilience layer relies on both):
//   * every save_* writes to a temporary sibling file and atomically renames
//     it over the destination, so a crash mid-write can never tear an
//     existing file — the previous version stays intact;
//   * the header carries an FNV-1a checksum of the payload and the declared
//     payload length is validated against the actual file size on load, so
//     a torn or tampered file is rejected with a clear error instead of
//     being half-read.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/landscape.hpp"

namespace qs::io {

/// Writes a bare double vector. Throws std::runtime_error on I/O failure.
void save_vector(const std::filesystem::path& path, std::span<const double> data);

/// Reads a vector written by save_vector. Throws std::runtime_error on I/O
/// failure or malformed content (bad magic/version/kind, length mismatch
/// against the actual file size, or checksum mismatch).
std::vector<double> load_vector(const std::filesystem::path& path);

/// Writes a landscape (chain length + values).
void save_landscape(const std::filesystem::path& path, const core::Landscape& landscape);

/// Reads a landscape written by save_landscape.
core::Landscape load_landscape(const std::filesystem::path& path);

/// Which solver wrote a checkpoint.  Stored in the file (format v3) so a
/// resume can refuse a checkpoint from a different iteration scheme with a
/// clear message instead of silently mis-resuming.
enum class SolverKind : std::uint32_t {
  unspecified = 0,  ///< Pre-v3 files and the plain power iteration.
  power = 0,        ///< Alias: the power iteration is the v2 default.
  lanczos = 1,
  arnoldi = 2,
  block_power = 3,
  shift_invert = 4,
};

/// Iteration checkpoint: the current iterate plus enough progress state to
/// resume the run exactly where it stopped.  The stall-tracking fields
/// mirror the iteration driver's stagnation window so a resumed run
/// reproduces the original residual trajectory bit for bit.
///
/// The solver-specific fields (format v3):
///   * solver_kind identifies the writing solver (v2 files load as
///     `unspecified`, which the power iteration accepts);
///   * matvec_count restores cumulative operator-product statistics for the
///     restarted Krylov solvers;
///   * aux carries one solver-specific scalar: the current shift mu for the
///     shift-invert outer iteration, the panel width m for block power.
/// For block power the `eigenvector` payload holds the full interleaved
/// n x m panel (n * m doubles), taken verbatim on resume.
struct SolverCheckpoint {
  std::uint64_t iteration = 0;
  double eigenvalue = 0.0;
  double residual = 0.0;                 ///< Last computed relative residual.
  double best_residual = 0.0;            ///< Best residual seen so far.
  double window_start_best = 0.0;        ///< Stall window reference residual.
  std::uint64_t checks_without_progress = 0;  ///< Residual checks this window.
  SolverKind solver_kind = SolverKind::unspecified;  ///< Writing solver.
  std::uint64_t matvec_count = 0;        ///< Operator products so far.
  double aux = 0.0;                      ///< Solver-specific scalar (see above).
  std::vector<double> eigenvector;       ///< Iterate (or panel), verbatim.
};

/// Writes a solver checkpoint (atomically, see file comment).
void save_checkpoint(const std::filesystem::path& path, const SolverCheckpoint& state);

/// Reads a solver checkpoint.
SolverCheckpoint load_checkpoint(const std::filesystem::path& path);

}  // namespace qs::io
