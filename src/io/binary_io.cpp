#include "io/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace qs::io {
namespace {

constexpr std::uint32_t kMagic = 0x51535631;  // "QSV1"
constexpr std::uint32_t kVersion = 1;

enum class PayloadKind : std::uint32_t {
  vector = 1,
  landscape = 2,
  checkpoint = 3,
};

static_assert(std::endian::native == std::endian::little,
              "binary_io assumes a little-endian host");

struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t meta0 = 0;  // element count
  std::uint64_t meta1 = 0;  // kind-specific (nu / iteration)
  double meta2 = 0.0;       // kind-specific (eigenvalue)
};

void write_file(const std::filesystem::path& path, PayloadKind kind,
                std::uint64_t meta1, double meta2, std::span<const double> data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("binary_io: cannot open for writing: " + path.string());
  }
  Header header;
  header.kind = static_cast<std::uint32_t>(kind);
  header.meta0 = data.size();
  header.meta1 = meta1;
  header.meta2 = meta2;
  file.write(reinterpret_cast<const char*>(&header), sizeof(header));
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!file) {
    throw std::runtime_error("binary_io: write failed: " + path.string());
  }
}

struct LoadedFile {
  Header header;
  std::vector<double> data;
};

LoadedFile read_file(const std::filesystem::path& path, PayloadKind expected) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("binary_io: cannot open for reading: " + path.string());
  }
  LoadedFile out;
  file.read(reinterpret_cast<char*>(&out.header), sizeof(out.header));
  if (!file || out.header.magic != kMagic) {
    throw std::runtime_error("binary_io: bad magic (not a quasispecies file): " +
                             path.string());
  }
  if (out.header.version != kVersion) {
    throw std::runtime_error("binary_io: unsupported version in " + path.string());
  }
  if (out.header.kind != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error("binary_io: unexpected payload kind in " + path.string());
  }
  out.data.resize(out.header.meta0);
  file.read(reinterpret_cast<char*>(out.data.data()),
            static_cast<std::streamsize>(out.data.size() * sizeof(double)));
  if (!file) {
    throw std::runtime_error("binary_io: truncated payload in " + path.string());
  }
  return out;
}

}  // namespace

void save_vector(const std::filesystem::path& path, std::span<const double> data) {
  write_file(path, PayloadKind::vector, 0, 0.0, data);
}

std::vector<double> load_vector(const std::filesystem::path& path) {
  return read_file(path, PayloadKind::vector).data;
}

void save_landscape(const std::filesystem::path& path,
                    const core::Landscape& landscape) {
  write_file(path, PayloadKind::landscape, landscape.nu(), 0.0, landscape.values());
}

core::Landscape load_landscape(const std::filesystem::path& path) {
  auto loaded = read_file(path, PayloadKind::landscape);
  return core::Landscape::from_values(static_cast<unsigned>(loaded.header.meta1),
                                      std::move(loaded.data));
}

void save_checkpoint(const std::filesystem::path& path, const SolverCheckpoint& state) {
  write_file(path, PayloadKind::checkpoint, state.iteration, state.eigenvalue,
             state.eigenvector);
}

SolverCheckpoint load_checkpoint(const std::filesystem::path& path) {
  auto loaded = read_file(path, PayloadKind::checkpoint);
  SolverCheckpoint out;
  out.iteration = loaded.header.meta1;
  out.eigenvalue = loaded.header.meta2;
  out.eigenvector = std::move(loaded.data);
  return out;
}

}  // namespace qs::io
