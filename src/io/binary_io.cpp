#include "io/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace qs::io {
namespace {

constexpr std::uint32_t kMagic = 0x51535631;  // "QSV1"
// Version 2 adds the payload checksum and the checkpoint progress trailer;
// version 3 extends the checkpoint trailer with the writing solver's kind,
// its cumulative mat-vec count, and one solver-specific scalar.  Version 2
// files still load (the extra fields default to zero / `unspecified`).
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 2;

// Hard ceiling on a declared payload (2^37 doubles = 1 TiB): a corrupted
// length field must fail with a structured error, never drive the reader
// toward a near-2^64 allocation.
constexpr std::uint64_t kMaxPayloadDoubles = 1ull << 37;

enum class PayloadKind : std::uint32_t {
  vector = 1,
  landscape = 2,
  checkpoint = 3,
};

static_assert(std::endian::native == std::endian::little,
              "binary_io assumes a little-endian host");

struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t kind = 0;
  std::uint32_t checksum = 0;  // FNV-1a over the raw payload bytes
  std::uint64_t meta0 = 0;     // element count
  std::uint64_t meta1 = 0;     // kind-specific (nu / iteration)
  double meta2 = 0.0;          // kind-specific (eigenvalue)
};

/// 32-bit FNV-1a over the payload bytes.  Not cryptographic — the threat
/// model is a torn write or bit rot, not an adversary.
std::uint32_t payload_checksum(std::span<const double> data) {
  std::uint32_t hash = 2166136261u;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size() * sizeof(double);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 16777619u;
  }
  return hash;
}

/// Writes header + payload to a temporary sibling and renames it over
/// `path`.  rename(2) is atomic within a filesystem, so a crash at any point
/// leaves either the old file or the new one — never a torn hybrid.
void write_file(const std::filesystem::path& path, PayloadKind kind,
                std::uint64_t meta1, double meta2, std::span<const double> data) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw std::runtime_error("binary_io: cannot open for writing: " + tmp.string());
    }
    Header header;
    header.kind = static_cast<std::uint32_t>(kind);
    header.checksum = payload_checksum(data);
    header.meta0 = data.size();
    header.meta1 = meta1;
    header.meta2 = meta2;
    file.write(reinterpret_cast<const char*>(&header), sizeof(header));
    file.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size() * sizeof(double)));
    file.flush();
    if (!file) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("binary_io: write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw std::runtime_error("binary_io: cannot rename " + tmp.string() + " to " +
                             path.string() + ": " + ec.message());
  }
}

struct LoadedFile {
  Header header;
  std::vector<double> data;
};

LoadedFile read_file(const std::filesystem::path& path, PayloadKind expected) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("binary_io: cannot open for reading: " + path.string());
  }
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("binary_io: cannot stat " + path.string() + ": " +
                             ec.message());
  }
  LoadedFile out;
  if (file_size < sizeof(out.header)) {
    throw std::runtime_error("binary_io: file shorter than the header (torn write?): " +
                             path.string());
  }
  file.read(reinterpret_cast<char*>(&out.header), sizeof(out.header));
  if (!file || out.header.magic != kMagic) {
    throw std::runtime_error("binary_io: bad magic (not a quasispecies file): " +
                             path.string());
  }
  if (out.header.version < kMinVersion || out.header.version > kVersion) {
    throw std::runtime_error("binary_io: unsupported version in " + path.string());
  }
  if (out.header.kind != static_cast<std::uint32_t>(expected)) {
    throw std::runtime_error("binary_io: unexpected payload kind in " + path.string());
  }
  // Validate the declared length against the actual file size *before*
  // allocating or reading: a torn write (or a corrupted count) must produce
  // a clear diagnostic, not a short read or a huge allocation.  The count
  // is compared against the bytes actually present (never multiplied out —
  // a corrupted 2^61-ish count would overflow the product and could slip
  // past a size comparison straight into a massive allocation) and against
  // an absolute ceiling no legitimate file reaches.
  const std::uintmax_t payload_bytes = file_size - sizeof(out.header);
  if (out.header.meta0 > kMaxPayloadDoubles) {
    throw std::runtime_error(
        "binary_io: absurd payload length in " + path.string() +
        ": header declares " + std::to_string(out.header.meta0) +
        " doubles, above the " + std::to_string(kMaxPayloadDoubles) +
        " ceiling (corrupted header?)");
  }
  if (payload_bytes % sizeof(double) != 0 ||
      out.header.meta0 != payload_bytes / sizeof(double)) {
    throw std::runtime_error(
        "binary_io: payload length mismatch in " + path.string() + ": header declares " +
        std::to_string(out.header.meta0) + " doubles but the file holds " +
        std::to_string(payload_bytes) + " payload bytes (torn write?)");
  }
  out.data.resize(out.header.meta0);
  file.read(reinterpret_cast<char*>(out.data.data()),
            static_cast<std::streamsize>(out.data.size() * sizeof(double)));
  if (!file) {
    throw std::runtime_error("binary_io: truncated payload in " + path.string());
  }
  if (payload_checksum(out.data) != out.header.checksum) {
    throw std::runtime_error("binary_io: payload checksum mismatch in " + path.string() +
                             " (torn write or corruption)");
  }
  return out;
}

// The checkpoint payload carries a fixed progress trailer ahead of the
// eigenvector so the stall-window state survives the round trip.  Version 2
// wrote the first four slots; version 3 appends the solver kind, the
// cumulative mat-vec count, and the solver-specific aux scalar.
constexpr std::size_t kCheckpointTrailerV2 = 4;
constexpr std::size_t kCheckpointTrailer = 7;

}  // namespace

void save_vector(const std::filesystem::path& path, std::span<const double> data) {
  write_file(path, PayloadKind::vector, 0, 0.0, data);
}

std::vector<double> load_vector(const std::filesystem::path& path) {
  return read_file(path, PayloadKind::vector).data;
}

void save_landscape(const std::filesystem::path& path,
                    const core::Landscape& landscape) {
  write_file(path, PayloadKind::landscape, landscape.nu(), 0.0, landscape.values());
}

core::Landscape load_landscape(const std::filesystem::path& path) {
  auto loaded = read_file(path, PayloadKind::landscape);
  return core::Landscape::from_values(static_cast<unsigned>(loaded.header.meta1),
                                      std::move(loaded.data));
}

void save_checkpoint(const std::filesystem::path& path, const SolverCheckpoint& state) {
  std::vector<double> payload;
  payload.reserve(kCheckpointTrailer + state.eigenvector.size());
  payload.push_back(state.residual);
  payload.push_back(state.best_residual);
  payload.push_back(state.window_start_best);
  payload.push_back(static_cast<double>(state.checks_without_progress));
  payload.push_back(static_cast<double>(static_cast<std::uint32_t>(state.solver_kind)));
  payload.push_back(static_cast<double>(state.matvec_count));
  payload.push_back(state.aux);
  payload.insert(payload.end(), state.eigenvector.begin(), state.eigenvector.end());
  write_file(path, PayloadKind::checkpoint, state.iteration, state.eigenvalue, payload);
}

SolverCheckpoint load_checkpoint(const std::filesystem::path& path) {
  auto loaded = read_file(path, PayloadKind::checkpoint);
  const std::size_t trailer =
      loaded.header.version >= 3 ? kCheckpointTrailer : kCheckpointTrailerV2;
  if (loaded.data.size() < trailer) {
    throw std::runtime_error("binary_io: checkpoint payload too short in " +
                             path.string());
  }
  SolverCheckpoint out;
  out.iteration = loaded.header.meta1;
  out.eigenvalue = loaded.header.meta2;
  out.residual = loaded.data[0];
  out.best_residual = loaded.data[1];
  out.window_start_best = loaded.data[2];
  out.checks_without_progress = static_cast<std::uint64_t>(loaded.data[3]);
  if (loaded.header.version >= 3) {
    out.solver_kind =
        static_cast<SolverKind>(static_cast<std::uint32_t>(loaded.data[4]));
    out.matvec_count = static_cast<std::uint64_t>(loaded.data[5]);
    out.aux = loaded.data[6];
  }
  out.eigenvector.assign(loaded.data.begin() + trailer, loaded.data.end());
  return out;
}

}  // namespace qs::io
