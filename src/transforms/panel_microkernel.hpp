// Portable SIMD microkernels for the interleaved-panel butterfly.
//
// Every hot loop of the panel (multi-vector) Fmmp path reduces to one of
// five element-wise span operations: the 2x2 butterfly across two contiguous
// double spans, elementwise products (the per-column diagonal scalings), and
// broadcast row scalings (one scale factor shared by the m columns of a
// panel row).  This module provides those operations behind a function-
// pointer table resolved once at first use:
//
//   * a scalar implementation, always compiled, bit-identical across
//     backends and hosts (it is also what the single-vector banded kernel
//     computes per element);
//   * an AVX2+FMA implementation, compiled only when the build probe passed
//     (QS_ENABLE_SIMD + a compile test, see the top-level CMakeLists) and
//     selected only when the running CPU reports avx2 and fma — so a binary
//     built on a new host still runs on an old one, falling back to scalar;
//   * an AVX-512F implementation under the same contract (own probe, own
//     TU, runtime cpu check), preferred over AVX2 when available.
//
// The dispatch granularity is a whole span (typically 2^chunk * m doubles),
// so the indirect call amortises over tens to thousands of FMAs.
#pragma once

#include <cstddef>

#include "transforms/butterfly.hpp"

namespace qs::transforms {

/// Table of the element-wise span kernels the panel butterfly is built from.
struct PanelKernels {
  /// Butterfly across two contiguous spans: for i in [0, cnt),
  /// (lo[i], hi[i]) <- (m00 lo[i] + m01 hi[i], m10 lo[i] + m11 hi[i]).
  void (*butterfly_span)(double* lo, double* hi, std::size_t cnt, Factor2 f);

  /// Two fused butterfly levels (radix-4) on four contiguous spans — panel
  /// rows i, i+s, i+2s, i+3s for levels (l, l+1) with s = 2^l: applies f_lo
  /// to the pairs (r0,r1) and (r2,r3), then f_hi to (r0,r2) and (r1,r3).
  /// Identical arithmetic, in the identical order, to two successive
  /// butterfly_span levels — but each element is loaded and stored once
  /// instead of twice, halving the cache traffic of the level sweep.
  void (*butterfly_quad_span)(double* r0, double* r1, double* r2, double* r3,
                              std::size_t cnt, Factor2 f_lo, Factor2 f_hi);

  /// Three fused butterfly levels (radix-8) on eight equally spaced spans
  /// (span k starts at p + k*stride): f0 pairs (0,1)(2,3)(4,5)(6,7), then f1
  /// pairs (0,2)(1,3)(4,6)(5,7), then f2 pairs (0,4)(1,5)(2,6)(3,7) — the
  /// arithmetic of three successive butterfly_span levels with one load and
  /// one store per element instead of three.
  void (*butterfly_oct_span)(double* p, std::size_t stride, std::size_t cnt,
                             Factor2 f0, Factor2 f1, Factor2 f2);

  /// y[i] = s[i] * x[i] for i in [0, cnt). x may alias y exactly.
  void (*mul_span)(double* y, const double* x, const double* s, std::size_t cnt);

  /// y[i] *= s[i] for i in [0, cnt).
  void (*mul_span_inplace)(double* y, const double* s, std::size_t cnt);

  /// Broadcast row scaling on an interleaved panel: for r in [0, rows) and
  /// c in [0, m), y[r*m + c] = s[r] * x[r*m + c]. x may alias y exactly.
  void (*mul_rows_broadcast)(double* y, const double* x, const double* s,
                             std::size_t rows, std::size_t m);

  /// y[r*m + c] *= s[r].
  void (*mul_rows_broadcast_inplace)(double* y, const double* s,
                                     std::size_t rows, std::size_t m);

  /// Implementation name for introspection: "scalar", "avx2", or "avx512".
  const char* name;
};

/// The portable scalar table (always available; reference for ULP tests).
const PanelKernels& scalar_panel_kernels();

/// The widest table both the build and the running CPU support.
const PanelKernels& panel_kernels();

}  // namespace qs::transforms
