// Grouped Kronecker products with arbitrary power-of-two block factors.
//
// Section 2.2 of the paper generalises the mutation matrix to
// Q = Q_{G_1} (x) ... (x) Q_{G_g} with Q_{G_i} of size 2^{g_i} x 2^{g_i}
// (groups of mutually dependent positions), and Section 5.2 applies the
// same structure to fitness landscapes.  This module provides the implicit
// matrix and its Theta(N * sum_i 2^{g_i}) mat-vec.
//
// Convention: factors[0] acts on the *least significant* bit group; the
// matrix represented is factors[g-1] (x) ... (x) factors[0], consistent
// with the 2x2 butterfly convention of transforms/butterfly.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"
#include "parallel/engine.hpp"
#include "support/bits.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::transforms {

/// Implicit Kronecker product of small square dense factors.
class KroneckerProduct {
 public:
  /// Builds the product from factors (copied). Each factor must be square
  /// with power-of-two dimension >= 2; the represented matrix has dimension
  /// prod_i dim(factor_i).
  explicit KroneckerProduct(std::vector<linalg::DenseMatrix> factors);

  /// Number of factors g.
  std::size_t group_count() const { return factors_.size(); }

  /// The factors, index 0 = least significant bit group.
  const std::vector<linalg::DenseMatrix>& factors() const { return factors_; }

  /// Bit width g_i of group i.
  unsigned group_bits(std::size_t i) const { return group_bits_[i]; }

  /// Total bit width nu = sum_i g_i. May exceed the explicitly indexable
  /// range (factors are stored per group); apply()/to_dense() additionally
  /// require total_bits() <= kMaxChainLength.
  unsigned total_bits() const { return total_bits_; }

  /// Dimension N = 2^nu of the represented matrix.
  /// Requires total_bits() <= kMaxChainLength.
  std::size_t dimension() const {
    require(total_bits_ <= kMaxChainLength,
            "dimension(): total width too large to index explicitly");
    return std::size_t{1} << total_bits_;
  }

  /// In-place mat-vec v <- K v. Requires v.size() == dimension().
  void apply(std::span<double> v) const;

  /// Maximum column-sum deviation from 1 across all factors (validity check
  /// for mutation models: the Kronecker product of column-stochastic factors
  /// is column stochastic).
  double stochastic_deviation() const;

  /// Materialises the full dense matrix; for tests, requires dimension()
  /// small enough to allocate.
  linalg::DenseMatrix to_dense() const;

 private:
  std::vector<linalg::DenseMatrix> factors_;
  std::vector<unsigned> group_bits_;
  unsigned total_bits_ = 0;
};

/// Dense Kronecker product A (x) B (small operands; test utility).
linalg::DenseMatrix kronecker_dense(const linalg::DenseMatrix& a,
                                    const linalg::DenseMatrix& b);

/// Engine-parallel cache-blocked grouped Kronecker product on an interleaved
/// panel of width m (m = 1 is the plain vector case): every column j of the
/// panel becomes K column_j.
///
/// The banding mirrors transforms/blocked_butterfly: consecutive groups are
/// packed into level *bands* that never split a group, and the panel is
/// swept (and the engine barriered) once per band instead of once per group
/// — the low band runs whole tiles in place, high bands own gather panels of
/// 2^chunk-row contiguous bursts.  A group wider than the tile budget forms
/// a band of its own (correct, with gracefully degraded locality).  Requires
/// panel.size() == kp.dimension() * m.
void apply_blocked_kronecker(std::span<double> panel, std::size_t m,
                             const KroneckerProduct& kp,
                             const parallel::Engine& engine,
                             const BlockedPlan& plan = {});

}  // namespace qs::transforms
