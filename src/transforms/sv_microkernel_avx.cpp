// AVX2 instantiation of the single-vector microkernels.
//
// This translation unit is the only one compiled with -mavx2 (see
// src/CMakeLists.txt); it is added to the build only when the QS_ENABLE_SIMD
// probe passed, and its table is only selected when the running CPU reports
// avx2 — the rest of the library never executes AVX2 instructions.
//
// Unlike the panel kernels, these deliberately do NOT use FMA: every output
// is a separate vmulpd/vmulpd/vaddpd, i.e. the exact two-rounding expression
// m00*t1 + m01*t2 of the scalar banded loops.  The TU is built without
// -mfma and with -ffp-contract=off so the compiler cannot re-fuse them; the
// runtime probe therefore only needs avx2 (not fma), and the table is
// bit-identical to the scalar reference and to the autovectorised loops.
#include "transforms/sv_microkernel.hpp"

#if defined(QS_HAVE_SV_AVX2_KERNELS)

#include <immintrin.h>

namespace qs::transforms {
namespace {

inline __attribute__((always_inline)) __m256d muladd4(__m256d a, __m256d x,
                                                      __m256d b, __m256d y) {
  return _mm256_add_pd(_mm256_mul_pd(a, x), _mm256_mul_pd(b, y));
}

void sv_butterfly_span_avx2(double* lo, double* hi, std::size_t cnt, Factor2 f) {
  const __m256d m00 = _mm256_set1_pd(f.m00);
  const __m256d m01 = _mm256_set1_pd(f.m01);
  const __m256d m10 = _mm256_set1_pd(f.m10);
  const __m256d m11 = _mm256_set1_pd(f.m11);
  std::size_t i = 0;
  for (; i + 4 <= cnt; i += 4) {
    const __m256d t1 = _mm256_loadu_pd(lo + i);
    const __m256d t2 = _mm256_loadu_pd(hi + i);
    _mm256_storeu_pd(lo + i, muladd4(m00, t1, m01, t2));
    _mm256_storeu_pd(hi + i, muladd4(m10, t1, m11, t2));
  }
  for (; i < cnt; ++i) {
    const double t1 = lo[i];
    const double t2 = hi[i];
    lo[i] = f.m00 * t1 + f.m01 * t2;
    hi[i] = f.m10 * t1 + f.m11 * t2;
  }
}

void sv_butterfly_quad_span_avx2(double* r0, double* r1, double* r2, double* r3,
                                 std::size_t cnt, Factor2 fl, Factor2 fh) {
  const __m256d l00 = _mm256_set1_pd(fl.m00);
  const __m256d l01 = _mm256_set1_pd(fl.m01);
  const __m256d l10 = _mm256_set1_pd(fl.m10);
  const __m256d l11 = _mm256_set1_pd(fl.m11);
  const __m256d h00 = _mm256_set1_pd(fh.m00);
  const __m256d h01 = _mm256_set1_pd(fh.m01);
  const __m256d h10 = _mm256_set1_pd(fh.m10);
  const __m256d h11 = _mm256_set1_pd(fh.m11);
  std::size_t i = 0;
  for (; i + 4 <= cnt; i += 4) {
    const __m256d a = _mm256_loadu_pd(r0 + i);
    const __m256d b = _mm256_loadu_pd(r1 + i);
    const __m256d c = _mm256_loadu_pd(r2 + i);
    const __m256d d = _mm256_loadu_pd(r3 + i);
    const __m256d ab0 = muladd4(l00, a, l01, b);
    const __m256d ab1 = muladd4(l10, a, l11, b);
    const __m256d cd0 = muladd4(l00, c, l01, d);
    const __m256d cd1 = muladd4(l10, c, l11, d);
    _mm256_storeu_pd(r0 + i, muladd4(h00, ab0, h01, cd0));
    _mm256_storeu_pd(r1 + i, muladd4(h00, ab1, h01, cd1));
    _mm256_storeu_pd(r2 + i, muladd4(h10, ab0, h11, cd0));
    _mm256_storeu_pd(r3 + i, muladd4(h10, ab1, h11, cd1));
  }
  for (; i < cnt; ++i) {
    const double a = r0[i];
    const double b = r1[i];
    const double c = r2[i];
    const double d = r3[i];
    const double ab0 = fl.m00 * a + fl.m01 * b;
    const double ab1 = fl.m10 * a + fl.m11 * b;
    const double cd0 = fl.m00 * c + fl.m01 * d;
    const double cd1 = fl.m10 * c + fl.m11 * d;
    r0[i] = fh.m00 * ab0 + fh.m01 * cd0;
    r1[i] = fh.m00 * ab1 + fh.m01 * cd1;
    r2[i] = fh.m10 * ab0 + fh.m11 * cd0;
    r3[i] = fh.m10 * ab1 + fh.m11 * cd1;
  }
}

inline __attribute__((always_inline)) void sv_bf2_avx2(__m256d& a, __m256d& b,
                                                       __m256d m00, __m256d m01,
                                                       __m256d m10, __m256d m11) {
  const __m256d t = a;
  a = muladd4(m00, t, m01, b);
  b = muladd4(m10, t, m11, b);
}

inline void sv_bf2_tail(double& a, double& b, Factor2 f) {
  const double t = a;
  a = f.m00 * t + f.m01 * b;
  b = f.m10 * t + f.m11 * b;
}

void sv_butterfly_oct_span_avx2(double* p, std::size_t stride, std::size_t cnt,
                                Factor2 f0, Factor2 f1, Factor2 f2) {
  const __m256d a00 = _mm256_set1_pd(f0.m00), a01 = _mm256_set1_pd(f0.m01);
  const __m256d a10 = _mm256_set1_pd(f0.m10), a11 = _mm256_set1_pd(f0.m11);
  const __m256d b00 = _mm256_set1_pd(f1.m00), b01 = _mm256_set1_pd(f1.m01);
  const __m256d b10 = _mm256_set1_pd(f1.m10), b11 = _mm256_set1_pd(f1.m11);
  const __m256d c00 = _mm256_set1_pd(f2.m00), c01 = _mm256_set1_pd(f2.m01);
  const __m256d c10 = _mm256_set1_pd(f2.m10), c11 = _mm256_set1_pd(f2.m11);
  double* r0 = p;
  double* r1 = p + stride;
  double* r2 = p + 2 * stride;
  double* r3 = p + 3 * stride;
  double* r4 = p + 4 * stride;
  double* r5 = p + 5 * stride;
  double* r6 = p + 6 * stride;
  double* r7 = p + 7 * stride;
  std::size_t i = 0;
  for (; i + 4 <= cnt; i += 4) {
    __m256d v0 = _mm256_loadu_pd(r0 + i);
    __m256d v1 = _mm256_loadu_pd(r1 + i);
    __m256d v2 = _mm256_loadu_pd(r2 + i);
    __m256d v3 = _mm256_loadu_pd(r3 + i);
    __m256d v4 = _mm256_loadu_pd(r4 + i);
    __m256d v5 = _mm256_loadu_pd(r5 + i);
    __m256d v6 = _mm256_loadu_pd(r6 + i);
    __m256d v7 = _mm256_loadu_pd(r7 + i);
    sv_bf2_avx2(v0, v1, a00, a01, a10, a11);
    sv_bf2_avx2(v2, v3, a00, a01, a10, a11);
    sv_bf2_avx2(v4, v5, a00, a01, a10, a11);
    sv_bf2_avx2(v6, v7, a00, a01, a10, a11);
    sv_bf2_avx2(v0, v2, b00, b01, b10, b11);
    sv_bf2_avx2(v1, v3, b00, b01, b10, b11);
    sv_bf2_avx2(v4, v6, b00, b01, b10, b11);
    sv_bf2_avx2(v5, v7, b00, b01, b10, b11);
    sv_bf2_avx2(v0, v4, c00, c01, c10, c11);
    sv_bf2_avx2(v1, v5, c00, c01, c10, c11);
    sv_bf2_avx2(v2, v6, c00, c01, c10, c11);
    sv_bf2_avx2(v3, v7, c00, c01, c10, c11);
    _mm256_storeu_pd(r0 + i, v0);
    _mm256_storeu_pd(r1 + i, v1);
    _mm256_storeu_pd(r2 + i, v2);
    _mm256_storeu_pd(r3 + i, v3);
    _mm256_storeu_pd(r4 + i, v4);
    _mm256_storeu_pd(r5 + i, v5);
    _mm256_storeu_pd(r6 + i, v6);
    _mm256_storeu_pd(r7 + i, v7);
  }
  for (; i < cnt; ++i) {
    double v0 = r0[i], v1 = r1[i], v2 = r2[i], v3 = r3[i];
    double v4 = r4[i], v5 = r5[i], v6 = r6[i], v7 = r7[i];
    sv_bf2_tail(v0, v1, f0);
    sv_bf2_tail(v2, v3, f0);
    sv_bf2_tail(v4, v5, f0);
    sv_bf2_tail(v6, v7, f0);
    sv_bf2_tail(v0, v2, f1);
    sv_bf2_tail(v1, v3, f1);
    sv_bf2_tail(v4, v6, f1);
    sv_bf2_tail(v5, v7, f1);
    sv_bf2_tail(v0, v4, f2);
    sv_bf2_tail(v1, v5, f2);
    sv_bf2_tail(v2, v6, f2);
    sv_bf2_tail(v3, v7, f2);
    r0[i] = v0;
    r1[i] = v1;
    r2[i] = v2;
    r3[i] = v3;
    r4[i] = v4;
    r5[i] = v5;
    r6[i] = v6;
    r7[i] = v7;
  }
}

void sv_mul_span_avx2(double* y, const double* x, const double* s,
                      std::size_t cnt) {
  std::size_t i = 0;
  for (; i + 4 <= cnt; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_mul_pd(_mm256_loadu_pd(s + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < cnt; ++i) y[i] = s[i] * x[i];
}

void sv_mul_span_inplace_avx2(double* y, const double* s, std::size_t cnt) {
  sv_mul_span_avx2(y, y, s, cnt);
}

constexpr SvKernels kAvx2SvKernels{
    sv_butterfly_span_avx2, sv_butterfly_quad_span_avx2,
    sv_butterfly_oct_span_avx2, sv_mul_span_avx2,
    sv_mul_span_inplace_avx2, "avx2",
};

}  // namespace

const SvKernels* sv_avx2_table() {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return &kAvx2SvKernels;
  return nullptr;
#else
  // No runtime probe available: be conservative and stay on autovec.
  return nullptr;
#endif
}

}  // namespace qs::transforms

#endif  // QS_HAVE_SV_AVX2_KERNELS
