#include "transforms/fwht.hpp"

#include <cmath>

#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::transforms {

void fwht(std::span<double> v) {
  const std::size_t n = v.size();
  require(is_power_of_two(n), "fwht: length must be a power of two");
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t j = 0; j < n; j += h << 1) {
      for (std::size_t k = j; k < j + h; ++k) {
        const double t1 = v[k];
        const double t2 = v[k + h];
        v[k] = t1 + t2;
        v[k + h] = t1 - t2;
      }
    }
  }
}

void fwht_normalized(std::span<double> v) {
  fwht(v);
  const double scale = 1.0 / std::sqrt(static_cast<double>(v.size()));
  for (double& x : v) x *= scale;
}

}  // namespace qs::transforms
