#include "transforms/panel_butterfly.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"
#include "transforms/panel_microkernel.hpp"

namespace qs::transforms {
namespace {

#if QS_TRACING_ON
/// Tags each panel sweep with the microkernel table that served it.  The
/// counter name must be a static string, so branch on the tier once.
void trace_kernel_tag(const PanelKernels* kp) {
  if (!qs::obs::enabled()) return;
  if (std::strcmp(kp->name, "avx512") == 0) {
    QS_TRACE_COUNTER("kernel.dispatch.avx512", 1);
  } else if (std::strcmp(kp->name, "avx2") == 0) {
    QS_TRACE_COUNTER("kernel.dispatch.avx2", 1);
  } else {
    QS_TRACE_COUNTER("kernel.dispatch.scalar", 1);
  }
}
#define QS_TRACE_KERNEL_TAG(kp) trace_kernel_tag(kp)
#else
#define QS_TRACE_KERNEL_TAG(kp) ((void)0)
#endif

constexpr unsigned ceil_log2(std::size_t m) {
  unsigned l = 0;
  while ((std::size_t{1} << l) < m) ++l;
  return l;
}

/// Sub-block size (log2 doubles) for the staged level sweep: 2^12
/// doubles = 32 KiB, sized to stay resident in a typical 32-48 KiB L1d
/// while the lowest butterfly levels are swept over it.
constexpr unsigned kSubTileLog2 = 12;

/// Middle-stage block size (log2 doubles) for oversized tiles: 2^17
/// doubles = 1 MiB, sized to a typical L2.  A default-plan panel tile is
/// at most this big already (panel_plan shrinks the tile as m grows), so
/// the middle stage only activates for custom or autotuned plans whose
/// tile * m outgrows L2 — there it keeps all but the top tile levels
/// L2-resident instead of sweeping them repeatedly at L3/DRAM speed.
constexpr unsigned kMidTileLog2 = 17;

/// Sweeps butterfly levels [l0, l1) of `fs` over a contiguous block of
/// total_d doubles organised as rows of w doubles each — level l pairs rows
/// r and r + 2^l, i.e. two w*2^l-double spans sitting next to each other.
/// Three levels go at a time through the radix-8 oct kernel, then two
/// through the radix-4 quad, then a final odd level through the pair
/// kernel: same arithmetic, in the same ascending order, at 1/3 resp. 1/2
/// the block traffic of single-level sweeps.  (A radix-16 variant was tried
/// and measured ~25% slower — sixteen live rows exhaust the sixteen ymm
/// registers and the spills cost more than the saved sweep.)
void sweep_levels(const PanelKernels* kp, const Factor2* fs, std::size_t w,
                  double* base, std::size_t total_d, unsigned l0, unsigned l1) {
  unsigned l = l0;
  for (; l + 2 < l1; l += 3) {
    const std::size_t cnt = (std::size_t{1} << l) * w;
    const Factor2 f0 = fs[l];
    const Factor2 f1 = fs[l + 1];
    const Factor2 f2 = fs[l + 2];
    for (std::size_t j = 0; j < total_d; j += cnt << 3) {
      kp->butterfly_oct_span(base + j, cnt, cnt, f0, f1, f2);
    }
  }
  for (; l + 1 < l1; l += 2) {
    const std::size_t cnt = (std::size_t{1} << l) * w;
    const Factor2 f_lo = fs[l];
    const Factor2 f_hi = fs[l + 1];
    for (std::size_t j = 0; j < total_d; j += cnt << 2) {
      kp->butterfly_quad_span(base + j, base + j + cnt, base + j + 2 * cnt,
                              base + j + 3 * cnt, cnt, f_lo, f_hi);
    }
  }
  for (; l < l1; ++l) {
    const std::size_t cnt = (std::size_t{1} << l) * w;
    const Factor2 f = fs[l];
    for (std::size_t j = 0; j < total_d; j += cnt << 1) {
      kp->butterfly_span(base + j, base + j + cnt, cnt, f);
    }
  }
}

/// Staged sweep of levels [0, levels): the lowest levels run sub-block by
/// sub-block on an L1-resident span, then (for blocks past ~2x L2 — i.e.
/// wide panels) a middle stage on L2-sized blocks, and the remaining levels
/// on the whole block.  Butterfly pairs of level l < k never cross a
/// 2^k-row stage block, and every element still sees its levels in
/// ascending order, so the result is bit-identical to the single-stage
/// sweep regardless of how many stages run.
void sweep_levels_staged(const PanelKernels* kp, const Factor2* fs,
                         std::size_t w, double* base, std::size_t total_d,
                         unsigned levels) {
  const std::size_t sub_d = std::size_t{1} << kSubTileLog2;
  if (total_d <= 2 * sub_d || levels <= 1) {
    sweep_levels(kp, fs, w, base, total_d, 0, levels);
    return;
  }
  unsigned k_in = kSubTileLog2 > ceil_log2(w) ? kSubTileLog2 - ceil_log2(w) : 1;
  if (k_in >= levels) k_in = levels - 1;
  const std::size_t sub = (std::size_t{1} << k_in) * w;
  const std::size_t mid_d = std::size_t{1} << kMidTileLog2;
  if (total_d > mid_d && levels > k_in + 1) {
    unsigned k_mid =
        kMidTileLog2 > ceil_log2(w) ? kMidTileLog2 - ceil_log2(w) : k_in + 1;
    if (k_mid <= k_in) k_mid = k_in + 1;
    if (k_mid >= levels) k_mid = levels - 1;
    const std::size_t mid = (std::size_t{1} << k_mid) * w;
    for (std::size_t j = 0; j < total_d; j += mid) {
      for (std::size_t jj = 0; jj < mid; jj += sub) {
        sweep_levels(kp, fs, w, base + j + jj, sub, 0, k_in);
      }
      sweep_levels(kp, fs, w, base + j, mid, k_in, k_mid);
    }
    sweep_levels(kp, fs, w, base, total_d, k_mid, levels);
    return;
  }
  for (std::size_t j = 0; j < total_d; j += sub) {
    sweep_levels(kp, fs, w, base + j, sub, 0, k_in);
  }
  sweep_levels(kp, fs, w, base, total_d, k_in, levels);
}

/// How a diagonal scaling span addresses the panel.
enum class ScaleMode { none, broadcast, per_column };

ScaleMode scale_mode(std::span<const double> s, std::size_t n, std::size_t m) {
  if (s.empty()) return ScaleMode::none;
  if (s.size() == n) return ScaleMode::broadcast;
  require(s.size() == n * m,
          "panel butterfly: scalings must be empty, length N (broadcast), or "
          "length N*m (per column)");
  return ScaleMode::per_column;
}

}  // namespace

BlockedPlan panel_plan(const BlockedPlan& plan, std::size_t m) {
  // The single-vector default tile (2^14 doubles = 128 KiB) deliberately
  // uses a fraction of a typical L2, so a panel tile can grow 8x (m <= 8)
  // before it pressures the cache; only wider panels shrink the tile.
  // Keeping the tile wide keeps the band count low, which is what decides
  // the pass count over a DRAM-resident panel.  Measured at nu = 22, m = 8:
  // the unshrunk tile is ~20% faster than shrinking by log2(m).
  constexpr unsigned kHeadroomLog2 = 3;
  BlockedPlan eff = plan;
  const unsigned lm = ceil_log2(m);
  const unsigned shrink = lm > kHeadroomLog2 ? lm - kHeadroomLog2 : 0;
  eff.tile_log2 = eff.tile_log2 > eff.chunk_log2 + shrink
                      ? eff.tile_log2 - shrink
                      : eff.chunk_log2 + 1;
  return eff;
}

void apply_blocked_panel_butterfly_fused(std::span<const double> x,
                                         std::span<double> y, std::size_t m,
                                         std::span<const Factor2> factors,
                                         std::span<const double> pre_scale,
                                         std::span<const double> post_scale,
                                         const parallel::Engine& engine,
                                         const BlockedPlan& plan) {
  require(m >= 1, "panel butterfly: panel width m must be >= 1");
  const std::size_t total = y.size();
  require(x.size() == total, "panel butterfly: x and y sizes differ");
  require(total % m == 0, "panel butterfly: panel size must be a multiple of m");
  const std::size_t n = total / m;
  require(is_power_of_two(n), "panel butterfly: row count must be a power of two");
  const unsigned nu = log2_exact(n);
  require(factors.size() == nu, "panel butterfly: need exactly log2(N) factors");
  require(x.data() == y.data() || x.data() + total <= y.data() ||
              y.data() + total <= x.data(),
          "panel butterfly: x and y must alias exactly or not at all");
  const ScaleMode pre_mode = scale_mode(pre_scale, n, m);
  const ScaleMode post_mode = scale_mode(post_scale, n, m);

  const double* xs = x.data();
  double* ys = y.data();
  const double* pres = pre_scale.empty() ? nullptr : pre_scale.data();
  const double* posts = post_scale.empty() ? nullptr : post_scale.data();
  const Factor2* fs = factors.data();
  const PanelKernels* kp = &panel_kernels();

  if (nu == 0) {
    // Single panel row: just the scalings.
    if (pre_mode == ScaleMode::broadcast) {
      kp->mul_rows_broadcast(ys, xs, pres, 1, m);
    } else if (pre_mode == ScaleMode::per_column) {
      kp->mul_span(ys, xs, pres, m);
    } else if (xs != ys) {
      std::memcpy(ys, xs, m * sizeof(double));
    }
    if (post_mode == ScaleMode::broadcast) {
      kp->mul_rows_broadcast_inplace(ys, posts, 1, m);
    } else if (post_mode == ScaleMode::per_column) {
      kp->mul_span_inplace(ys, posts, m);
    }
    return;
  }

  const BlockedPlan eff = panel_plan(plan, m);
  const BandBounds bounds = blocked_band_bounds(nu, eff);
  const std::size_t bands = bounds.bands();
  QS_TRACE_KERNEL_TAG(kp);

  // Band 0: levels [0, k1) stay inside contiguous tiles of 2^k1 panel rows
  // (2^k1 * m doubles); the pre-scale (and, for a single-band problem, the
  // post-scale) rides in the tile loop.  Each butterfly pair of rows is two
  // contiguous bursts of stride*m doubles.
  {
    QS_TRACE_SPAN_ARG("fmmp.panel_band", kernel, 0);
    const unsigned k1 = bounds[1];
    const std::size_t tile = std::size_t{1} << k1;
    const std::size_t tiles = n >> k1;
    const bool fuse_post = (bands == 1) && post_mode != ScaleMode::none;
    engine.dispatch(tiles, [=](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        const std::size_t base_e = t << k1;
        const std::size_t base_d = base_e * m;
        double* yt = ys + base_d;
        if (pre_mode == ScaleMode::broadcast) {
          kp->mul_rows_broadcast(yt, xs + base_d, pres + base_e, tile, m);
        } else if (pre_mode == ScaleMode::per_column) {
          kp->mul_span(yt, xs + base_d, pres + base_d, tile * m);
        } else if (xs != ys) {
          std::memcpy(yt, xs + base_d, tile * m * sizeof(double));
        }
        sweep_levels_staged(kp, fs, m, yt, tile * m, k1);
        if (fuse_post) {
          if (post_mode == ScaleMode::broadcast) {
            kp->mul_rows_broadcast_inplace(yt, posts + base_e, tile, m);
          } else {
            kp->mul_span_inplace(yt, posts + base_d, tile * m);
          }
        }
      }
    });
  }

  // High bands: levels [k0, k1) couple bits k0..k1-1 of the row index.  A
  // work item owns one gather panel restricted to 2^chunk contiguous low
  // rows, so every access is a contiguous burst of 2^chunk * m doubles.
  for (std::size_t band = 1; band < bands; ++band) {
    QS_TRACE_SPAN_ARG("fmmp.panel_band", kernel, band);
    const unsigned k0 = bounds[band];
    const unsigned k1 = bounds[band + 1];
    const unsigned b = k1 - k0;
    const unsigned chunk = std::min(eff.chunk_log2, k0);
    const std::size_t rows = std::size_t{1} << b;
    const std::size_t cols = std::size_t{1} << chunk;
    const std::size_t cnt = cols * m;
    const std::size_t items = n >> (b + chunk);
    const std::size_t chunks_per_low = std::size_t{1} << (k0 - chunk);
    const bool fuse_post = (band == bands - 1) && post_mode != ScaleMode::none;
    const Factor2* bandf = fs + k0;
    if (b >= 99) {
      // Wide band: sweeping the strided gather rows directly would stream
      // the whole panel once per two-to-three levels.  Instead copy each
      // gather panel into a dense scratch block (rows*cnt <= 2^tile * m
      // doubles — blocked_band_boundaries caps the band — i.e. the same
      // cache footprint as a band-0 tile), run all b levels there with the
      // contiguous sweep, and scatter back: one DRAM read and one DRAM
      // write for the entire band, regardless of b.  The copies do not
      // change any value and the level order is unchanged, so the result
      // stays bit-identical to the direct path.
      engine.dispatch(items, [=](std::size_t begin, std::size_t end) {
        std::vector<double> scratch(rows * cnt);
        double* sc = scratch.data();
        for (std::size_t id = begin; id < end; ++id) {
          const std::size_t high = id / chunks_per_low;
          const std::size_t lc = id % chunks_per_low;
          const std::size_t base_e = (high << k1) + (lc << chunk);
          for (std::size_t r = 0; r < rows; ++r) {
            std::memcpy(sc + r * cnt, ys + (base_e + (r << k0)) * m,
                        cnt * sizeof(double));
          }
          sweep_levels_staged(kp, bandf, cnt, sc, rows * cnt, b);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t row_e = base_e + (r << k0);
            double* dst = ys + row_e * m;
            const double* src = sc + r * cnt;
            if (!fuse_post) {
              std::memcpy(dst, src, cnt * sizeof(double));
            } else if (post_mode == ScaleMode::broadcast) {
              kp->mul_rows_broadcast(dst, src, posts + row_e, cols, m);
            } else {
              kp->mul_span(dst, src, posts + row_e * m, cnt);
            }
          }
        }
      });
      continue;
    }
    engine.dispatch(items, [=](std::size_t begin, std::size_t end) {
      for (std::size_t id = begin; id < end; ++id) {
        const std::size_t high = id / chunks_per_low;
        const std::size_t lc = id % chunks_per_low;
        const std::size_t base_e = (high << k1) + (lc << chunk);
        // Same radix-8/radix-4 fusion as the low band, on the gather rows
        // r + k*s (s = 2^l band rows) spaced 2^k0 panel rows apart.
        unsigned l = 0;
        for (; l + 2 < b; l += 3) {
          const std::size_t rstride = std::size_t{1} << l;
          const std::size_t step = (rstride << k0) * m;
          const Factor2 f0 = bandf[l];
          const Factor2 f1 = bandf[l + 1];
          const Factor2 f2 = bandf[l + 2];
          for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 3) {
            for (std::size_t r = r0; r < r0 + rstride; ++r) {
              kp->butterfly_oct_span(ys + (base_e + (r << k0)) * m, step, cnt,
                                     f0, f1, f2);
            }
          }
        }
        for (; l + 1 < b; l += 2) {
          const std::size_t rstride = std::size_t{1} << l;
          const std::size_t step = (rstride << k0) * m;
          const Factor2 f_lo = bandf[l];
          const Factor2 f_hi = bandf[l + 1];
          for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 2) {
            for (std::size_t r = r0; r < r0 + rstride; ++r) {
              double* p0 = ys + (base_e + (r << k0)) * m;
              kp->butterfly_quad_span(p0, p0 + step, p0 + 2 * step,
                                      p0 + 3 * step, cnt, f_lo, f_hi);
            }
          }
        }
        for (; l < b; ++l) {
          const std::size_t rstride = std::size_t{1} << l;
          const Factor2 f = bandf[l];
          for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 1) {
            for (std::size_t r = r0; r < r0 + rstride; ++r) {
              double* lo = ys + (base_e + (r << k0)) * m;
              double* hi = lo + ((rstride << k0)) * m;
              kp->butterfly_span(lo, hi, cnt, f);
            }
          }
        }
        if (fuse_post) {
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t row_e = base_e + (r << k0);
            if (post_mode == ScaleMode::broadcast) {
              kp->mul_rows_broadcast_inplace(ys + row_e * m, posts + row_e, cols, m);
            } else {
              kp->mul_span_inplace(ys + row_e * m, posts + row_e * m, cnt);
            }
          }
        }
      }
    });
  }
}

void apply_blocked_panel_butterfly(std::span<double> panel, std::size_t m,
                                   std::span<const Factor2> factors,
                                   const parallel::Engine& engine,
                                   const BlockedPlan& plan) {
  apply_blocked_panel_butterfly_fused(panel, panel, m, factors, {}, {}, engine, plan);
}

void apply_panel_wide_fused(std::span<const double> x, std::span<double> y,
                            std::size_t m, std::span<const Factor2> factors,
                            std::span<const double> pre_scale,
                            std::span<const double> post_scale,
                            const parallel::Engine& engine,
                            const BlockedPlan& plan) {
  require(m >= 1, "panel butterfly: panel width m must be >= 1");
  // Wide panels sweep at full width — every span primitive takes an
  // arbitrary length, and per column the per-element butterfly sequence is
  // identical to an m <= 8 run, so results are bit-identical per column to
  // solving each 8-column block directly.  panel_plan's width shrink (keep
  // tile * m at the m = 8 cache footprint) carries over unchanged: on the
  // reference host it measured best-or-tied for m = 16 and 32 at every
  // nu in {18..22} against two alternatives that were built and rejected:
  //   * explicit column staging (pack 8 columns at a time through a dense
  //     scratch panel, gather/scatter fused into the first/last band):
  //     1.6-2.4x slower at nu = 22 — 64-byte strided column windows stream
  //     far below contiguous DRAM bandwidth;
  //   * a width-adjusted plan (tile pre-grown so the band bounds match the
  //     m = 8 plan, chunk shrunk to keep high-band gathers L2-sized):
  //     within noise of the plain plan at nu >= 20, slower below — the
  //     extra band the shrunken tile sometimes costs is cheaper than
  //     sweeping tile levels beyond L2.
  apply_blocked_panel_butterfly_fused(x, y, m, factors, pre_scale, post_scale,
                                      engine, plan);
}

void apply_panel_wide(std::span<double> panel, std::size_t m,
                      std::span<const Factor2> factors,
                      const parallel::Engine& engine, const BlockedPlan& plan) {
  apply_panel_wide_fused(panel, panel, m, factors, {}, {}, engine, plan);
}

void pack_panel_column(std::span<const double> column, std::span<double> panel,
                       std::size_t m, std::size_t j) {
  require(m >= 1 && j < m, "pack_panel_column: column index out of range");
  require(column.size() * m == panel.size(), "pack_panel_column: size mismatch");
  for (std::size_t i = 0; i < column.size(); ++i) panel[i * m + j] = column[i];
}

void unpack_panel_column(std::span<const double> panel, std::size_t m,
                         std::size_t j, std::span<double> column) {
  require(m >= 1 && j < m, "unpack_panel_column: column index out of range");
  require(column.size() * m == panel.size(), "unpack_panel_column: size mismatch");
  for (std::size_t i = 0; i < column.size(); ++i) column[i] = panel[i * m + j];
}

}  // namespace qs::transforms
