#include "transforms/sv_microkernel.hpp"

namespace qs::transforms {
namespace {

// Scalar reference kernels.  Exactly the expressions of the plain banded
// loops (two roundings per output: multiply, multiply, add); the SIMD tables
// keep the same expression per element, so every tier is bit-identical.

void sv_butterfly_span_scalar(double* lo, double* hi, std::size_t cnt, Factor2 f) {
  for (std::size_t i = 0; i < cnt; ++i) {
    const double t1 = lo[i];
    const double t2 = hi[i];
    lo[i] = f.m00 * t1 + f.m01 * t2;
    hi[i] = f.m10 * t1 + f.m11 * t2;
  }
}

void sv_butterfly_quad_span_scalar(double* r0, double* r1, double* r2,
                                   double* r3, std::size_t cnt, Factor2 fl,
                                   Factor2 fh) {
  for (std::size_t i = 0; i < cnt; ++i) {
    const double a = r0[i];
    const double b = r1[i];
    const double c = r2[i];
    const double d = r3[i];
    const double ab0 = fl.m00 * a + fl.m01 * b;
    const double ab1 = fl.m10 * a + fl.m11 * b;
    const double cd0 = fl.m00 * c + fl.m01 * d;
    const double cd1 = fl.m10 * c + fl.m11 * d;
    r0[i] = fh.m00 * ab0 + fh.m01 * cd0;
    r1[i] = fh.m00 * ab1 + fh.m01 * cd1;
    r2[i] = fh.m10 * ab0 + fh.m11 * cd0;
    r3[i] = fh.m10 * ab1 + fh.m11 * cd1;
  }
}

inline void sv_bf2_scalar(double& a, double& b, Factor2 f) {
  const double t = a;
  a = f.m00 * t + f.m01 * b;
  b = f.m10 * t + f.m11 * b;
}

void sv_butterfly_oct_span_scalar(double* p, std::size_t stride, std::size_t cnt,
                                  Factor2 f0, Factor2 f1, Factor2 f2) {
  double* r0 = p;
  double* r1 = p + stride;
  double* r2 = p + 2 * stride;
  double* r3 = p + 3 * stride;
  double* r4 = p + 4 * stride;
  double* r5 = p + 5 * stride;
  double* r6 = p + 6 * stride;
  double* r7 = p + 7 * stride;
  for (std::size_t i = 0; i < cnt; ++i) {
    double v0 = r0[i], v1 = r1[i], v2 = r2[i], v3 = r3[i];
    double v4 = r4[i], v5 = r5[i], v6 = r6[i], v7 = r7[i];
    sv_bf2_scalar(v0, v1, f0);
    sv_bf2_scalar(v2, v3, f0);
    sv_bf2_scalar(v4, v5, f0);
    sv_bf2_scalar(v6, v7, f0);
    sv_bf2_scalar(v0, v2, f1);
    sv_bf2_scalar(v1, v3, f1);
    sv_bf2_scalar(v4, v6, f1);
    sv_bf2_scalar(v5, v7, f1);
    sv_bf2_scalar(v0, v4, f2);
    sv_bf2_scalar(v1, v5, f2);
    sv_bf2_scalar(v2, v6, f2);
    sv_bf2_scalar(v3, v7, f2);
    r0[i] = v0;
    r1[i] = v1;
    r2[i] = v2;
    r3[i] = v3;
    r4[i] = v4;
    r5[i] = v5;
    r6[i] = v6;
    r7[i] = v7;
  }
}

void sv_mul_span_scalar(double* y, const double* x, const double* s,
                        std::size_t cnt) {
  for (std::size_t i = 0; i < cnt; ++i) y[i] = s[i] * x[i];
}

void sv_mul_span_inplace_scalar(double* y, const double* s, std::size_t cnt) {
  for (std::size_t i = 0; i < cnt; ++i) y[i] *= s[i];
}

constexpr SvKernels kScalarSvKernels{
    sv_butterfly_span_scalar, sv_butterfly_quad_span_scalar,
    sv_butterfly_oct_span_scalar, sv_mul_span_scalar,
    sv_mul_span_inplace_scalar, "scalar",
};

}  // namespace

const SvKernels& scalar_sv_kernels() { return kScalarSvKernels; }

#if defined(QS_HAVE_SV_AVX2_KERNELS)
// Defined in sv_microkernel_avx.cpp (compiled with -mavx2 -ffp-contract=off,
// no -mfma); returns null when the running CPU lacks avx2.
const SvKernels* sv_avx2_table();
#endif
#if defined(QS_HAVE_SV_AVX512_KERNELS)
// Defined in sv_microkernel_avx512.cpp (compiled with -mavx512f
// -ffp-contract=off); returns null when the running CPU lacks avx512f.
const SvKernels* sv_avx512_table();
#endif

const SvKernels* avx2_sv_kernels() {
#if defined(QS_HAVE_SV_AVX2_KERNELS)
  return sv_avx2_table();
#else
  return nullptr;
#endif
}

const SvKernels* avx512_sv_kernels() {
#if defined(QS_HAVE_SV_AVX512_KERNELS)
  return sv_avx512_table();
#else
  return nullptr;
#endif
}

const SvKernels* best_sv_kernels() {
  // Resolved once, widest first; the probe is cheap but there is no reason
  // to repeat it.
  static const SvKernels* best = [] {
    if (const SvKernels* k = avx512_sv_kernels(); k != nullptr) return k;
    return avx2_sv_kernels();
  }();
  return best;
}

const SvKernels* resolve_sv_kernels(SvKernel choice) {
  switch (choice) {
    case SvKernel::automatic:
      return best_sv_kernels();
    case SvKernel::autovec:
      return nullptr;
    case SvKernel::avx2:
      return avx2_sv_kernels();
    case SvKernel::avx512:
      return avx512_sv_kernels();
  }
  return nullptr;
}

const char* to_string(SvKernel choice) {
  switch (choice) {
    case SvKernel::automatic:
      return "automatic";
    case SvKernel::autovec:
      return "autovec";
    case SvKernel::avx2:
      return "avx2";
    case SvKernel::avx512:
      return "avx512";
  }
  return "automatic";
}

const char* resolved_sv_kernel_name(SvKernel choice) {
  const SvKernels* k = resolve_sv_kernels(choice);
  return k != nullptr ? k->name : "autovec";
}

}  // namespace qs::transforms
