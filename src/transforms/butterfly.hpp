// Generic 2x2-factor Kronecker butterfly transforms.
//
// Every mutation matrix of the form Q = M_{nu-1} (x) ... (x) M_0 with 2x2
// factors (uniform error rate, per-site error rates, asymmetric 0->1 / 1->0
// rates) acts on a vector through nu butterfly levels: the level of stride
// 2^k applies the factor M_k across bit k of the sequence index.  This is
// the structural heart of the paper's Fmmp (Section 2.1) in its full
// per-site generality (Section 2.2).
#pragma once

#include <array>
#include <span>
#include <vector>

namespace qs::transforms {

/// A 2x2 real matrix [[m00, m01], [m10, m11]] acting on one sequence
/// position: entry (r, c) is the probability that the position reads r after
/// mutation given it was c before (column-stochastic for valid models).
struct Factor2 {
  double m00 = 1.0;
  double m01 = 0.0;
  double m10 = 0.0;
  double m11 = 1.0;

  /// The symmetric uniform-error-rate factor [[1-p, p], [p, 1-p]].
  static constexpr Factor2 uniform(double p) { return {1.0 - p, p, p, 1.0 - p}; }

  /// General single-site process from the two flip probabilities:
  /// p01 = P(0 -> 1), p10 = P(1 -> 0). Column stochastic by construction.
  static constexpr Factor2 asymmetric(double p01, double p10) {
    return {1.0 - p01, p10, p01, 1.0 - p10};
  }

  /// Maximum column-sum deviation from 1.
  double stochastic_deviation() const;

  /// Transposed factor.
  constexpr Factor2 transposed() const { return {m00, m10, m01, m11}; }
};

/// Order in which the butterfly levels are traversed.  Both orders compute
/// the same product because the level operators commute; they differ in
/// memory traversal, which is what the paper's Eq. (9) vs Eq. (10)
/// distinction amounts to for an iterative implementation.
enum class LevelOrder {
  ascending,   ///< stride 1, 2, 4, ... (Eq. (9) unrolled bottom-up)
  descending,  ///< stride N/2, ..., 2, 1 (Eq. (10))
};

/// In-place transform v <- (F_{nu-1} (x) ... (x) F_0) v where factors[k]
/// acts on bit k. Requires v.size() == 2^factors.size().
void apply_butterfly(std::span<double> v, std::span<const Factor2> factors,
                     LevelOrder order = LevelOrder::ascending);

/// Uniform special case: every level applies Factor2::uniform(p); this is
/// the literal Algorithm 1 of the paper.
void apply_uniform_butterfly(std::span<double> v, double p,
                             LevelOrder order = LevelOrder::ascending);

/// In-place single level of stride 2^k: v <- (I (x) F (x) I) v with F on
/// bit k. Exposed separately so the parallel engine can schedule levels.
void apply_butterfly_level(std::span<double> v, const Factor2& f, unsigned k);

}  // namespace qs::transforms
