// Single-vector SIMD microkernels for the banded butterfly.
//
// The panel (multi-vector) path has had hand-written AVX2/AVX-512 kernels
// since the panel layer landed; the *single-vector* banded kernel — the one
// every default solve(), Lanczos/Arnoldi cycle, and service request actually
// runs — leaned on compiler autovectorisation.  This module closes that gap
// with a second, separate kernel table specialised for contiguous
// single-vector spans.
//
// The contract differs from transforms/panel_microkernel in one crucial way:
// these kernels are BIT-IDENTICAL to the plain C++ banded loops.  The panel
// kernels fuse each a*x + b*y into one FMA (one rounding); a solver that
// switches kernel tier there changes results by a few ULP, which the panel
// tests document.  The single-vector kernel sits underneath every default
// solve, so a tier switch must not move a single bit: the SIMD
// implementations here use separate vmulpd + vaddpd (two roundings, exactly
// the scalar expression m00*t1 + m01*t2), their translation units are built
// WITHOUT -mfma and with -ffp-contract=off, and the runtime probes require
// only avx2 / avx512f (not fma).  scalar == avx2 == avx512 bitwise, and all
// three equal the historical autovectorised loops.
//
//   * scalar: always compiled, the reference table;
//   * AVX2: compiled only when the build probe passed (QS_ENABLE_SIMD, see
//     the top-level CMakeLists), selected only when the CPU reports avx2;
//   * AVX-512F: same contract, preferred over AVX2 when available.
//
// The radix-4/radix-8 kernels fuse two/three butterfly levels per sweep —
// per element the same ascending per-level 2x2 applications, so fusion (and
// the L1 sub-tile staging built on it in blocked_butterfly.cpp) preserves
// bit-identity; only the traversal order of *independent* pairs changes.
#pragma once

#include <cstddef>

#include "transforms/butterfly.hpp"

namespace qs::transforms {

/// Table of contiguous-span kernels the single-vector banded butterfly is
/// built from.  Same shapes as PanelKernels' butterfly members (the banded
/// sweep structure is shared); no broadcast-row ops — a single vector's
/// diagonal scalings are plain element-wise products.
struct SvKernels {
  /// Butterfly across two contiguous spans: for i in [0, cnt),
  /// (lo[i], hi[i]) <- (m00 lo[i] + m01 hi[i], m10 lo[i] + m11 hi[i]).
  void (*butterfly_span)(double* lo, double* hi, std::size_t cnt, Factor2 f);

  /// Two fused levels (radix-4) on four equally shaped spans: f_lo on the
  /// pairs (r0,r1) and (r2,r3), then f_hi on (r0,r2) and (r1,r3) — the
  /// arithmetic of two successive butterfly_span levels with one load and
  /// one store per element.
  void (*butterfly_quad_span)(double* r0, double* r1, double* r2, double* r3,
                              std::size_t cnt, Factor2 f_lo, Factor2 f_hi);

  /// Three fused levels (radix-8) on eight equally spaced spans (span k
  /// starts at p + k*stride): f0 pairs (0,1)(2,3)(4,5)(6,7), then f1 pairs
  /// (0,2)(1,3)(4,6)(5,7), then f2 pairs (0,4)(1,5)(2,6)(3,7).
  void (*butterfly_oct_span)(double* p, std::size_t stride, std::size_t cnt,
                             Factor2 f0, Factor2 f1, Factor2 f2);

  /// y[i] = s[i] * x[i] for i in [0, cnt). x may alias y exactly.
  void (*mul_span)(double* y, const double* x, const double* s, std::size_t cnt);

  /// y[i] *= s[i] for i in [0, cnt).
  void (*mul_span_inplace)(double* y, const double* s, std::size_t cnt);

  /// Implementation name for provenance: "scalar", "avx2", or "avx512".
  const char* name;
};

/// Which single-vector kernel a BlockedPlan requests.
enum class SvKernel : unsigned char {
  automatic = 0,  ///< widest SIMD table the build + CPU support, else autovec
  autovec,        ///< the plain C++ banded loops (compiler autovectorised)
  avx2,           ///< the 4-wide non-FMA table (autovec when unavailable)
  avx512,         ///< the 8-wide non-FMA table (autovec when unavailable)
};

/// The requested choice's name: "automatic", "autovec", "avx2", "avx512".
const char* to_string(SvKernel choice);

/// The portable scalar table (always available; bitwise reference).
const SvKernels& scalar_sv_kernels();

/// The AVX2 table, or null when not compiled in or the CPU lacks avx2.
const SvKernels* avx2_sv_kernels();

/// The AVX-512F table, or null when not compiled in or the CPU lacks avx512f.
const SvKernels* avx512_sv_kernels();

/// The widest SIMD table the build and the running CPU support, or null
/// when none is available — null means "run the autovec loops".
const SvKernels* best_sv_kernels();

/// Resolves a plan's requested kernel to a table: null means the autovec
/// loops (either requested explicitly or because the requested SIMD tier is
/// unavailable on this build/CPU — plans stay portable across hosts).
const SvKernels* resolve_sv_kernels(SvKernel choice);

/// The name of what `choice` resolves to on this build/CPU: "autovec",
/// "avx2", or "avx512".  This is the provenance string recorded in metrics
/// snapshots and BENCH_fig2.json.
const char* resolved_sv_kernel_name(SvKernel choice);

}  // namespace qs::transforms
