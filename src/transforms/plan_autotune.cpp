#include "transforms/plan_autotune.hpp"

#include <algorithm>
#include <fstream>
#include <string>

#include "obs/trace.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"
#include "support/timer.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/panel_butterfly.hpp"

namespace qs::transforms {
namespace {

/// Parses a sysfs cache size string ("48K", "2048K", "8M"); 0 on failure.
std::size_t parse_cache_size(const std::string& text) {
  std::size_t value = 0;
  std::size_t pos = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;
  if (pos < text.size()) {
    const char unit = text[pos];
    if (unit == 'K' || unit == 'k') value <<= 10;
    else if (unit == 'M' || unit == 'm') value <<= 20;
    else if (unit == 'G' || unit == 'g') value <<= 30;
  }
  return value;
}

std::string read_sysfs_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

unsigned floor_log2(std::size_t v) {
  unsigned l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

template <typename T>
T clamp_range(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

CacheHierarchy detect_cache_hierarchy() {
  CacheHierarchy c;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = base + std::to_string(idx) + "/";
    const std::string level = read_sysfs_line(dir + "level");
    if (level.empty()) {
      if (idx == 0) break;  // no cache directory at all
      continue;
    }
    const std::string type = read_sysfs_line(dir + "type");
    if (type == "Instruction") continue;
    const std::size_t bytes = parse_cache_size(read_sysfs_line(dir + "size"));
    if (bytes == 0) continue;
    if (level == "1") c.l1d_bytes = bytes;
    else if (level == "2") c.l2_bytes = bytes;
    else if (level == "3") c.l3_bytes = bytes;
  }
  c.detected = c.l1d_bytes != 0 || c.l2_bytes != 0;
  return c;
}

BlockedPlan cache_heuristic_plan(const CacheHierarchy& caches, std::size_t m) {
  require(m >= 1, "cache_heuristic_plan: panel width m must be >= 1");
  BlockedPlan plan;  // defaults
  if (!caches.detected) return plan;
  if (caches.l2_bytes != 0) {
    // Tile of 2^t * m doubles targeting ~L2/3: the band touches the tile
    // once per level plus the working set of x and y halves.
    const std::size_t doubles = caches.l2_bytes / (3 * sizeof(double) * m);
    plan.tile_log2 = clamp_range(floor_log2(std::max<std::size_t>(doubles, 2)),
                                 10u, 18u);
  }
  if (caches.l1d_bytes != 0) {
    // A gather-panel step streams 2^b rows of 2^chunk * m doubles; keep one
    // row pair within ~L1/8 so the butterfly pair stays L1-resident.
    const std::size_t doubles = caches.l1d_bytes / (8 * sizeof(double) * m);
    plan.chunk_log2 = clamp_range(floor_log2(std::max<std::size_t>(doubles, 2)),
                                  4u, 8u);
  }
  if (plan.tile_log2 <= plan.chunk_log2) plan.tile_log2 = plan.chunk_log2 + 1;
  return plan;
}

AutotuneReport autotune_blocked_plan(unsigned nu, const parallel::Engine& engine,
                                     std::size_t m, unsigned repeats) {
  require(nu >= 1 && nu <= kMaxChainLength,
          "autotune_blocked_plan: chain length out of range");
  require(m >= 1, "autotune_blocked_plan: panel width m must be >= 1");
  require(repeats >= 1, "autotune_blocked_plan: need at least one repeat");

  AutotuneReport report;
  report.caches = detect_cache_hierarchy();

  // Candidate grid: default first (it is the never-regress baseline), the
  // cache heuristic, then tile/chunk neighbours around both.
  std::vector<BlockedPlan> candidates;
  const auto add = [&candidates](BlockedPlan p) {
    if (p.tile_log2 <= p.chunk_log2) p.tile_log2 = p.chunk_log2 + 1;
    for (const BlockedPlan& q : candidates) {
      if (q.tile_log2 == p.tile_log2 && q.chunk_log2 == p.chunk_log2 &&
          q.sv_kernel == p.sv_kernel && q.sv_max_radix == p.sv_max_radix) {
        return;
      }
    }
    candidates.push_back(p);
  };
  const BlockedPlan def{};
  add(def);
  const BlockedPlan heur = cache_heuristic_plan(report.caches, m);
  add(heur);
  for (const BlockedPlan& center : {def, heur}) {
    for (int dt = -2; dt <= 2; ++dt) {
      for (int dc = -1; dc <= 1; ++dc) {
        BlockedPlan p;
        p.tile_log2 = clamp_range<int>(static_cast<int>(center.tile_log2) + dt,
                                       8, 20);
        p.chunk_log2 = clamp_range<int>(static_cast<int>(center.chunk_log2) + dc,
                                        3, 10);
        add(p);
      }
    }
  }

  // Synthetic workload: the uniform banded matvec at the real size and panel
  // width (the memory-traffic pattern is landscape-independent).
  const std::size_t n = std::size_t{1} << nu;
  const std::vector<Factor2> factors(nu, Factor2::uniform(0.01));
  std::vector<double> panel(n * m);
  for (std::size_t i = 0; i < panel.size(); ++i) {
    panel[i] = 1.0 + 1e-6 * static_cast<double>(i % 97);
  }

  // For m == 1 measure the *single-vector* banded kernel — the one default
  // solves and the Krylov cycles actually run, and the only consumer of the
  // plan's sv_kernel/sv_max_radix fields; panels keep the panel workload.
  const auto measure = [&](const BlockedPlan& plan) {
    // Warm-up rep first (first-touch, frequency ramp), then best-of-repeats.
    if (m == 1) {
      apply_blocked_butterfly(panel, factors, engine, plan);
      return qs::best_of_seconds(
          repeats, [&] { apply_blocked_butterfly(panel, factors, engine, plan); });
    }
    apply_blocked_panel_butterfly(panel, m, factors, engine, plan);
    return qs::best_of_seconds(repeats, [&] {
      apply_blocked_panel_butterfly(panel, m, factors, engine, plan);
    });
  };

  QS_TRACE_SPAN_ARG("autotune.measure", autotune, static_cast<int>(nu));
  report.timings.reserve(candidates.size());
  for (const BlockedPlan& plan : candidates) {
    const double best = measure(plan);
    report.timings.push_back({plan, best});
    // arg encodes the candidate: tile_log2 * 100 + chunk_log2.
    QS_TRACE_INSTANT_ARG("autotune.candidate", autotune, best,
                         plan.tile_log2 * 100 + plan.chunk_log2);
  }

  // Argmin with a ~1% hysteresis in favour of the default: timing noise must
  // not turn the tuned plan into a regression against the fixed plan.
  const double default_seconds = report.timings.front().seconds;
  report.best = def;
  double best_seconds = default_seconds;
  for (const PlanTiming& t : report.timings) {
    if (t.seconds < best_seconds) {
      report.best = t.plan;
      best_seconds = t.seconds;
    }
  }
  if (best_seconds >= 0.99 * default_seconds) {
    report.best = def;
    best_seconds = default_seconds;
  }

  // Stage 2 (single-vector only): with tile/chunk pinned at the stage-1
  // winner, measure the microkernel tier x fused-radix matrix the build and
  // CPU support.  Stage 1 ran (automatic, radix 8); a specific combination
  // is adopted only when it beats that pick by the same ~1% hysteresis.
  // Every combination is bit-identical, so this tunes speed only — but the
  // rows land in the report either way, making tier selection auditable
  // (including the case where the autovec fallback wins).
  if (m == 1) {
    std::vector<BlockedPlan> sv_candidates;
    BlockedPlan base = report.best;
    base.sv_kernel = SvKernel::autovec;
    base.sv_max_radix = 8;
    sv_candidates.push_back(base);
    if (avx2_sv_kernels() != nullptr) {
      base.sv_kernel = SvKernel::avx2;
      base.sv_max_radix = 4;
      sv_candidates.push_back(base);
      base.sv_max_radix = 8;
      sv_candidates.push_back(base);
    }
    if (avx512_sv_kernels() != nullptr) {
      base.sv_kernel = SvKernel::avx512;
      base.sv_max_radix = 4;
      sv_candidates.push_back(base);
      base.sv_max_radix = 8;
      sv_candidates.push_back(base);
    }
    for (const BlockedPlan& plan : sv_candidates) {
      const double best = measure(plan);
      report.timings.push_back({plan, best});
      QS_TRACE_INSTANT_ARG("autotune.sv_candidate", autotune, best,
                           static_cast<int>(plan.sv_kernel) * 100 +
                               static_cast<int>(plan.sv_max_radix));
      if (best < 0.99 * best_seconds) {
        report.best = plan;
        best_seconds = best;
      }
    }
  }
  return report;
}

}  // namespace qs::transforms
