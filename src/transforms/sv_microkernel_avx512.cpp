// AVX-512F instantiation of the single-vector microkernels.
//
// Compiled only when the top-level QS_ENABLE_SIMD avx512f probe passed; the
// table is only selected when the running CPU reports avx512f.  Like the
// AVX2 translation unit (and unlike the panel kernels), this deliberately
// avoids FMA: separate vmulpd + vaddpd reproduce the scalar two-rounding
// expression m00*t1 + m01*t2, the TU is built without -mfma and with
// -ffp-contract=off, and the result is bit-identical to the scalar table
// and the autovectorised banded loops.
#include "transforms/sv_microkernel.hpp"

#if defined(QS_HAVE_SV_AVX512_KERNELS)

#include <immintrin.h>

namespace qs::transforms {
namespace {

inline __attribute__((always_inline)) __m512d muladd8(__m512d a, __m512d x,
                                                      __m512d b, __m512d y) {
  return _mm512_add_pd(_mm512_mul_pd(a, x), _mm512_mul_pd(b, y));
}

void sv_butterfly_span_avx512(double* lo, double* hi, std::size_t cnt,
                              Factor2 f) {
  const __m512d m00 = _mm512_set1_pd(f.m00);
  const __m512d m01 = _mm512_set1_pd(f.m01);
  const __m512d m10 = _mm512_set1_pd(f.m10);
  const __m512d m11 = _mm512_set1_pd(f.m11);
  std::size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    const __m512d t1 = _mm512_loadu_pd(lo + i);
    const __m512d t2 = _mm512_loadu_pd(hi + i);
    _mm512_storeu_pd(lo + i, muladd8(m00, t1, m01, t2));
    _mm512_storeu_pd(hi + i, muladd8(m10, t1, m11, t2));
  }
  for (; i < cnt; ++i) {
    const double t1 = lo[i];
    const double t2 = hi[i];
    lo[i] = f.m00 * t1 + f.m01 * t2;
    hi[i] = f.m10 * t1 + f.m11 * t2;
  }
}

void sv_butterfly_quad_span_avx512(double* r0, double* r1, double* r2,
                                   double* r3, std::size_t cnt, Factor2 fl,
                                   Factor2 fh) {
  const __m512d l00 = _mm512_set1_pd(fl.m00);
  const __m512d l01 = _mm512_set1_pd(fl.m01);
  const __m512d l10 = _mm512_set1_pd(fl.m10);
  const __m512d l11 = _mm512_set1_pd(fl.m11);
  const __m512d h00 = _mm512_set1_pd(fh.m00);
  const __m512d h01 = _mm512_set1_pd(fh.m01);
  const __m512d h10 = _mm512_set1_pd(fh.m10);
  const __m512d h11 = _mm512_set1_pd(fh.m11);
  std::size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    const __m512d a = _mm512_loadu_pd(r0 + i);
    const __m512d b = _mm512_loadu_pd(r1 + i);
    const __m512d c = _mm512_loadu_pd(r2 + i);
    const __m512d d = _mm512_loadu_pd(r3 + i);
    const __m512d ab0 = muladd8(l00, a, l01, b);
    const __m512d ab1 = muladd8(l10, a, l11, b);
    const __m512d cd0 = muladd8(l00, c, l01, d);
    const __m512d cd1 = muladd8(l10, c, l11, d);
    _mm512_storeu_pd(r0 + i, muladd8(h00, ab0, h01, cd0));
    _mm512_storeu_pd(r1 + i, muladd8(h00, ab1, h01, cd1));
    _mm512_storeu_pd(r2 + i, muladd8(h10, ab0, h11, cd0));
    _mm512_storeu_pd(r3 + i, muladd8(h10, ab1, h11, cd1));
  }
  for (; i < cnt; ++i) {
    const double a = r0[i];
    const double b = r1[i];
    const double c = r2[i];
    const double d = r3[i];
    const double ab0 = fl.m00 * a + fl.m01 * b;
    const double ab1 = fl.m10 * a + fl.m11 * b;
    const double cd0 = fl.m00 * c + fl.m01 * d;
    const double cd1 = fl.m10 * c + fl.m11 * d;
    r0[i] = fh.m00 * ab0 + fh.m01 * cd0;
    r1[i] = fh.m00 * ab1 + fh.m01 * cd1;
    r2[i] = fh.m10 * ab0 + fh.m11 * cd0;
    r3[i] = fh.m10 * ab1 + fh.m11 * cd1;
  }
}

inline __attribute__((always_inline)) void sv_bf2_avx512(
    __m512d& a, __m512d& b, __m512d m00, __m512d m01, __m512d m10,
    __m512d m11) {
  const __m512d t = a;
  a = muladd8(m00, t, m01, b);
  b = muladd8(m10, t, m11, b);
}

inline void sv_bf2_tail(double& a, double& b, Factor2 f) {
  const double t = a;
  a = f.m00 * t + f.m01 * b;
  b = f.m10 * t + f.m11 * b;
}

void sv_butterfly_oct_span_avx512(double* p, std::size_t stride,
                                  std::size_t cnt, Factor2 f0, Factor2 f1,
                                  Factor2 f2) {
  const __m512d a00 = _mm512_set1_pd(f0.m00), a01 = _mm512_set1_pd(f0.m01);
  const __m512d a10 = _mm512_set1_pd(f0.m10), a11 = _mm512_set1_pd(f0.m11);
  const __m512d b00 = _mm512_set1_pd(f1.m00), b01 = _mm512_set1_pd(f1.m01);
  const __m512d b10 = _mm512_set1_pd(f1.m10), b11 = _mm512_set1_pd(f1.m11);
  const __m512d c00 = _mm512_set1_pd(f2.m00), c01 = _mm512_set1_pd(f2.m01);
  const __m512d c10 = _mm512_set1_pd(f2.m10), c11 = _mm512_set1_pd(f2.m11);
  double* r0 = p;
  double* r1 = p + stride;
  double* r2 = p + 2 * stride;
  double* r3 = p + 3 * stride;
  double* r4 = p + 4 * stride;
  double* r5 = p + 5 * stride;
  double* r6 = p + 6 * stride;
  double* r7 = p + 7 * stride;
  std::size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    __m512d v0 = _mm512_loadu_pd(r0 + i);
    __m512d v1 = _mm512_loadu_pd(r1 + i);
    __m512d v2 = _mm512_loadu_pd(r2 + i);
    __m512d v3 = _mm512_loadu_pd(r3 + i);
    __m512d v4 = _mm512_loadu_pd(r4 + i);
    __m512d v5 = _mm512_loadu_pd(r5 + i);
    __m512d v6 = _mm512_loadu_pd(r6 + i);
    __m512d v7 = _mm512_loadu_pd(r7 + i);
    sv_bf2_avx512(v0, v1, a00, a01, a10, a11);
    sv_bf2_avx512(v2, v3, a00, a01, a10, a11);
    sv_bf2_avx512(v4, v5, a00, a01, a10, a11);
    sv_bf2_avx512(v6, v7, a00, a01, a10, a11);
    sv_bf2_avx512(v0, v2, b00, b01, b10, b11);
    sv_bf2_avx512(v1, v3, b00, b01, b10, b11);
    sv_bf2_avx512(v4, v6, b00, b01, b10, b11);
    sv_bf2_avx512(v5, v7, b00, b01, b10, b11);
    sv_bf2_avx512(v0, v4, c00, c01, c10, c11);
    sv_bf2_avx512(v1, v5, c00, c01, c10, c11);
    sv_bf2_avx512(v2, v6, c00, c01, c10, c11);
    sv_bf2_avx512(v3, v7, c00, c01, c10, c11);
    _mm512_storeu_pd(r0 + i, v0);
    _mm512_storeu_pd(r1 + i, v1);
    _mm512_storeu_pd(r2 + i, v2);
    _mm512_storeu_pd(r3 + i, v3);
    _mm512_storeu_pd(r4 + i, v4);
    _mm512_storeu_pd(r5 + i, v5);
    _mm512_storeu_pd(r6 + i, v6);
    _mm512_storeu_pd(r7 + i, v7);
  }
  for (; i < cnt; ++i) {
    double v0 = r0[i], v1 = r1[i], v2 = r2[i], v3 = r3[i];
    double v4 = r4[i], v5 = r5[i], v6 = r6[i], v7 = r7[i];
    sv_bf2_tail(v0, v1, f0);
    sv_bf2_tail(v2, v3, f0);
    sv_bf2_tail(v4, v5, f0);
    sv_bf2_tail(v6, v7, f0);
    sv_bf2_tail(v0, v2, f1);
    sv_bf2_tail(v1, v3, f1);
    sv_bf2_tail(v4, v6, f1);
    sv_bf2_tail(v5, v7, f1);
    sv_bf2_tail(v0, v4, f2);
    sv_bf2_tail(v1, v5, f2);
    sv_bf2_tail(v2, v6, f2);
    sv_bf2_tail(v3, v7, f2);
    r0[i] = v0;
    r1[i] = v1;
    r2[i] = v2;
    r3[i] = v3;
    r4[i] = v4;
    r5[i] = v5;
    r6[i] = v6;
    r7[i] = v7;
  }
}

void sv_mul_span_avx512(double* y, const double* x, const double* s,
                        std::size_t cnt) {
  std::size_t i = 0;
  for (; i + 8 <= cnt; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_mul_pd(_mm512_loadu_pd(s + i), _mm512_loadu_pd(x + i)));
  }
  for (; i < cnt; ++i) y[i] = s[i] * x[i];
}

void sv_mul_span_inplace_avx512(double* y, const double* s, std::size_t cnt) {
  sv_mul_span_avx512(y, y, s, cnt);
}

constexpr SvKernels kAvx512SvKernels{
    sv_butterfly_span_avx512, sv_butterfly_quad_span_avx512,
    sv_butterfly_oct_span_avx512, sv_mul_span_avx512,
    sv_mul_span_inplace_avx512, "avx512",
};

}  // namespace

const SvKernels* sv_avx512_table() {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx512f")) return &kAvx512SvKernels;
  return nullptr;
#else
  return nullptr;
#endif
}

}  // namespace qs::transforms

#endif  // QS_HAVE_SV_AVX512_KERNELS
