// Fast Walsh-Hadamard transform.
//
// The eigenvector matrix of the mutation matrix Q(nu) is the scaled
// Hadamard matrix V(nu) = 2^{-nu/2} H(nu) (Section 2 of the paper), so the
// FWHT diagonalises Q: Q = V Lambda V with Lambda_ii = (1-2p)^{popcount(i)}.
// This module provides the in-place Theta(N log2 N) transform used by the
// spectral operations (eigendecomposition-based products, shift-and-invert).
#pragma once

#include <span>

namespace qs::transforms {

/// In-place unnormalised FWHT: v <- H(nu) v where H is the {+1,-1} Hadamard
/// matrix in natural (Walsh-Hadamard) order and v.size() = 2^nu.
/// Self-inverse up to the factor N: fwht(fwht(v)) == N * v.
/// Requires v.size() to be a power of two.
void fwht(std::span<double> v);

/// In-place orthonormal FWHT: v <- V(nu) v with V = 2^{-nu/2} H. Involutary:
/// applying it twice restores v exactly (up to rounding).
void fwht_normalized(std::span<double> v);

}  // namespace qs::transforms
