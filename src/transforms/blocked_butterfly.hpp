// Cache-blocked, level-fused butterfly (the banded Fmmp kernel).
//
// The per-level engine path (Algorithm 2 of the paper) sweeps the whole
// N-vector once per butterfly level and synchronises between levels: nu
// passes and nu barriers for a product that does only 4N log2 N flops.  At
// nu >= 20 the vector no longer fits in cache and the pass count — not the
// flop count — is the cost model.
//
// This kernel partitions the nu levels into *bands* and runs one
// engine.dispatch per band; every work item applies all levels of its band
// inside an L2-resident tile, so the N-vector is swept (and the engine
// barriered) once per band instead of once per level:
//
//   * the low band [0, B) couples bits 0..B-1, i.e. contiguous tiles of
//     2^B elements — each tile is loaded once and the whole band runs on it
//     in place;
//   * a high band [k0, k1) couples bits k0..k1-1: its orbit is a *gather
//     panel* of 2^(k1-k0) rows spaced 2^k0 apart.  A work item owns one
//     panel restricted to 2^chunk contiguous low offsets, so each strided
//     row is a contiguous 2^chunk-double burst and the whole panel
//     (2^(k1-k0+chunk) doubles) stays cache-resident across the band.
//
// The diagonal fitness scalings of the problem formulations (W = Q F etc.)
// fuse into the first/last band: a solver matvec costs two fewer full
// passes than scale + butterfly + scale run separately.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/engine.hpp"
#include "support/bits.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/sv_microkernel.hpp"

namespace qs::transforms {

/// Tiling parameters for the banded butterfly.
struct BlockedPlan {
  /// log2 of the tile size in doubles: the low band spans this many levels
  /// and every work item's working set is capped at 2^tile_log2 doubles
  /// (default 2^14 = 128 KiB, safely L2-resident).
  unsigned tile_log2 = 14;

  /// log2 of the contiguous low-offset chunk a high-band work item owns.
  /// Rows of a gather panel are bursts of 2^chunk_log2 doubles (default
  /// 2^6 = one 512-byte burst), so high bands span at most
  /// tile_log2 - chunk_log2 levels each.
  unsigned chunk_log2 = 6;

  /// Which single-vector microkernel table runs the band sweeps (see
  /// transforms/sv_microkernel.hpp).  `automatic` picks the widest SIMD
  /// tier the build and CPU support; `autovec` forces the historical plain
  /// loops.  Every choice is bit-identical — the SIMD tables avoid FMA.
  SvKernel sv_kernel = SvKernel::automatic;

  /// Maximum fused radix of the microkernel sweeps: 8 fuses three levels
  /// per pass (radix-8), 4 fuses two, 2 disables fusion.  Ignored on the
  /// autovec path.  Bit-identity holds for every setting — fusion only
  /// reorders independent pairs.
  unsigned sv_max_radix = 8;
};

/// Band boundaries [0 = b_0 < b_1 < ... < b_m = nu] the plan induces: band
/// i applies levels [b_i, b_{i+1}).  The first band is capped so that at
/// least ~8 tiles exist (parallelisable even for small nu); later bands are
/// capped at tile_log2 - chunk_log2 levels so panels stay tile-sized.
std::vector<unsigned> blocked_band_boundaries(unsigned nu, const BlockedPlan& plan);

/// Fixed-capacity form of the band boundaries (every band spans >= 1 level,
/// so there are at most nu + 1 <= kMaxChainLength + 1 entries).  The apply
/// paths use this instead of the std::vector form: computing the bounds must
/// not heap-allocate, or every matvec of the zero-allocation solver hot path
/// would (see tests/alloc_guard_test.cpp).
struct BandBounds {
  std::array<unsigned, kMaxChainLength + 2> bounds;
  std::size_t count = 0;  ///< number of valid entries in `bounds`

  std::size_t bands() const { return count - 1; }
  unsigned operator[](std::size_t i) const { return bounds[i]; }
};

/// Allocation-free equivalent of blocked_band_boundaries.
BandBounds blocked_band_bounds(unsigned nu, const BlockedPlan& plan);

/// In-place banded transform v <- (F_{nu-1} (x) ... (x) F_0) v through the
/// engine, one dispatch per band.  Bit-identical to apply_butterfly with
/// ascending level order.  Requires v.size() == 2^factors.size().
void apply_blocked_butterfly(std::span<double> v, std::span<const Factor2> factors,
                             const parallel::Engine& engine,
                             const BlockedPlan& plan = {});

/// Fused product y <- D_post (Q (D_pre x)) where Q is the butterfly of
/// `factors` and D_pre/D_post are diagonal scalings (empty span = identity).
/// The scalings ride inside the first/last band's tile loops, costing no
/// extra pass over the vector.  x may alias y exactly (x.data() == y.data())
/// or not at all.  Requires x.size() == y.size() == 2^factors.size() and
/// pre/post, when nonempty, of the same size.
void apply_blocked_butterfly_fused(std::span<const double> x, std::span<double> y,
                                   std::span<const Factor2> factors,
                                   std::span<const double> pre_scale,
                                   std::span<const double> post_scale,
                                   const parallel::Engine& engine,
                                   const BlockedPlan& plan = {});

}  // namespace qs::transforms
