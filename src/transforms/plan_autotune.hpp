// BlockedPlan autotuning: pick tile_log2/chunk_log2 for the banded kernels.
//
// The defaults BlockedPlan{14, 6} were hand-tuned for one machine; the right
// tile is a function of the cache hierarchy (a tile of 2^tile_log2 * m
// doubles should stay resident across all the levels of a band) and of the
// problem size.  Two mechanisms, composed:
//
//   1. detect_cache_hierarchy() reads the sizes of the L1d/L2/L3 data caches
//      from sysfs (Linux); cache_heuristic_plan() turns them into a starting
//      plan when detection succeeds.
//   2. autotune_blocked_plan() *measures* a small candidate grid around the
//      heuristic — always including the default plan — at the actual problem
//      size and panel width, and returns the fastest.  Because the default is
//      always among the candidates and wins ties, the tuned plan is never
//      slower than the default (up to timing noise).
//
// One autotune costs a few dozen banded matvecs at size 2^nu; amortised over
// a power-iteration solve of hundreds of products it is noise.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/engine.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::transforms {

/// Data-cache sizes in bytes; 0 when a level is absent or unreadable.
struct CacheHierarchy {
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
  bool detected = false;  ///< true iff at least L1d or L2 was read
};

/// Reads /sys/devices/system/cpu/cpu0/cache/index*/ (Linux). On other
/// platforms or restricted containers returns detected == false.
CacheHierarchy detect_cache_hierarchy();

/// A plan derived from cache sizes alone (no measurement): the tile targets
/// about a third of L2 (in doubles, panel width m included), the chunk about
/// an eighth of L1d per gather-panel row.  Falls back to the default plan
/// when detection failed.
BlockedPlan cache_heuristic_plan(const CacheHierarchy& caches, std::size_t m = 1);

/// One measured candidate.
struct PlanTiming {
  BlockedPlan plan;
  double seconds = 0.0;  ///< best-of-`repeats` wall time of one banded matvec
};

/// Autotune outcome: the chosen plan plus everything that was measured.
struct AutotuneReport {
  BlockedPlan best;
  CacheHierarchy caches;
  std::vector<PlanTiming> timings;  ///< all candidates; timings[0] is the default plan
};

/// Measures a candidate grid (default plan, cache-heuristic plan, and
/// tile/chunk neighbours) on a synthetic uniform-mutation banded matvec of
/// size 2^nu with panel width m, through `engine`, and returns the fastest.
/// The default plan is candidate 0 and is kept unless a candidate beats it
/// by more than ~1% (so noise can not make the tuned plan a regression).
///
/// For m == 1 the workload is the *single-vector* banded kernel (the one
/// default solves run), and a second stage measures the single-vector
/// microkernel tier x fused radix — {autovec, sv-avx2, sv-avx512} x
/// {radix-4, radix-8}, restricted to tiers this build/CPU supports — with
/// tile/chunk pinned at the stage-1 winner.  A tier/radix choice is adopted
/// only when it beats the stage-1 pick (automatic tier, radix 8) by more
/// than ~1%; every measured combination lands in the report's timings, so
/// tier selection is auditable.  All combinations are bit-identical — this
/// stage tunes speed only.  Requires 1 <= nu <= kMaxChainLength and m >= 1.
AutotuneReport autotune_blocked_plan(unsigned nu, const parallel::Engine& engine,
                                     std::size_t m = 1, unsigned repeats = 3);

}  // namespace qs::transforms
