#include "transforms/kronecker.hpp"

#include <algorithm>
#include <cmath>

#include "support/bits.hpp"
#include "support/contracts.hpp"
#include "transforms/panel_butterfly.hpp"

namespace qs::transforms {

KroneckerProduct::KroneckerProduct(std::vector<linalg::DenseMatrix> factors)
    : factors_(std::move(factors)) {
  require(!factors_.empty(), "KroneckerProduct: need at least one factor");
  group_bits_.reserve(factors_.size());
  for (const auto& f : factors_) {
    require(f.rows() == f.cols(), "KroneckerProduct: factors must be square");
    require(f.rows() >= 2 && is_power_of_two(f.rows()),
            "KroneckerProduct: factor dimension must be a power of two >= 2");
    const unsigned bits = log2_exact(f.rows());
    group_bits_.push_back(bits);
    total_bits_ += bits;
    require(total_bits_ <= 1000, "KroneckerProduct: total width too large");
  }
}

void KroneckerProduct::apply(std::span<double> v) const {
  require(v.size() == dimension(), "KroneckerProduct::apply: dimension mismatch");

  // Apply one factor at a time; the factor of group i acts on bit range
  // [lo, lo + g_i), i.e. indices decompose as
  //   idx = high * (m << lo) + mid * (1 << lo) + low,  mid in [0, m)
  // and the factor contracts over `mid`.
  std::vector<double> tmp;
  unsigned lo = 0;
  for (std::size_t gi = 0; gi < factors_.size(); ++gi) {
    const linalg::DenseMatrix& f = factors_[gi];
    const std::size_t m = f.rows();
    const std::size_t lo_stride = std::size_t{1} << lo;
    const std::size_t block = m * lo_stride;
    tmp.resize(m);
    for (std::size_t high = 0; high < v.size(); high += block) {
      for (std::size_t low = 0; low < lo_stride; ++low) {
        const std::size_t base = high + low;
        for (std::size_t r = 0; r < m; ++r) {
          double acc = 0.0;
          for (std::size_t c = 0; c < m; ++c) {
            acc += f(r, c) * v[base + c * lo_stride];
          }
          tmp[r] = acc;
        }
        for (std::size_t r = 0; r < m; ++r) v[base + r * lo_stride] = tmp[r];
      }
    }
    lo += group_bits_[gi];
  }
}

double KroneckerProduct::stochastic_deviation() const {
  double worst = 0.0;
  for (const auto& f : factors_) {
    worst = std::max(worst, f.max_column_sum_deviation());
  }
  return worst;
}

linalg::DenseMatrix KroneckerProduct::to_dense() const {
  // Fold right-to-left so that factors_[0] ends up least significant:
  // result = factors_[g-1] (x) ... (x) factors_[0].
  linalg::DenseMatrix acc = factors_.front();
  for (std::size_t i = 1; i < factors_.size(); ++i) {
    acc = kronecker_dense(factors_[i], acc);
  }
  return acc;
}

namespace {

/// Scratch ceiling for one dense block contraction, in doubles; spans longer
/// than kScratchCap / (s * m) elements are processed in sub-bursts so the
/// scratch stays cache-resident even for wide groups.
constexpr std::size_t kScratchCap = std::size_t{1} << 13;

/// Applies the dense s x s factor `f` across s equally spaced contiguous
/// spans of cnt doubles each (slot t starts at base + t * slot_stride).
/// scratch must hold s * cnt doubles.
void dense_block_spans(double* base, std::size_t slot_stride, std::size_t s,
                       std::size_t cnt, const linalg::DenseMatrix& f,
                       double* scratch) {
  for (std::size_t r = 0; r < s; ++r) {
    double* out = scratch + r * cnt;
    const double* slot0 = base;
    const double f0 = f(r, 0);
    for (std::size_t i = 0; i < cnt; ++i) out[i] = f0 * slot0[i];
    for (std::size_t c = 1; c < s; ++c) {
      const double frc = f(r, c);
      const double* slot = base + c * slot_stride;
      for (std::size_t i = 0; i < cnt; ++i) out[i] += frc * slot[i];
    }
  }
  for (std::size_t r = 0; r < s; ++r) {
    double* slot = base + r * slot_stride;
    const double* out = scratch + r * cnt;
    for (std::size_t i = 0; i < cnt; ++i) slot[i] = out[i];
  }
}

/// A run of consecutive groups forming one level band [k0, k1).
struct GroupBand {
  std::size_t first_group = 0;
  std::size_t group_count = 0;
  unsigned k0 = 0;
  unsigned k1 = 0;
};

/// Packs groups into bands under the same capacity rules as
/// blocked_band_boundaries, except boundaries snap to group boundaries and a
/// band always holds at least one group (an oversized group gets its own).
std::vector<GroupBand> grouped_band_partition(const KroneckerProduct& kp,
                                              const BlockedPlan& plan) {
  const unsigned nu = kp.total_bits();
  // Keep ~8 first-band tiles so small problems still parallelise, exactly
  // like the 2x2 banded kernel's kMinTilesLog2 heuristic.
  const unsigned first_cap =
      std::max(1u, std::min(plan.tile_log2, nu > 3 ? nu - 3 : nu));
  std::vector<GroupBand> bands;
  std::size_t g = 0;
  unsigned k0 = 0;
  while (g < kp.group_count()) {
    const unsigned cap =
        k0 == 0 ? first_cap
                : std::max(1u, plan.tile_log2 - std::min(plan.chunk_log2, k0));
    GroupBand band;
    band.first_group = g;
    band.k0 = k0;
    unsigned k1 = k0;
    while (g + band.group_count < kp.group_count()) {
      const unsigned bits = kp.group_bits(g + band.group_count);
      if (band.group_count > 0 && k1 - k0 + bits > cap) break;
      k1 += bits;
      ++band.group_count;
    }
    band.k1 = k1;
    bands.push_back(band);
    g += band.group_count;
    k0 = k1;
  }
  return bands;
}

}  // namespace

void apply_blocked_kronecker(std::span<double> panel, std::size_t m,
                             const KroneckerProduct& kp,
                             const parallel::Engine& engine,
                             const BlockedPlan& plan) {
  require(m >= 1, "blocked kronecker: panel width m must be >= 1");
  require(panel.size() == kp.dimension() * m,
          "blocked kronecker: panel size must be dimension() * m");
  const std::size_t n = kp.dimension();
  double* ys = panel.data();

  const BlockedPlan eff = panel_plan(plan, m);
  const std::vector<GroupBand> bands = grouped_band_partition(kp, eff);
  const linalg::DenseMatrix* factors = kp.factors().data();

  for (const GroupBand& band : bands) {
    // Per-group geometry within the band: absolute bit offset and width.
    std::vector<std::size_t> sizes, offsets;
    unsigned o = band.k0;
    std::size_t max_s = 1;
    for (std::size_t gi = 0; gi < band.group_count; ++gi) {
      const unsigned bits = kp.group_bits(band.first_group + gi);
      sizes.push_back(std::size_t{1} << bits);
      offsets.push_back(o);
      max_s = std::max(max_s, sizes.back());
      o += bits;
    }

    if (band.k0 == 0) {
      // Low band: contiguous tiles of 2^k1 panel rows, all groups applied in
      // place.  A group's orbit inside the tile is s spans of 2^offset rows;
      // long spans are cut into sub-bursts so the scratch stays small.
      const unsigned k1 = band.k1;
      const std::size_t tile = std::size_t{1} << k1;
      const std::size_t tiles = n >> k1;
      const GroupBand b = band;
      const std::vector<std::size_t> szs = sizes, offs = offsets;
      const std::size_t scratch_doubles =
          max_s * std::min(kScratchCap / std::max<std::size_t>(max_s, 1),
                           (tile >> 0) * m);
      engine.dispatch(tiles, [=](std::size_t begin, std::size_t end) {
        std::vector<double> scratch(std::max<std::size_t>(scratch_doubles, max_s * m));
        for (std::size_t t = begin; t < end; ++t) {
          double* yt = ys + (t << k1) * m;
          for (std::size_t gi = 0; gi < b.group_count; ++gi) {
            const linalg::DenseMatrix& f = factors[b.first_group + gi];
            const std::size_t s = szs[gi];
            const std::size_t estride = std::size_t{1} << offs[gi];
            const std::size_t run = estride * m;  // doubles per span
            const std::size_t burst =
                std::max<std::size_t>(m, std::min(run, kScratchCap / s));
            for (std::size_t sub = 0; sub < tile; sub += s * estride) {
              double* sb = yt + sub * m;
              for (std::size_t off = 0; off < run; off += burst) {
                const std::size_t cnt = std::min(burst, run - off);
                dense_block_spans(sb + off, run, s, cnt, f, scratch.data());
              }
            }
          }
        }
      });
    } else {
      // High band: a work item owns one gather panel restricted to 2^chunk
      // contiguous low rows; every span is a contiguous 2^chunk * m burst.
      const unsigned k0 = band.k0;
      const unsigned k1 = band.k1;
      const unsigned bbits = k1 - k0;
      const unsigned chunk = std::min(eff.chunk_log2, k0);
      const std::size_t rows = std::size_t{1} << bbits;
      const std::size_t cols = std::size_t{1} << chunk;
      const std::size_t cnt_full = cols * m;
      const std::size_t items = n >> (bbits + chunk);
      const std::size_t chunks_per_low = std::size_t{1} << (k0 - chunk);
      const GroupBand b = band;
      const std::vector<std::size_t> szs = sizes, offs = offsets;
      engine.dispatch(items, [=](std::size_t begin, std::size_t end) {
        std::vector<double> scratch(
            std::max<std::size_t>(max_s * std::min(cnt_full, kScratchCap / max_s),
                                  max_s * m));
        for (std::size_t id = begin; id < end; ++id) {
          const std::size_t high = id / chunks_per_low;
          const std::size_t lc = id % chunks_per_low;
          const std::size_t base_e = (high << k1) + (lc << chunk);
          for (std::size_t gi = 0; gi < b.group_count; ++gi) {
            const linalg::DenseMatrix& f = factors[b.first_group + gi];
            const std::size_t s = szs[gi];
            const std::size_t rstride = std::size_t{1} << (offs[gi] - k0);
            const std::size_t slot_stride = (rstride << k0) * m;
            const std::size_t burst =
                std::max<std::size_t>(m, std::min(cnt_full, kScratchCap / s));
            for (std::size_t r0 = 0; r0 < rows; r0 += s * rstride) {
              for (std::size_t rr = 0; rr < rstride; ++rr) {
                double* sb = ys + (base_e + ((r0 + rr) << k0)) * m;
                for (std::size_t off = 0; off < cnt_full; off += burst) {
                  const std::size_t cnt = std::min(burst, cnt_full - off);
                  dense_block_spans(sb + off, slot_stride, s, cnt, f,
                                    scratch.data());
                }
              }
            }
          }
        }
      });
    }
  }
}

linalg::DenseMatrix kronecker_dense(const linalg::DenseMatrix& a,
                                    const linalg::DenseMatrix& b) {
  linalg::DenseMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const double aij = a(ia, ja);
      if (aij == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = aij * b(ib, jb);
        }
      }
    }
  }
  return out;
}

}  // namespace qs::transforms
