#include "transforms/kronecker.hpp"

#include <cmath>

#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::transforms {

KroneckerProduct::KroneckerProduct(std::vector<linalg::DenseMatrix> factors)
    : factors_(std::move(factors)) {
  require(!factors_.empty(), "KroneckerProduct: need at least one factor");
  group_bits_.reserve(factors_.size());
  for (const auto& f : factors_) {
    require(f.rows() == f.cols(), "KroneckerProduct: factors must be square");
    require(f.rows() >= 2 && is_power_of_two(f.rows()),
            "KroneckerProduct: factor dimension must be a power of two >= 2");
    const unsigned bits = log2_exact(f.rows());
    group_bits_.push_back(bits);
    total_bits_ += bits;
    require(total_bits_ <= 1000, "KroneckerProduct: total width too large");
  }
}

void KroneckerProduct::apply(std::span<double> v) const {
  require(v.size() == dimension(), "KroneckerProduct::apply: dimension mismatch");

  // Apply one factor at a time; the factor of group i acts on bit range
  // [lo, lo + g_i), i.e. indices decompose as
  //   idx = high * (m << lo) + mid * (1 << lo) + low,  mid in [0, m)
  // and the factor contracts over `mid`.
  std::vector<double> tmp;
  unsigned lo = 0;
  for (std::size_t gi = 0; gi < factors_.size(); ++gi) {
    const linalg::DenseMatrix& f = factors_[gi];
    const std::size_t m = f.rows();
    const std::size_t lo_stride = std::size_t{1} << lo;
    const std::size_t block = m * lo_stride;
    tmp.resize(m);
    for (std::size_t high = 0; high < v.size(); high += block) {
      for (std::size_t low = 0; low < lo_stride; ++low) {
        const std::size_t base = high + low;
        for (std::size_t r = 0; r < m; ++r) {
          double acc = 0.0;
          for (std::size_t c = 0; c < m; ++c) {
            acc += f(r, c) * v[base + c * lo_stride];
          }
          tmp[r] = acc;
        }
        for (std::size_t r = 0; r < m; ++r) v[base + r * lo_stride] = tmp[r];
      }
    }
    lo += group_bits_[gi];
  }
}

double KroneckerProduct::stochastic_deviation() const {
  double worst = 0.0;
  for (const auto& f : factors_) {
    worst = std::max(worst, f.max_column_sum_deviation());
  }
  return worst;
}

linalg::DenseMatrix KroneckerProduct::to_dense() const {
  // Fold right-to-left so that factors_[0] ends up least significant:
  // result = factors_[g-1] (x) ... (x) factors_[0].
  linalg::DenseMatrix acc = factors_.front();
  for (std::size_t i = 1; i < factors_.size(); ++i) {
    acc = kronecker_dense(factors_[i], acc);
  }
  return acc;
}

linalg::DenseMatrix kronecker_dense(const linalg::DenseMatrix& a,
                                    const linalg::DenseMatrix& b) {
  linalg::DenseMatrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const double aij = a(ia, ja);
      if (aij == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = aij * b(ib, jb);
        }
      }
    }
  }
  return out;
}

}  // namespace qs::transforms
