// Multi-vector (panel) banded butterfly: the banded Fmmp kernel of
// transforms/blocked_butterfly applied to m vectors at once.
//
// At nu >= 20 a single banded W x streams the whole 2^nu vector from DRAM to
// do ~4 flops per double per band — the product is memory-bound, not
// flop-bound.  Workloads that apply the *same* mutation operator to *many*
// vectors (block subspace iteration for several eigenpairs, landscape
// families sharing one Q, trajectory ensembles) can therefore amortise the
// memory traffic m-fold: the panel kernel stores the m vectors interleaved,
//
//   panel[i*m + j] = element i of vector j,     X in R^{N x m} row-major,
//
// and every butterfly pair (i, i + 2^l) becomes a pair of *contiguous*
// m-double rows.  One sweep over the panel advances all m vectors through a
// whole level band, and each 2x2 butterfly is a full-width vector FMA over
// the m columns (SIMD microkernels from transforms/panel_microkernel, with
// a scalar fallback; m is arbitrary — tails are handled).
//
// The band structure is exactly blocked_butterfly's; the tile budget is
// shrunk by log2(m) so a tile of panel rows still fits the same cache
// footprint as a single-vector tile.
#pragma once

#include <span>
#include <vector>

#include "parallel/engine.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"

namespace qs::transforms {

/// The band plan actually used for an m-wide panel: `plan` with tile_log2
/// reduced by max(0, ceil(log2(m)) - 3), clamped to chunk_log2 + 1.  Panels
/// up to m = 8 keep the full single-vector tile (the default tile uses only
/// a fraction of a typical L2, and a wide tile minimises the band count —
/// i.e. the number of passes over a DRAM-resident panel); wider panels
/// shrink the tile so a tile of panel rows stays cache-resident.
BlockedPlan panel_plan(const BlockedPlan& plan, std::size_t m);

/// In-place banded panel transform: every column j of the interleaved panel
/// becomes (F_{nu-1} (x) ... (x) F_0) column_j.  Requires m >= 1 and
/// panel.size() == 2^factors.size() * m.
void apply_blocked_panel_butterfly(std::span<double> panel, std::size_t m,
                                   std::span<const Factor2> factors,
                                   const parallel::Engine& engine,
                                   const BlockedPlan& plan = {});

/// Fused panel product Y <- D_post (Q (D_pre X)) with Q the butterfly of
/// `factors`.  The diagonal scalings may be
///   * empty             — identity;
///   * length N          — one diagonal broadcast across all m columns
///                         (every column sees the same landscape);
///   * length N*m        — an interleaved scaling panel, column j scaled by
///                         its own diagonal (landscape families).
/// The scalings ride inside the first/last band, costing no extra pass.
/// x may alias y exactly (x.data() == y.data()) or not at all.  Requires
/// x.size() == y.size() == 2^factors.size() * m.
void apply_blocked_panel_butterfly_fused(std::span<const double> x,
                                         std::span<double> y, std::size_t m,
                                         std::span<const Factor2> factors,
                                         std::span<const double> pre_scale,
                                         std::span<const double> post_scale,
                                         const parallel::Engine& engine,
                                         const BlockedPlan& plan = {});

/// Wide-panel (m > 8) fused product: the full-width direct sweep under
/// panel_plan's width-shrunk tile (tile * m stays at the m = 8 cache
/// footprint).  Per column the per-element butterfly sequence is identical
/// to the m <= 8 path — band and stage boundaries only reorder work
/// *across* elements — so results are bit-identical per column to solving
/// each 8-column block directly.  This is the wide strategy that measured
/// best on the reference host; explicit 8-column staging through a scratch
/// panel ran 1.6-2.4x slower (strided column windows stream far below
/// contiguous bandwidth) — see the .cpp for the full comparison.  Accepts
/// the same scaling shapes as apply_blocked_panel_butterfly_fused; x may
/// alias y exactly or not at all.
void apply_panel_wide_fused(std::span<const double> x, std::span<double> y,
                            std::size_t m, std::span<const Factor2> factors,
                            std::span<const double> pre_scale,
                            std::span<const double> post_scale,
                            const parallel::Engine& engine,
                            const BlockedPlan& plan = {});

/// In-place wide-panel transform without scalings (see apply_panel_wide_fused).
void apply_panel_wide(std::span<double> panel, std::size_t m,
                      std::span<const Factor2> factors,
                      const parallel::Engine& engine,
                      const BlockedPlan& plan = {});

/// Interleaves column j of the panel from a contiguous vector:
/// panel[i*m + j] = column[i].  Requires column.size() * m == panel.size()
/// and j < m.
void pack_panel_column(std::span<const double> column, std::span<double> panel,
                       std::size_t m, std::size_t j);

/// Extracts column j of the panel: column[i] = panel[i*m + j].
void unpack_panel_column(std::span<const double> panel, std::size_t m,
                         std::size_t j, std::span<double> column);

}  // namespace qs::transforms
