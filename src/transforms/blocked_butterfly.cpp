#include "transforms/blocked_butterfly.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::transforms {
namespace {

/// Keep at least 2^kMinTilesLog2 first-band tiles so small problems still
/// expose parallel work items (one tile per item).
constexpr unsigned kMinTilesLog2 = 3;

/// log2 of the staging sub-tile in doubles (2^12 * 8 B = 32 KiB, safely
/// L1-resident).  When a first-band tile is much larger than this, the low
/// levels are swept sub-tile by sub-tile so each sub-tile is loaded into L1
/// once for all of them, before the remaining levels sweep the whole tile.
constexpr unsigned kSubTileLog2 = 12;

// ---------------------------------------------------------------------------
// Microkernel (sv) path.  Each helper applies the exact per-element 2x2
// sequence of the plain loops below — radix fusion and sub-tile staging only
// reorder *independent* pairs, and the kernels themselves avoid FMA — so
// every tier is bit-identical to the autovec path.
// ---------------------------------------------------------------------------

/// Sweeps levels [lo, hi) of a contiguous block of d doubles in place.
/// Greedily fuses three levels per pass (radix-8), then two (radix-4),
/// then finishes level by level.
void sv_sweep_contiguous(double* yt, std::size_t d, const Factor2* fs,
                         unsigned lo, unsigned hi, const SvKernels& k,
                         unsigned max_radix) {
  unsigned l = lo;
  if (max_radix >= 8) {
    for (; l + 3 <= hi; l += 3) {
      const std::size_t cnt = std::size_t{1} << l;
      for (std::size_t j = 0; j < d; j += cnt << 3) {
        k.butterfly_oct_span(yt + j, cnt, cnt, fs[l], fs[l + 1], fs[l + 2]);
      }
    }
  }
  if (max_radix >= 4) {
    for (; l + 2 <= hi; l += 2) {
      const std::size_t cnt = std::size_t{1} << l;
      for (std::size_t j = 0; j < d; j += cnt << 2) {
        k.butterfly_quad_span(yt + j, yt + j + cnt, yt + j + 2 * cnt,
                              yt + j + 3 * cnt, cnt, fs[l], fs[l + 1]);
      }
    }
  }
  for (; l < hi; ++l) {
    const std::size_t cnt = std::size_t{1} << l;
    for (std::size_t j = 0; j < d; j += cnt << 1) {
      k.butterfly_span(yt + j, yt + j + cnt, cnt, fs[l]);
    }
  }
}

/// Sweeps all `levels` low levels of a contiguous tile of d = 2^levels
/// doubles, staging the low levels through L1-resident sub-tiles when the
/// tile is large enough for that to matter.
void sv_sweep_tile(double* yt, std::size_t d, const Factor2* fs,
                   unsigned levels, const SvKernels& k, unsigned max_radix) {
  const std::size_t sub_d = std::size_t{1} << kSubTileLog2;
  if (d > 2 * sub_d && levels > 1) {
    const unsigned k_in = std::min(levels - 1, kSubTileLog2);
    const std::size_t block = std::size_t{1} << k_in;
    for (std::size_t j = 0; j < d; j += block) {
      sv_sweep_contiguous(yt + j, block, fs, 0, k_in, k, max_radix);
    }
    sv_sweep_contiguous(yt, d, fs, k_in, levels, k, max_radix);
  } else {
    sv_sweep_contiguous(yt, d, fs, 0, levels, k, max_radix);
  }
}

/// Sweeps the b levels of a high band over one gather panel: rows of `cols`
/// contiguous doubles spaced 2^k0 apart starting at pb, with the same
/// greedy radix fusion as the contiguous sweep.
void sv_sweep_panel(double* pb, unsigned k0, unsigned b, std::size_t rows,
                    std::size_t cols, const Factor2* bandf, const SvKernels& k,
                    unsigned max_radix) {
  unsigned l = 0;
  if (max_radix >= 8) {
    for (; l + 3 <= b; l += 3) {
      const std::size_t rstride = std::size_t{1} << l;
      const std::size_t stride = rstride << k0;
      for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 3) {
        for (std::size_t q = r0; q < r0 + rstride; ++q) {
          k.butterfly_oct_span(pb + (q << k0), stride, cols, bandf[l],
                               bandf[l + 1], bandf[l + 2]);
        }
      }
    }
  }
  if (max_radix >= 4) {
    for (; l + 2 <= b; l += 2) {
      const std::size_t rstride = std::size_t{1} << l;
      const std::size_t stride = rstride << k0;
      for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 2) {
        for (std::size_t q = r0; q < r0 + rstride; ++q) {
          double* p0 = pb + (q << k0);
          k.butterfly_quad_span(p0, p0 + stride, p0 + 2 * stride,
                                p0 + 3 * stride, cols, bandf[l], bandf[l + 1]);
        }
      }
    }
  }
  for (; l < b; ++l) {
    const std::size_t rstride = std::size_t{1} << l;
    const std::size_t stride = rstride << k0;
    for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 1) {
      for (std::size_t q = r0; q < r0 + rstride; ++q) {
        double* lo = pb + (q << k0);
        k.butterfly_span(lo, lo + stride, cols, bandf[l]);
      }
    }
  }
}

}  // namespace

BandBounds blocked_band_bounds(unsigned nu, const BlockedPlan& plan) {
  require(plan.tile_log2 >= 1 && plan.tile_log2 <= 30,
          "blocked butterfly: tile_log2 out of range");
  require(plan.chunk_log2 < plan.tile_log2,
          "blocked butterfly: chunk_log2 must be smaller than tile_log2");
  require(plan.sv_max_radix == 2 || plan.sv_max_radix == 4 || plan.sv_max_radix == 8,
          "blocked butterfly: sv_max_radix must be 2, 4, or 8");
  require(nu <= kMaxChainLength, "blocked butterfly: chain length out of range");
  BandBounds out;
  out.bounds[out.count++] = 0;
  if (nu == 0) return out;
  const unsigned first =
      std::max(1u, std::min(plan.tile_log2, nu > kMinTilesLog2 ? nu - kMinTilesLog2 : nu));
  out.bounds[out.count++] = first;
  while (out.bounds[out.count - 1] < nu) {
    const unsigned k0 = out.bounds[out.count - 1];
    // High-band panels hold 2^(band + chunk) doubles; cap the band so a
    // panel never exceeds the tile.
    const unsigned chunk = std::min(plan.chunk_log2, k0);
    const unsigned band = std::max(1u, plan.tile_log2 - chunk);
    out.bounds[out.count++] = std::min(nu, k0 + band);
  }
  return out;
}

std::vector<unsigned> blocked_band_boundaries(unsigned nu, const BlockedPlan& plan) {
  const BandBounds b = blocked_band_bounds(nu, plan);
  return std::vector<unsigned>(b.bounds.begin(), b.bounds.begin() + b.count);
}

void apply_blocked_butterfly_fused(std::span<const double> x, std::span<double> y,
                                   std::span<const Factor2> factors,
                                   std::span<const double> pre_scale,
                                   std::span<const double> post_scale,
                                   const parallel::Engine& engine,
                                   const BlockedPlan& plan) {
  const std::size_t n = y.size();
  require(is_power_of_two(n), "blocked butterfly: length must be a power of two");
  const unsigned nu = log2_exact(n);
  require(factors.size() == nu, "blocked butterfly: need exactly log2(N) factors");
  require(x.size() == n, "blocked butterfly: x and y sizes differ");
  require(x.data() == y.data() || x.data() + n <= y.data() || y.data() + n <= x.data(),
          "blocked butterfly: x and y must alias exactly or not at all");
  require(pre_scale.empty() || pre_scale.size() == n,
          "blocked butterfly: pre_scale size mismatch");
  require(post_scale.empty() || post_scale.size() == n,
          "blocked butterfly: post_scale size mismatch");

  const double* xs = x.data();
  double* ys = y.data();
  const double* pres = pre_scale.empty() ? nullptr : pre_scale.data();
  const double* posts = post_scale.empty() ? nullptr : post_scale.data();
  const Factor2* fs = factors.data();

  if (nu == 0) {
    ys[0] = (pres != nullptr ? pres[0] : 1.0) * xs[0] *
            (posts != nullptr ? posts[0] : 1.0);
    return;
  }

  const BandBounds bounds = blocked_band_bounds(nu, plan);
  const std::size_t bands = bounds.bands();

  // Null means "run the historical autovectorised loops"; otherwise the
  // resolved microkernel table (bit-identical by contract) runs the sweeps
  // with radix fusion and L1 sub-tile staging.
  const SvKernels* kp = resolve_sv_kernels(plan.sv_kernel);
  const unsigned max_radix = plan.sv_max_radix;

  // Band 0: levels [0, k1) couple only bits below k1, so each contiguous
  // tile of 2^k1 elements is an independent work item; the pre-scale (and,
  // for a single-band problem, the post-scale) rides in the tile loop.
  {
    QS_TRACE_SPAN_ARG("fmmp.band", kernel, 0);
    const unsigned k1 = bounds[1];
    const std::size_t tile = std::size_t{1} << k1;
    const std::size_t tiles = n >> k1;
    const bool fuse_post = (bands == 1) && posts != nullptr;
    if (kp != nullptr) {
      const SvKernels& k = *kp;
      engine.dispatch(tiles, [=, &k](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          const std::size_t base = t << k1;
          double* yt = ys + base;
          if (pres != nullptr) {
            k.mul_span(yt, xs + base, pres + base, tile);
          } else if (xs != ys) {
            std::memcpy(yt, xs + base, tile * sizeof(double));
          }
          sv_sweep_tile(yt, tile, fs, k1, k, max_radix);
          if (fuse_post) k.mul_span_inplace(yt, posts + base, tile);
        }
      });
    } else {
      engine.dispatch(tiles, [=](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          const std::size_t base = t << k1;
          double* yt = ys + base;
          if (pres != nullptr) {
            const double* xt = xs + base;
            const double* pt = pres + base;
            for (std::size_t i = 0; i < tile; ++i) yt[i] = pt[i] * xt[i];
          } else if (xs != ys) {
            const double* xt = xs + base;
            for (std::size_t i = 0; i < tile; ++i) yt[i] = xt[i];
          }
          for (unsigned l = 0; l < k1; ++l) {
            const std::size_t stride = std::size_t{1} << l;
            const Factor2 f = fs[l];
            for (std::size_t j = 0; j < tile; j += stride << 1) {
              for (std::size_t idx = j; idx < j + stride; ++idx) {
                const double t1 = yt[idx];
                const double t2 = yt[idx + stride];
                yt[idx] = f.m00 * t1 + f.m01 * t2;
                yt[idx + stride] = f.m10 * t1 + f.m11 * t2;
              }
            }
          }
          if (fuse_post) {
            const double* qt = posts + base;
            for (std::size_t i = 0; i < tile; ++i) yt[i] *= qt[i];
          }
        }
      });
    }
  }

  // High bands: levels [k0, k1) couple bits k0..k1-1.  An orbit is a panel
  // of 2^(k1-k0) rows spaced 2^k0 apart; a work item owns one panel
  // restricted to 2^chunk contiguous low offsets, so every row access is a
  // contiguous burst and the panel stays cache-resident across the band.
  for (std::size_t band = 1; band < bands; ++band) {
    QS_TRACE_SPAN_ARG("fmmp.band", kernel, band);
    const unsigned k0 = bounds[band];
    const unsigned k1 = bounds[band + 1];
    const unsigned b = k1 - k0;
    const unsigned chunk = std::min(plan.chunk_log2, k0);
    const std::size_t rows = std::size_t{1} << b;
    const std::size_t cols = std::size_t{1} << chunk;
    const std::size_t items = n >> (b + chunk);
    const std::size_t chunks_per_low = std::size_t{1} << (k0 - chunk);
    const bool fuse_post = (band == bands - 1) && posts != nullptr;
    const Factor2* bandf = fs + k0;
    if (kp != nullptr) {
      const SvKernels& k = *kp;
      engine.dispatch(items, [=, &k](std::size_t begin, std::size_t end) {
        for (std::size_t id = begin; id < end; ++id) {
          const std::size_t high = id / chunks_per_low;
          const std::size_t lc = id % chunks_per_low;
          const std::size_t base = (high << k1) + (lc << chunk);
          sv_sweep_panel(ys + base, k0, b, rows, cols, bandf, k, max_radix);
          if (fuse_post) {
            for (std::size_t r = 0; r < rows; ++r) {
              k.mul_span_inplace(ys + base + (r << k0), posts + base + (r << k0),
                                 cols);
            }
          }
        }
      });
    } else {
      engine.dispatch(items, [=](std::size_t begin, std::size_t end) {
        for (std::size_t id = begin; id < end; ++id) {
          const std::size_t high = id / chunks_per_low;
          const std::size_t lc = id % chunks_per_low;
          const std::size_t base = (high << k1) + (lc << chunk);
          for (unsigned l = 0; l < b; ++l) {
            const std::size_t rstride = std::size_t{1} << l;
            const Factor2 f = bandf[l];
            for (std::size_t r0 = 0; r0 < rows; r0 += rstride << 1) {
              for (std::size_t r = r0; r < r0 + rstride; ++r) {
                double* lo = ys + base + (r << k0);
                double* hi = lo + (rstride << k0);
                for (std::size_t c = 0; c < cols; ++c) {
                  const double t1 = lo[c];
                  const double t2 = hi[c];
                  lo[c] = f.m00 * t1 + f.m01 * t2;
                  hi[c] = f.m10 * t1 + f.m11 * t2;
                }
              }
            }
          }
          if (fuse_post) {
            for (std::size_t r = 0; r < rows; ++r) {
              double* lo = ys + base + (r << k0);
              const double* q = posts + base + (r << k0);
              for (std::size_t c = 0; c < cols; ++c) lo[c] *= q[c];
            }
          }
        }
      });
    }
  }
}

void apply_blocked_butterfly(std::span<double> v, std::span<const Factor2> factors,
                             const parallel::Engine& engine, const BlockedPlan& plan) {
  apply_blocked_butterfly_fused(v, v, factors, {}, {}, engine, plan);
}

}  // namespace qs::transforms
