#include "transforms/butterfly.hpp"

#include <cmath>

#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::transforms {

double Factor2::stochastic_deviation() const {
  return std::max(std::abs(m00 + m10 - 1.0), std::abs(m01 + m11 - 1.0));
}

void apply_butterfly_level(std::span<double> v, const Factor2& f, unsigned k) {
  const std::size_t n = v.size();
  require(is_power_of_two(n), "apply_butterfly_level: length must be a power of two");
  const std::size_t stride = std::size_t{1} << k;
  require(stride < n, "apply_butterfly_level: level k out of range");
  for (std::size_t j = 0; j < n; j += stride << 1) {
    for (std::size_t idx = j; idx < j + stride; ++idx) {
      const double t1 = v[idx];
      const double t2 = v[idx + stride];
      v[idx] = f.m00 * t1 + f.m01 * t2;
      v[idx + stride] = f.m10 * t1 + f.m11 * t2;
    }
  }
}

void apply_butterfly(std::span<double> v, std::span<const Factor2> factors,
                     LevelOrder order) {
  const std::size_t n = v.size();
  require(is_power_of_two(n), "apply_butterfly: length must be a power of two");
  const unsigned nu = log2_exact(n);
  require(factors.size() == nu, "apply_butterfly: need exactly log2(N) factors");
  if (order == LevelOrder::ascending) {
    for (unsigned k = 0; k < nu; ++k) apply_butterfly_level(v, factors[k], k);
  } else {
    for (unsigned k = nu; k-- > 0;) apply_butterfly_level(v, factors[k], k);
  }
}

void apply_uniform_butterfly(std::span<double> v, double p, LevelOrder order) {
  const std::size_t n = v.size();
  require(is_power_of_two(n), "apply_uniform_butterfly: length must be a power of two");
  const unsigned nu = log2_exact(n);
  const Factor2 f = Factor2::uniform(p);
  if (order == LevelOrder::ascending) {
    for (unsigned k = 0; k < nu; ++k) apply_butterfly_level(v, f, k);
  } else {
    for (unsigned k = nu; k-- > 0;) apply_butterfly_level(v, f, k);
  }
}

}  // namespace qs::transforms
