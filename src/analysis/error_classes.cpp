#include "analysis/error_classes.hpp"

#include <cmath>
#include <algorithm>

#include "support/binomial.hpp"
#include "support/contracts.hpp"

namespace qs::analysis {

std::vector<double> class_concentrations(unsigned nu, std::span<const double> x,
                                         seq_t reference) {
  require(x.size() == sequence_count(nu), "class_concentrations: size must be 2^nu");
  require(reference < x.size(), "class_concentrations: reference out of range");
  std::vector<double> out(nu + 1, 0.0);
  for (seq_t i = 0; i < x.size(); ++i) {
    out[hamming_distance(i, reference)] += x[i];
  }
  return out;
}

std::vector<double> class_cardinalities(unsigned nu) {
  BinomialRow row(nu);
  std::vector<double> out(nu + 1);
  for (unsigned k = 0; k <= nu; ++k) out[k] = row.value(k);
  return out;
}

std::vector<double> uniform_class_concentrations(unsigned nu) {
  std::vector<double> out = class_cardinalities(nu);
  const double n = std::ldexp(1.0, static_cast<int>(nu));  // 2^nu
  for (double& v : out) v /= n;
  return out;
}

std::vector<seq_t> class_members(unsigned nu, unsigned k, seq_t reference) {
  require(k <= nu, "class_members: class index k must satisfy k <= nu");
  require(nu <= 30, "class_members: nu too large to materialise");
  std::vector<seq_t> out;
  FixedWeightMasks(nu, k).for_each([&](seq_t m) { out.push_back(m ^ reference); });
  std::sort(out.begin(), out.end());
  return out;
}

double population_entropy(std::span<const double> x) {
  double h = 0.0;
  for (double v : x) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

}  // namespace qs::analysis
