#include "analysis/marginals.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace qs::analysis {

seq_t pack_configuration(seq_t sequence, seq_t mask) {
  seq_t packed = 0;
  unsigned out_bit = 0;
  while (mask != 0) {
    const seq_t low = mask & (~mask + 1);  // lowest mask bit
    if (sequence & low) packed |= (seq_t{1} << out_bit);
    ++out_bit;
    mask &= mask - 1;
  }
  return packed;
}

std::vector<double> marginal_distribution(unsigned nu, std::span<const double> x,
                                          seq_t mask) {
  require(x.size() == sequence_count(nu),
          "marginal_distribution: size must be 2^nu");
  require(mask != 0 && mask < sequence_count(nu),
          "marginal_distribution: mask must select positions within nu bits");
  const unsigned bits = hamming_weight(mask);
  require(bits <= 24, "marginal_distribution: mask selects too many positions");

  std::vector<double> marginal(std::size_t{1} << bits, 0.0);
  for (seq_t i = 0; i < x.size(); ++i) {
    marginal[pack_configuration(i, mask)] += x[i];
  }
  return marginal;
}

double linkage_disequilibrium(unsigned nu, std::span<const double> x, unsigned i,
                              unsigned j) {
  require(i < nu && j < nu && i != j,
          "linkage_disequilibrium: need two distinct positions below nu");
  const seq_t mask = (seq_t{1} << i) | (seq_t{1} << j);
  const auto joint = marginal_distribution(nu, x, mask);
  // Configuration order (ascending mask bits): index bit 0 = lower position.
  const double p_i = joint[1] + joint[3];  // lower-position bit set
  const double p_j = joint[2] + joint[3];  // higher-position bit set
  const double p_ij = joint[3];
  // D is symmetric in the two positions, so the lower/higher distinction
  // does not matter.
  return p_ij - p_i * p_j;
}

double site_correlation(unsigned nu, std::span<const double> x, unsigned i,
                        unsigned j) {
  const seq_t mask = (seq_t{1} << std::min(i, j)) | (seq_t{1} << std::max(i, j));
  const auto joint = marginal_distribution(nu, x, mask);
  const double p_a = joint[1] + joint[3];
  const double p_b = joint[2] + joint[3];
  const double var_a = p_a * (1.0 - p_a);
  const double var_b = p_b * (1.0 - p_b);
  require(var_a > 0.0 && var_b > 0.0,
          "site_correlation: both positions must be polymorphic");
  return (joint[3] - p_a * p_b) / std::sqrt(var_a * var_b);
}

}  // namespace qs::analysis
