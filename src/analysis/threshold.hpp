// Error-threshold detection (the p_max of Figure 1).
//
// Below the critical error rate p_max the stationary distribution is
// ordered (the master class dominates); above it the population collapses
// to the uniform distribution (random replication).  We quantify order by
// the uniformity distance max_k |[Gamma_k] - C(nu,k)/2^nu| and locate p_max
// by bisection on the exact reduced solver.  Whether a *sharp* threshold
// exists at all depends on the landscape (single peak: yes; linear: no) —
// the transition sharpness measure below separates the two regimes.
#pragma once

#include <optional>

#include "core/landscape.hpp"

namespace qs::analysis {

/// max_k |c_k - u_k| against the uniform class concentrations of chain
/// length nu. Zero iff the population is exactly uniform per class.
/// Requires c.size() == nu + 1.
double uniformity_distance(unsigned nu, std::span<const double> class_conc);

/// Options for threshold detection.
struct ThresholdOptions {
  double uniformity_tol = 1e-4;  ///< Distance below which "uniform" is declared.
  double p_lo = 1e-4;            ///< Bracket lower end (must be ordered here).
  double p_hi = 0.5;             ///< Bracket upper end (uniform here for p=1/2).
  unsigned bisection_steps = 60; ///< Bisection refinement steps.
};

/// Locates p_max = inf { p : population uniform within tol } for an
/// error-class landscape via the reduced solver.  Returns std::nullopt when
/// the population is already uniform at p_lo (no ordered phase to leave).
std::optional<double> find_error_threshold(const core::ErrorClassLandscape& landscape,
                                           const ThresholdOptions& options = {});

/// Transition sharpness: the maximum decrease of the master-class
/// concentration [Gamma_0] per unit of p across the grid, i.e.
/// max_i ([G0](p_i) - [G0](p_{i+1})) / (p_{i+1} - p_i).  Sharp-threshold
/// landscapes score orders of magnitude higher than smooth ones.
double transition_sharpness(const core::ErrorClassLandscape& landscape, double p_lo,
                            double p_hi, std::size_t grid_points = 200);

/// Kink strength of the order parameter: the error threshold is a phase
/// transition, visible as a (finite-size-smoothed) slope discontinuity of
/// the uniformity distance u(p) at p_max.  This estimates the largest jump
/// of du/dp across one grid cell, max_i |u'(p_{i+1}) - u'(p_i)| with the
/// derivative taken as a forward difference on a uniform grid.  Landscapes
/// with a sharp threshold (single peak) score far above smooth ones
/// (linear), where u(p) has a continuous derivative throughout.
double transition_kink(const core::ErrorClassLandscape& landscape, double p_lo,
                       double p_hi, std::size_t grid_points = 400);

}  // namespace qs::analysis
