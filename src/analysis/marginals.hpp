// Resolution levels: marginal concentrations over subsets of positions.
//
// The paper's conclusion lists "efficient methods which allow for computing
// quasispecies concentrations at various resolution levels" as future work.
// These are exactly the marginals of the stationary distribution: instead
// of all 2^nu species, observe only the positions in a mask and accumulate
// everything else — e.g. the joint distribution of two epistatically
// interacting sites, or of one gene's positions out of the whole genome.
// Explicit vectors marginalise in one O(N) pass; Kronecker-implicit results
// marginalise factor by factor without ever touching 2^nu states (see
// solvers::KroneckerResult::marginal_distribution).
#pragma once

#include <span>
#include <vector>

#include "support/bits.hpp"

namespace qs::analysis {

/// Marginal distribution over the positions set in `mask`: out[c] is the
/// total concentration of all sequences whose mask-bits spell the
/// configuration c (bits of c packed in ascending mask-bit order).
/// Requires x.size() == 2^nu, mask != 0, mask < 2^nu, and popcount(mask)
/// <= 24 (output table size).
std::vector<double> marginal_distribution(unsigned nu, std::span<const double> x,
                                          seq_t mask);

/// Packs the mask-selected bits of `sequence` into a dense configuration
/// index (ascending mask-bit order) — the indexing used by
/// marginal_distribution.
seq_t pack_configuration(seq_t sequence, seq_t mask);

/// Linkage disequilibrium between positions i and j:
/// D = P(bit_i = 1, bit_j = 1) - P(bit_i = 1) P(bit_j = 1).
/// Zero iff the two positions are statistically independent in the
/// population; the quasispecies cloud around a single peak is correlated
/// (D != 0) even though mutation acts independently per site.
double linkage_disequilibrium(unsigned nu, std::span<const double> x, unsigned i,
                              unsigned j);

/// Pearson correlation of the indicator variables of positions i and j
/// (normalised linkage, in [-1, 1]). Requires both sites polymorphic.
double site_correlation(unsigned nu, std::span<const double> x, unsigned i,
                        unsigned j);

}  // namespace qs::analysis
