// Population-genetics observables of a quasispecies distribution.
//
// Quantities the virology literature reads off the stationary distribution
// (Schuster's reviews [13, 15] of the paper): consensus sequence, mutant
// cloud geometry, mutational load, and per-sequence selection coefficients.
// All run in O(N) or O(N nu) over an explicit concentration vector.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "support/bits.hpp"

namespace qs::analysis {

/// Consensus sequence: the majority bit at every position, concentration
/// weighted.  For the quasispecies this usually equals the master sequence
/// even when the master's own concentration is far below 1/2.
/// Requires x.size() == 2^nu and sum(x) ~ 1.
seq_t consensus_sequence(unsigned nu, std::span<const double> x);

/// Per-position frequency of the mutant bit (1): out[k] = sum of x_i over
/// sequences with bit k set.  The RNA-virus "site frequency spectrum".
std::vector<double> site_frequencies(unsigned nu, std::span<const double> x);

/// Mean Hamming distance of the population from `reference` — the mutant
/// cloud's radius around the master sequence.
double mean_hamming_distance(unsigned nu, std::span<const double> x,
                             seq_t reference = 0);

/// Population variance of the Hamming distance from `reference` (cloud
/// width).
double hamming_distance_variance(unsigned nu, std::span<const double> x,
                                 seq_t reference = 0);

/// Mean population fitness sum_i f_i x_i.  At the stationary distribution
/// this equals the dominant eigenvalue lambda_0.
double mean_fitness(const core::Landscape& landscape, std::span<const double> x);

/// Mutational load: the relative fitness loss against a mutation-free
/// population sitting on the fittest sequence,
/// L = (f_max - mean_fitness) / f_max in [0, 1).
double mutational_load(const core::Landscape& landscape, std::span<const double> x);

/// Selection coefficient of each sequence against the population mean:
/// s_i = f_i / mean_fitness - 1 (positive = currently favoured).
std::vector<double> selection_coefficients(const core::Landscape& landscape,
                                           std::span<const double> x);

}  // namespace qs::analysis
