#include "analysis/threshold.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/error_classes.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"

namespace qs::analysis {

double uniformity_distance(unsigned nu, std::span<const double> class_conc) {
  require(class_conc.size() == nu + 1, "uniformity_distance: need nu + 1 classes");
  const std::vector<double> uniform = uniform_class_concentrations(nu);
  double worst = 0.0;
  for (unsigned k = 0; k <= nu; ++k) {
    worst = std::max(worst, std::abs(class_conc[k] - uniform[k]));
  }
  return worst;
}

namespace {

double distance_at(const core::ErrorClassLandscape& landscape, double p) {
  const auto r = solvers::solve_reduced(p, landscape);
  return uniformity_distance(landscape.nu(), r.class_concentrations);
}

}  // namespace

std::optional<double> find_error_threshold(const core::ErrorClassLandscape& landscape,
                                           const ThresholdOptions& options) {
  require(options.p_lo > 0.0 && options.p_lo < options.p_hi && options.p_hi <= 0.5,
          "find_error_threshold: need 0 < p_lo < p_hi <= 1/2");
  double lo = options.p_lo;
  double hi = options.p_hi;
  if (distance_at(landscape, lo) <= options.uniformity_tol) {
    return std::nullopt;  // already uniform at the bracket start
  }
  if (distance_at(landscape, hi) > options.uniformity_tol) {
    // p = 1/2 is exactly uniform, so this can only mean p_hi < 1/2 was
    // chosen inside the ordered phase: widen to the model's limit.
    hi = 0.5;
    if (distance_at(landscape, hi) > options.uniformity_tol) return std::nullopt;
  }
  for (unsigned step = 0; step < options.bisection_steps; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (distance_at(landscape, mid) > options.uniformity_tol) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double transition_kink(const core::ErrorClassLandscape& landscape, double p_lo,
                       double p_hi, std::size_t grid_points) {
  require(p_lo > 0.0 && p_lo < p_hi && p_hi <= 0.5,
          "transition_kink: need 0 < p_lo < p_hi <= 1/2");
  require(grid_points >= 4, "transition_kink: need at least four grid points");

  const double h = (p_hi - p_lo) / static_cast<double>(grid_points - 1);
  std::vector<double> u(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double p = p_lo + h * static_cast<double>(i);
    u[i] = distance_at(landscape, p);
  }
  double kink = 0.0;
  for (std::size_t i = 0; i + 2 < grid_points; ++i) {
    const double slope_left = (u[i + 1] - u[i]) / h;
    const double slope_right = (u[i + 2] - u[i + 1]) / h;
    kink = std::max(kink, std::abs(slope_right - slope_left));
  }
  return kink;
}

double transition_sharpness(const core::ErrorClassLandscape& landscape, double p_lo,
                            double p_hi, std::size_t grid_points) {
  require(p_lo > 0.0 && p_lo < p_hi && p_hi <= 0.5,
          "transition_sharpness: need 0 < p_lo < p_hi <= 1/2");
  require(grid_points >= 3, "transition_sharpness: need at least three grid points");
  double prev_p = p_lo;
  double prev_g0 = solvers::solve_reduced(prev_p, landscape).class_concentrations[0];
  double sharpest = 0.0;
  for (std::size_t i = 1; i < grid_points; ++i) {
    const double p = p_lo + (p_hi - p_lo) * static_cast<double>(i) /
                                static_cast<double>(grid_points - 1);
    const double g0 = solvers::solve_reduced(p, landscape).class_concentrations[0];
    sharpest = std::max(sharpest, (prev_g0 - g0) / (p - prev_p));
    prev_p = p;
    prev_g0 = g0;
  }
  return sharpest;
}

}  // namespace qs::analysis
