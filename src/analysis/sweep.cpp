#include "analysis/sweep.hpp"

#include <cmath>
#include <mutex>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/planned_operator.hpp"
#include "core/spectral.hpp"
#include "core/workspace.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "transforms/panel_butterfly.hpp"

namespace qs::analysis {

std::vector<double> error_rate_grid(double lo, double hi, std::size_t count) {
  require(count >= 2, "error_rate_grid: need at least two points");
  require(lo > 0.0 && lo < hi && hi <= 0.5, "error_rate_grid: need 0 < lo < hi <= 1/2");
  std::vector<double> grid(count);
  for (std::size_t i = 0; i < count; ++i) {
    grid[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return grid;
}

SweepResult sweep_error_rates(const core::ErrorClassLandscape& landscape,
                              std::span<const double> error_rates) {
  require(!error_rates.empty(), "sweep_error_rates: empty grid");
  SweepResult out;
  out.error_rates.assign(error_rates.begin(), error_rates.end());
  out.class_concentrations.reserve(error_rates.size());
  out.eigenvalues.reserve(error_rates.size());
  for (double p : error_rates) {
    const auto r = solvers::solve_reduced(p, landscape);
    out.class_concentrations.push_back(r.class_concentrations);
    out.eigenvalues.push_back(r.eigenvalue);
  }
  return out;
}

SweepResult sweep_error_rates(const core::Landscape& landscape,
                              std::span<const double> error_rates,
                              const SweepOptions& options) {
  require(!error_rates.empty(), "sweep_error_rates: empty grid");
  const unsigned nu = landscape.nu();

  SweepResult out;
  out.error_rates.assign(error_rates.begin(), error_rates.end());

  // One scratch workspace and (optionally autotuned) plan serve the whole
  // grid: the per-point operators change factors with p, not shape, so the
  // solver temporaries and the tiling plan carry over from point to point.
  core::Workspace workspace;
  transforms::BlockedPlan plan = options.plan;
  bool tuned = false;

  std::vector<double> previous, before_previous;
  for (double p : error_rates) {
    const auto model = core::MutationModel::uniform(nu, p);
    core::PlannedOperatorConfig config;
    config.engine = options.engine;
    config.plan = plan;
    config.autotune = options.autotune && !tuned;
    const core::PlannedOperator op(model, landscape, config);
    if (op.autotune_report().has_value()) {
      plan = op.autotune_report()->best;
      tuned = true;
    }
    solvers::PowerOptions popts;
    popts.tolerance = options.tolerance;
    popts.max_iterations = options.max_iterations;
    popts.engine = options.engine;
    popts.workspace = &workspace;
    if (options.use_shift) {
      popts.shift = core::conservative_shift(model, landscape);
    }

    // Continuation start for this grid point.
    std::vector<double> start;
    if (!options.warm_start || previous.empty()) {
      start = solvers::landscape_start(landscape);
    } else if (options.extrapolate && !before_previous.empty()) {
      // Secant extrapolation, clamped positive (the eigenvector moves
      // smoothly with p, so the linear prediction lands very close).
      start.resize(previous.size());
      for (std::size_t i = 0; i < start.size(); ++i) {
        start[i] = std::max(2.0 * previous[i] - before_previous[i], 1e-300);
      }
      linalg::normalize1(start);
    } else {
      start = previous;
    }

    auto r = solvers::power_iteration(op, start, popts);
    require(r.converged, "sweep_error_rates: power iteration failed to converge");
    out.total_iterations += r.iterations;
    out.class_concentrations.push_back(class_concentrations(nu, r.eigenvector));
    out.eigenvalues.push_back(r.eigenvalue);
    before_previous = std::move(previous);
    previous = std::move(r.eigenvector);
  }
  return out;
}

FamilyResult sweep_landscape_family(const core::MutationModel& model,
                                    std::span<const core::Landscape> family,
                                    const FamilyOptions& options) {
  require(!family.empty(), "sweep_landscape_family: empty family");
  require(options.residual_check_every >= 1,
          "sweep_landscape_family: residual_check_every must be >= 1");
  const std::size_t n = model.dimension();
  for (const core::Landscape& f : family) {
    require(f.dimension() == n,
            "sweep_landscape_family: landscape dimension differs from Q");
  }
  const std::size_t m = family.size();
  const parallel::Engine& engine = options.engine != nullptr
                                       ? *options.engine
                                       : parallel::serial_engine();

  // Interleaved per-column pre-scaling panel: column j carries F_j, so one
  // fused panel butterfly computes y_j = Q (F_j x_j) = W_j x_j for all j.
  std::vector<double> pre(n * m), x(n * m), y(n * m);
  for (std::size_t j = 0; j < m; ++j) {
    const auto fv = family[j].values();
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += fv[i];
    for (std::size_t i = 0; i < n; ++i) {
      pre[i * m + j] = fv[i];
      x[i * m + j] = fv[i] / sum;  // the paper's landscape start, per column
    }
  }

  const bool grouped = model.kind() == core::MutationKind::grouped;
  const auto panel_product = [&]() {
    if (!grouped) {
      transforms::apply_blocked_panel_butterfly_fused(
          x, y, m, model.site_factors(), pre, {}, engine, options.plan);
      return;
    }
    const double* xp = x.data();
    const double* pp = pre.data();
    double* yp = y.data();
    engine.dispatch(n * m, [=](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) yp[i] = pp[i] * xp[i];
    });
    model.apply_panel(y, m, engine, options.plan);
  };

  // Per-column partial sums (one pass, merged under a mutex; m is small).
  const auto column_sums = [&](const double* p, std::vector<double>& out) {
    out.assign(m, 0.0);
    std::mutex merge;
    engine.dispatch(n, [&](std::size_t begin, std::size_t end) {
      std::vector<double> local(m, 0.0);
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = 0; j < m; ++j) local[j] += p[i * m + j];
      }
      const std::lock_guard<std::mutex> lock(merge);
      for (std::size_t j = 0; j < m; ++j) out[j] += local[j];
    });
  };

  FamilyResult result;
  std::vector<double> lambda(m, 0.0), sums, resid(m, 0.0);
  while (result.panel_products < options.max_iterations) {
    if (options.should_stop && options.should_stop()) {
      result.cancelled = true;
      break;
    }
    {
      // One span per power step: under a service batch TraceScope these
      // inherit the batch's trace id, so a merged Chrome trace shows the
      // solver iterations nested inside the request timeline.
      QS_TRACE_SPAN_ARG("sweep.panel_product", solver,
                        static_cast<std::int64_t>(result.panel_products));
      panel_product();
    }
    ++result.panel_products;

    // Nonnegative iterates and column-stochastic-scaled W: with x_j 1-norm
    // normalised, lambda_j = ||y_j||_1.
    column_sums(y.data(), sums);
    lambda = sums;

    const bool check =
        result.panel_products % options.residual_check_every == 0 ||
        result.panel_products >= options.max_iterations;
    if (check) {
      std::vector<double> num(m, 0.0);
      std::mutex merge;
      const double* xp = x.data();
      const double* yp = y.data();
      const double* lp = lambda.data();
      engine.dispatch(n, [&](std::size_t begin, std::size_t end) {
        std::vector<double> local(m, 0.0);
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            local[j] += std::abs(yp[i * m + j] - lp[j] * xp[i * m + j]);
          }
        }
        const std::lock_guard<std::mutex> lock(merge);
        for (std::size_t j = 0; j < m; ++j) num[j] += local[j];
      });
      bool done = true;
      double worst = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        resid[j] = lambda[j] > 0.0 ? num[j] / lambda[j] : num[j];
        if (!std::isfinite(resid[j]) || resid[j] > options.tolerance) done = false;
        worst = std::max(worst, resid[j]);
      }
      QS_TRACE_INSTANT_ARG("sweep.residual", solver, worst,
                           static_cast<std::int64_t>(result.panel_products));
      if (done) {
        result.converged = true;
        break;
      }
    }

    // x_j <- y_j / lambda_j (1-norm renormalisation, all columns at once).
    {
      double* xp = x.data();
      const double* yp = y.data();
      const double* lp = lambda.data();
      engine.dispatch(n, [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            xp[i * m + j] = yp[i * m + j] / lp[j];
          }
        }
      });
    }
  }

  result.eigenvalues = lambda;
  result.residuals = resid;
  result.eigenvectors.resize(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<double>& v = result.eigenvectors[j];
    v.resize(n);
    const double inv = lambda[j] > 0.0 ? 1.0 / lambda[j] : 0.0;
    for (std::size_t i = 0; i < n; ++i) v[i] = y[i * m + j] * inv;
  }
  return result;
}

void write_sweep_csv(const SweepResult& sweep, std::ostream& out) {
  require(!sweep.class_concentrations.empty(), "write_sweep_csv: empty sweep");
  const std::size_t classes = sweep.class_concentrations.front().size();
  CsvWriter csv(out);
  std::vector<std::string> header{"p"};
  for (std::size_t k = 0; k < classes; ++k) header.push_back("G" + std::to_string(k));
  header.push_back("eigenvalue");
  csv.header(header);
  for (std::size_t i = 0; i < sweep.error_rates.size(); ++i) {
    csv.row().cell(sweep.error_rates[i]);
    for (double c : sweep.class_concentrations[i]) csv.cell(c);
    csv.cell(sweep.eigenvalues[i]);
    csv.end_row();
  }
}

}  // namespace qs::analysis
