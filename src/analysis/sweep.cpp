#include "analysis/sweep.hpp"

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"
#include "support/csv.hpp"

namespace qs::analysis {

std::vector<double> error_rate_grid(double lo, double hi, std::size_t count) {
  require(count >= 2, "error_rate_grid: need at least two points");
  require(lo > 0.0 && lo < hi && hi <= 0.5, "error_rate_grid: need 0 < lo < hi <= 1/2");
  std::vector<double> grid(count);
  for (std::size_t i = 0; i < count; ++i) {
    grid[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return grid;
}

SweepResult sweep_error_rates(const core::ErrorClassLandscape& landscape,
                              std::span<const double> error_rates) {
  require(!error_rates.empty(), "sweep_error_rates: empty grid");
  SweepResult out;
  out.error_rates.assign(error_rates.begin(), error_rates.end());
  out.class_concentrations.reserve(error_rates.size());
  out.eigenvalues.reserve(error_rates.size());
  for (double p : error_rates) {
    const auto r = solvers::solve_reduced(p, landscape);
    out.class_concentrations.push_back(r.class_concentrations);
    out.eigenvalues.push_back(r.eigenvalue);
  }
  return out;
}

SweepResult sweep_error_rates(const core::Landscape& landscape,
                              std::span<const double> error_rates,
                              const SweepOptions& options) {
  require(!error_rates.empty(), "sweep_error_rates: empty grid");
  const unsigned nu = landscape.nu();

  SweepResult out;
  out.error_rates.assign(error_rates.begin(), error_rates.end());

  std::vector<double> previous, before_previous;
  for (double p : error_rates) {
    const auto model = core::MutationModel::uniform(nu, p);
    const core::FmmpOperator op(model, landscape, core::Formulation::right,
                                options.engine);
    solvers::PowerOptions popts;
    popts.tolerance = options.tolerance;
    popts.max_iterations = options.max_iterations;
    popts.engine = options.engine;
    if (options.use_shift) {
      popts.shift = core::conservative_shift(model, landscape);
    }

    // Continuation start for this grid point.
    std::vector<double> start;
    if (!options.warm_start || previous.empty()) {
      start = solvers::landscape_start(landscape);
    } else if (options.extrapolate && !before_previous.empty()) {
      // Secant extrapolation, clamped positive (the eigenvector moves
      // smoothly with p, so the linear prediction lands very close).
      start.resize(previous.size());
      for (std::size_t i = 0; i < start.size(); ++i) {
        start[i] = std::max(2.0 * previous[i] - before_previous[i], 1e-300);
      }
      linalg::normalize1(start);
    } else {
      start = previous;
    }

    auto r = solvers::power_iteration(op, start, popts);
    require(r.converged, "sweep_error_rates: power iteration failed to converge");
    out.total_iterations += r.iterations;
    out.class_concentrations.push_back(class_concentrations(nu, r.eigenvector));
    out.eigenvalues.push_back(r.eigenvalue);
    before_previous = std::move(previous);
    previous = std::move(r.eigenvector);
  }
  return out;
}

void write_sweep_csv(const SweepResult& sweep, std::ostream& out) {
  require(!sweep.class_concentrations.empty(), "write_sweep_csv: empty sweep");
  const std::size_t classes = sweep.class_concentrations.front().size();
  CsvWriter csv(out);
  std::vector<std::string> header{"p"};
  for (std::size_t k = 0; k < classes; ++k) header.push_back("G" + std::to_string(k));
  header.push_back("eigenvalue");
  csv.header(header);
  for (std::size_t i = 0; i < sweep.error_rates.size(); ++i) {
    csv.row().cell(sweep.error_rates[i]);
    for (double c : sweep.class_concentrations[i]) csv.cell(c);
    csv.cell(sweep.eigenvalues[i]);
    csv.end_row();
  }
}

}  // namespace qs::analysis
