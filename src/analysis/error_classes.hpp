// Error classes Gamma_k and population statistics on concentration vectors.
//
// The error class Gamma_{k,i} collects all sequences at Hamming distance k
// from sequence i (Eq. (6) of the paper); the classes relative to the
// master sequence (i = 0) carry the cumulative concentrations [Gamma_k]
// plotted in Figure 1 and used by the error-threshold analysis.
#pragma once

#include <span>
#include <vector>

#include "support/bits.hpp"

namespace qs::analysis {

/// Cumulative error-class concentrations relative to `reference`:
/// out[k] = sum of x_j over all j with d_H(j, reference) = k.
/// Requires x.size() == 2^nu.
std::vector<double> class_concentrations(unsigned nu, std::span<const double> x,
                                         seq_t reference = 0);

/// Error-class cardinalities |Gamma_k| = C(nu, k) as doubles.
std::vector<double> class_cardinalities(unsigned nu);

/// The class concentrations of the exactly uniform population
/// x_i = 1/2^nu: out[k] = C(nu, k) / 2^nu. This is the p > p_max limit of
/// the error-threshold phenomenon.
std::vector<double> uniform_class_concentrations(unsigned nu);

/// Members of Gamma_{k, reference} in increasing index order (test /
/// example utility; requires small nu).
std::vector<seq_t> class_members(unsigned nu, unsigned k, seq_t reference = 0);

/// Shannon entropy (nats) of a concentration vector; log(N) for the uniform
/// population, 0 for a homogeneous one.  A scalar order parameter for the
/// transition of Figure 1.
double population_entropy(std::span<const double> x);

}  // namespace qs::analysis
