// Error-rate sweeps: the data behind Figure 1 of the paper.
//
// For a fixed fitness landscape, the quasispecies problem is solved for a
// grid of error rates p and the cumulative class concentrations [Gamma_k]
// are collected; plotting them against p visualises the error threshold
// phenomenon.  Error-class landscapes ride on the exact (nu+1) x (nu+1)
// reduction (Section 5.1), so a full nu = 20 sweep costs milliseconds;
// general landscapes run the Fmmp power iteration with warm starts (each
// solution seeds the next grid point).
#pragma once

#include <functional>
#include <ostream>
#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "parallel/engine.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::analysis {

/// One sweep: rows are grid points, columns are error classes.
struct SweepResult {
  std::vector<double> error_rates;  ///< The p grid actually used.
  std::vector<std::vector<double>> class_concentrations;  ///< Per p: [Gamma_0..nu].
  std::vector<double> eigenvalues;  ///< Dominant eigenvalue per p.
  std::size_t total_iterations = 0; ///< Power iterations summed over the grid
                                    ///< (0 for reduced-solver sweeps).
};

/// Options for general-landscape sweeps.
struct SweepOptions {
  double tolerance = 1e-12;
  unsigned max_iterations = 1000000;
  bool use_shift = true;

  /// Tiling plan for the banded Fmmp kernel at every grid point.
  transforms::BlockedPlan plan;

  /// Autotune the banded plan once, at the first grid point, and reuse the
  /// winner for the rest of the sweep (the operator shape does not change
  /// with p, only its factors).
  bool autotune = false;

  /// Continuation strategy along the grid: each solve starts from the
  /// previous eigenvector (warm start), optionally secant-extrapolated one
  /// grid step forward — x(p_i) ~ 2 x(p_{i-1}) - x(p_{i-2}) — which tracks
  /// the smooth drift of the quasispecies with p and cuts iterations again.
  bool warm_start = true;
  bool extrapolate = true;

  const parallel::Engine* engine = nullptr;
};

/// Evenly spaced grid of `count` points in [lo, hi]. Requires count >= 2 and
/// 0 < lo < hi <= 1/2.
std::vector<double> error_rate_grid(double lo, double hi, std::size_t count);

/// Sweeps an error-class landscape through the exact reduced solver.
SweepResult sweep_error_rates(const core::ErrorClassLandscape& landscape,
                              std::span<const double> error_rates);

/// Sweeps a general landscape with the Fmmp-based power iteration; each grid
/// point starts from the previous eigenvector.
SweepResult sweep_error_rates(const core::Landscape& landscape,
                              std::span<const double> error_rates,
                              const SweepOptions& options = {});

/// Emits the sweep as CSV: header "p,G0,...,Gnu,eigenvalue", one row per p.
void write_sweep_csv(const SweepResult& sweep, std::ostream& out);

/// Options for landscape-family solves.
struct FamilyOptions {
  /// Per-landscape convergence threshold on the relative 1-norm residual
  /// ||W_j x_j - lambda_j x_j||_1 / lambda_j.
  double tolerance = 1e-12;
  unsigned max_iterations = 1000000;

  /// Residuals are checked every k-th panel product (the eigenvalue
  /// estimates update every product regardless).
  unsigned residual_check_every = 8;

  const parallel::Engine* engine = nullptr;

  /// Tiling plan for the banded panel kernels.
  transforms::BlockedPlan plan;

  /// Cooperative cancellation, polled once per panel product: returning
  /// true ends the joint solve at the next iteration boundary with
  /// cancelled = true on the result (converged stays false).  Must be
  /// cheap and thread-safe (typically an atomic load); the solver service
  /// uses it to abort batches whose deadlines passed or whose clients all
  /// disconnected.
  std::function<bool()> should_stop;
};

/// Joint solve of a same-Q landscape family.
struct FamilyResult {
  std::vector<double> eigenvalues;                ///< lambda_0 of W_j = Q F_j.
  std::vector<std::vector<double>> eigenvectors;  ///< Concentrations, 1-norm
                                                  ///< normalised, nonnegative.
  std::vector<double> residuals;                  ///< Relative residual per j.
  unsigned panel_products = 0;  ///< Panel matvecs performed (each advances
                                ///< every landscape one power step).
  bool converged = false;       ///< All landscapes met the tolerance.
  bool cancelled = false;       ///< should_stop() ended the solve early.
};

/// Solves the dominant eigenpair of W_j = Q F_j for a whole family of
/// landscapes F_0..F_{m-1} sharing one mutation model Q in lock-step: the m
/// iterates are interleaved into one panel, each power step is a single
/// banded *panel* product (per-column pre-scalings, the butterfly amortised
/// across the family), and each column is normalised against its own
/// eigenvalue estimate.  This is the batched form of running m independent
/// power iterations — same iterates, a fraction of the memory traffic.
/// Typical use: parameter studies where the landscape varies and p is fixed.
/// Requires a non-empty family with every landscape of Q's dimension.
FamilyResult sweep_landscape_family(const core::MutationModel& model,
                                    std::span<const core::Landscape> family,
                                    const FamilyOptions& options = {});

}  // namespace qs::analysis
