#include "analysis/statistics.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace qs::analysis {

seq_t consensus_sequence(unsigned nu, std::span<const double> x) {
  const auto freq = site_frequencies(nu, x);
  seq_t consensus = 0;
  for (unsigned k = 0; k < nu; ++k) {
    if (freq[k] > 0.5) consensus |= (seq_t{1} << k);
  }
  return consensus;
}

std::vector<double> site_frequencies(unsigned nu, std::span<const double> x) {
  require(x.size() == sequence_count(nu), "site_frequencies: size must be 2^nu");
  std::vector<double> freq(nu, 0.0);
  for (seq_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) continue;
    seq_t bits = i;
    while (bits != 0) {
      const unsigned k = log2_exact(bits & (~bits + 1));
      freq[k] += x[i];
      bits &= bits - 1;
    }
  }
  return freq;
}

double mean_hamming_distance(unsigned nu, std::span<const double> x,
                             seq_t reference) {
  require(x.size() == sequence_count(nu),
          "mean_hamming_distance: size must be 2^nu");
  double mean = 0.0;
  for (seq_t i = 0; i < x.size(); ++i) {
    mean += static_cast<double>(hamming_distance(i, reference)) * x[i];
  }
  return mean;
}

double hamming_distance_variance(unsigned nu, std::span<const double> x,
                                 seq_t reference) {
  const double mean = mean_hamming_distance(nu, x, reference);
  double second = 0.0;
  for (seq_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(hamming_distance(i, reference));
    second += d * d * x[i];
  }
  return std::max(second - mean * mean, 0.0);
}

double mean_fitness(const core::Landscape& landscape, std::span<const double> x) {
  require(x.size() == landscape.dimension(), "mean_fitness: dimension mismatch");
  double phi = 0.0;
  const auto f = landscape.values();
  for (std::size_t i = 0; i < x.size(); ++i) phi += f[i] * x[i];
  return phi;
}

double mutational_load(const core::Landscape& landscape, std::span<const double> x) {
  const double phi = mean_fitness(landscape, x);
  return (landscape.max_fitness() - phi) / landscape.max_fitness();
}

std::vector<double> selection_coefficients(const core::Landscape& landscape,
                                           std::span<const double> x) {
  const double phi = mean_fitness(landscape, x);
  require(phi > 0.0, "selection_coefficients: mean fitness must be positive");
  const auto f = landscape.values();
  std::vector<double> s(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) s[i] = f[i] / phi - 1.0;
  return s;
}

}  // namespace qs::analysis
