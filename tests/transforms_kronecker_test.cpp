// Unit tests for grouped Kronecker products.
#include "transforms/kronecker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::transforms {
namespace {

linalg::DenseMatrix random_stochastic(std::size_t n, std::uint64_t seed) {
  linalg::DenseMatrix m(n, n);
  Xoshiro256 rng(seed);
  for (std::size_t j = 0; j < n; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      m(i, j) = rng.uniform(0.01, 1.0);
      col += m(i, j);
    }
    for (std::size_t i = 0; i < n; ++i) m(i, j) /= col;
  }
  return m;
}

TEST(KroneckerDense, KnownSmallProduct) {
  linalg::DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(1, 0) = 3.0; a(1, 1) = 4.0;
  linalg::DenseMatrix b = linalg::DenseMatrix::identity(2);
  const linalg::DenseMatrix k = kronecker_dense(a, b);
  ASSERT_EQ(k.rows(), 4u);
  // A (x) I has A's entries on 2x2 diagonal blocks of scaled identities.
  EXPECT_DOUBLE_EQ(k(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(k(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(k(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(k(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(k(0, 1), 0.0);
}

TEST(KroneckerProduct, ApplyMatchesDense) {
  // Mixed group sizes: 2 x 4 x 2 = dimension 16.
  std::vector<linalg::DenseMatrix> factors{
      random_stochastic(2, 1), random_stochastic(4, 2), random_stochastic(2, 3)};
  const KroneckerProduct kp(factors);
  EXPECT_EQ(kp.dimension(), 16u);
  EXPECT_EQ(kp.total_bits(), 4u);

  const linalg::DenseMatrix dense = kp.to_dense();
  std::vector<double> v(16), expected(16);
  Xoshiro256 rng(5);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  dense.multiply(v, expected);
  kp.apply(v);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(v[i], expected[i], 1e-13);
}

TEST(KroneckerProduct, SingleFactorIsThatMatrix) {
  const linalg::DenseMatrix f = random_stochastic(8, 7);
  const KroneckerProduct kp({f});
  std::vector<double> v(8), expected(8);
  Xoshiro256 rng(8);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  f.multiply(v, expected);
  kp.apply(v);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(v[i], expected[i], 1e-14);
}

TEST(KroneckerProduct, StochasticFactorsGiveStochasticProduct) {
  std::vector<linalg::DenseMatrix> factors{random_stochastic(4, 11),
                                           random_stochastic(2, 12)};
  const KroneckerProduct kp(factors);
  EXPECT_LT(kp.stochastic_deviation(), 1e-12);
  EXPECT_LT(kp.to_dense().max_column_sum_deviation(), 1e-12);
}

TEST(KroneckerProduct, LsbConventionMatchesButterfly) {
  // factors[0] acts on the least significant bit: K = F1 (x) F0.
  linalg::DenseMatrix f0(2, 2), f1(2, 2);
  f0(0, 0) = 0.9; f0(0, 1) = 0.1; f0(1, 0) = 0.1; f0(1, 1) = 0.9;
  f1 = linalg::DenseMatrix::identity(2);
  const KroneckerProduct kp({f0, f1});
  // Applying to e_0 must mix indices 0 and 1 (bit 0), not 0 and 2.
  std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  kp.apply(v);
  EXPECT_DOUBLE_EQ(v[0], 0.9);
  EXPECT_DOUBLE_EQ(v[1], 0.1);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(KroneckerProduct, MassPreservation) {
  std::vector<linalg::DenseMatrix> factors{random_stochastic(4, 20),
                                           random_stochastic(4, 21)};
  const KroneckerProduct kp(factors);
  std::vector<double> v(16);
  Xoshiro256 rng(22);
  double mass = 0.0;
  for (double& x : v) {
    x = rng.uniform(0.0, 1.0);
    mass += x;
  }
  kp.apply(v);
  double after = 0.0;
  for (double x : v) after += x;
  EXPECT_NEAR(after, mass, 1e-13 * mass);
}

TEST(KroneckerProduct, RejectsBadFactors) {
  EXPECT_THROW(KroneckerProduct({}), qs::precondition_error);
  EXPECT_THROW(KroneckerProduct({linalg::DenseMatrix(3, 3)}), qs::precondition_error);
  EXPECT_THROW(KroneckerProduct({linalg::DenseMatrix(2, 4)}), qs::precondition_error);
  EXPECT_THROW(KroneckerProduct({linalg::DenseMatrix(1, 1)}), qs::precondition_error);
}

TEST(KroneckerProduct, ApplyRejectsWrongDimension) {
  const KroneckerProduct kp({random_stochastic(4, 30)});
  std::vector<double> v(8);
  EXPECT_THROW(kp.apply(v), qs::precondition_error);
}

}  // namespace
}  // namespace qs::transforms
