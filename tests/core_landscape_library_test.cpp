// Unit tests for the biologically motivated landscape families.
#include "core/landscape_library.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_classes.hpp"
#include "analysis/statistics.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"

namespace qs::core {
namespace {

TEST(Multiplicative, ValuesFactorOverSites) {
  const std::vector<double> s{0.1, 0.2, 0.3};
  const auto l = multiplicative_landscape(3, s, 2.0);
  EXPECT_DOUBLE_EQ(l.value(0b000), 2.0);
  EXPECT_DOUBLE_EQ(l.value(0b001), 2.0 * 0.9);
  EXPECT_DOUBLE_EQ(l.value(0b010), 2.0 * 0.8);
  EXPECT_DOUBLE_EQ(l.value(0b101), 2.0 * 0.9 * 0.7);
  EXPECT_DOUBLE_EQ(l.value(0b111), 2.0 * 0.9 * 0.8 * 0.7);
}

TEST(Multiplicative, NoEpistasisMeansZeroFitnessInteraction) {
  // log f is additive: f(i|j set) / f(i) independent of i's other bits.
  const std::vector<double> s{0.05, 0.15, 0.25, 0.35};
  const auto l = multiplicative_landscape(4, s);
  for (seq_t i = 0; i < 8; ++i) {  // vary bits 0..2, test bit 3
    const double ratio = l.value(i | 0b1000) / l.value(i);
    EXPECT_NEAR(ratio, 1.0 - 0.35, 1e-14);
  }
}

TEST(Multiplicative, RejectsBadCoefficients) {
  EXPECT_THROW(multiplicative_landscape(2, std::vector<double>{0.1}),
               precondition_error);
  EXPECT_THROW(multiplicative_landscape(2, std::vector<double>{0.1, 1.0}),
               precondition_error);
  EXPECT_THROW(multiplicative_landscape(2, std::vector<double>{0.1, 0.0}),
               precondition_error);
}

TEST(Nk, AdditiveCaseHasNoEpistasis) {
  // K = 0: contributions depend on single bits, so fitness differences from
  // flipping a bit are independent of the background.
  const auto l = nk_landscape(6, 0, 42);
  for (unsigned bit = 0; bit < 6; ++bit) {
    const double delta0 = l.value(seq_t{1} << bit) - l.value(0);
    for (seq_t background : {seq_t{0b101010}, seq_t{0b011011}}) {
      const seq_t base = background & ~(seq_t{1} << bit);
      const double delta = l.value(base | (seq_t{1} << bit)) - l.value(base);
      EXPECT_NEAR(delta, delta0, 1e-12);
    }
  }
}

TEST(Nk, PositiveAndDeterministic) {
  const auto a = nk_landscape(8, 3, 7);
  const auto b = nk_landscape(8, 3, 7);
  const auto c = nk_landscape(8, 3, 8);
  bool differs = false;
  for (seq_t i = 0; i < 256; ++i) {
    EXPECT_GT(a.value(i), 0.0);
    EXPECT_EQ(a.value(i), b.value(i));
    differs |= (a.value(i) != c.value(i));
  }
  EXPECT_TRUE(differs);
}

TEST(Nk, EpistasisIncreasesRuggedness) {
  // Count local fitness maxima (no 1-mutant improvement): ruggedness grows
  // with K, a defining NK property.
  auto count_maxima = [](const Landscape& l, unsigned nu) {
    unsigned maxima = 0;
    for (seq_t i = 0; i < l.dimension(); ++i) {
      bool is_max = true;
      for (unsigned b = 0; b < nu; ++b) {
        if (l.value(i ^ (seq_t{1} << b)) > l.value(i)) {
          is_max = false;
          break;
        }
      }
      maxima += is_max ? 1 : 0;
    }
    return maxima;
  };
  const unsigned nu = 10;
  const unsigned smooth = count_maxima(nk_landscape(nu, 0, 3), nu);
  const unsigned rugged = count_maxima(nk_landscape(nu, 6, 3), nu);
  EXPECT_EQ(smooth, 1u);  // K = 0 has a single global optimum
  EXPECT_GT(rugged, 3u);
}

TEST(RoyalRoad, BlockBonusesAdd) {
  const auto l = royal_road_landscape(6, 2, 0.5);
  EXPECT_DOUBLE_EQ(l.value(0b000000), 2.5);  // 3 intact blocks
  EXPECT_DOUBLE_EQ(l.value(0b000001), 2.0);  // block 0 broken
  EXPECT_DOUBLE_EQ(l.value(0b010001), 1.5);  // blocks 0 and 2 broken
  EXPECT_DOUBLE_EQ(l.value(0b110111), 1.0);  // every block broken
  EXPECT_DOUBLE_EQ(l.value(0b111111), 1.0);  // all broken
  // Block structure is positional, not Hamming-class-based.
  EXPECT_FALSE(l.is_error_class(1e-12));
}

TEST(RoyalRoad, RejectsBadBlocking) {
  EXPECT_THROW(royal_road_landscape(6, 4, 0.5), precondition_error);
  EXPECT_THROW(royal_road_landscape(6, 2, 0.0), precondition_error);
}

TEST(NeutralPlateau, PlateauIsErrorClassLandscape) {
  const auto l = neutral_plateau_landscape(8, 2, 3.0, 1.0);
  EXPECT_TRUE(l.is_error_class());
  EXPECT_DOUBLE_EQ(l.value(0), 3.0);
  EXPECT_DOUBLE_EQ(l.value(0b11), 3.0);       // distance 2: still plateau
  EXPECT_DOUBLE_EQ(l.value(0b111), 1.0);      // distance 3: off plateau
}

TEST(NeutralPlateau, NeutralityDelocalisesTheQuasispecies) {
  // Same peak height: a plateau of radius 2 spreads the population over the
  // plateau, lowering x_0 but raising the plateau's total share.
  const unsigned nu = 10;
  const double p = 0.02;
  const auto model = MutationModel::uniform(nu, p);

  const auto sharp = solvers::solve(model, Landscape::single_peak(nu, 3.0, 1.0));
  const auto plateau =
      solvers::solve(model, neutral_plateau_landscape(nu, 2, 3.0, 1.0));
  ASSERT_TRUE(sharp.converged && plateau.converged);
  // The master's own share drops (it shares the plateau)...
  EXPECT_LT(plateau.concentrations[0], sharp.concentrations[0]);
  // ... the plateau classes 1 and 2 hold far more than the sharp peak's
  // mutant cloud at the same distances ...
  EXPECT_GT(plateau.class_concentrations[1], sharp.class_concentrations[1]);
  EXPECT_GT(plateau.class_concentrations[2], 5.0 * sharp.class_concentrations[2]);
  // ... and the population as a whole carries more diversity.
  EXPECT_GT(analysis::population_entropy(plateau.concentrations),
            analysis::population_entropy(sharp.concentrations));
}

TEST(LandscapeLibrary, AllFamiliesSolveThroughTheFacade) {
  const unsigned nu = 8;
  const auto model = MutationModel::uniform(nu, 0.02);
  const std::vector<Landscape> landscapes = [] {
    std::vector<Landscape> out;
    std::vector<double> s(8, 0.1);
    out.push_back(multiplicative_landscape(8, s));
    out.push_back(nk_landscape(8, 2, 5));
    out.push_back(royal_road_landscape(8, 2, 0.5));
    out.push_back(neutral_plateau_landscape(8, 1, 2.0, 1.0));
    return out;
  }();
  for (const auto& landscape : landscapes) {
    const auto r = solvers::solve(model, landscape);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.eigenvalue, 0.0);
    double total = 0.0;
    for (double c : r.concentrations) total += c;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace qs::core
