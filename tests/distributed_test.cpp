// Unit tests for the simulated distributed-memory decomposition.
#include <gtest/gtest.h>

#include <string>

#include "core/fmmp.hpp"
#include "core/site_process.hpp"
#include "core/spectral.hpp"
#include "distributed/block_layout.hpp"
#include "distributed/distributed_solver.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::distributed {
namespace {

TEST(BlockLayout, BasicGeometry) {
  const BlockLayout layout(10, 4);
  EXPECT_EQ(layout.block_size(), 256u);
  EXPECT_EQ(layout.rank_bits(), 2u);
  EXPECT_EQ(layout.block_begin(0), 0u);
  EXPECT_EQ(layout.block_begin(3), 768u);
  EXPECT_EQ(layout.owner(0), 0u);
  EXPECT_EQ(layout.owner(255), 0u);
  EXPECT_EQ(layout.owner(256), 1u);
  EXPECT_EQ(layout.owner(1023), 3u);
}

TEST(BlockLayout, LevelLocality) {
  const BlockLayout layout(10, 4);  // block = 256 = 2^8
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_TRUE(layout.level_is_local(std::size_t{1} << k)) << k;
  }
  EXPECT_FALSE(layout.level_is_local(256));
  EXPECT_FALSE(layout.level_is_local(512));
}

TEST(BlockLayout, PartnerPattern) {
  const BlockLayout layout(10, 4);
  // stride 256 pairs ranks differing in bit 0; stride 512 in bit 1.
  EXPECT_EQ(layout.partner(0, 256), 1u);
  EXPECT_EQ(layout.partner(1, 256), 0u);
  EXPECT_EQ(layout.partner(2, 256), 3u);
  EXPECT_EQ(layout.partner(0, 512), 2u);
  EXPECT_EQ(layout.partner(3, 512), 1u);
  EXPECT_THROW(layout.partner(0, 128), precondition_error);  // local level
}

TEST(BlockLayout, RejectsBadConfigurations) {
  EXPECT_THROW(BlockLayout(4, 3), precondition_error);   // not a power of two
  EXPECT_THROW(BlockLayout(4, 16), precondition_error);  // one entry per rank
  EXPECT_NO_THROW(BlockLayout(4, 8));                    // two entries per rank
}

TEST(DistributedVector, ScatterGatherRoundTrip) {
  const BlockLayout layout(8, 4);
  std::vector<double> global(256);
  Xoshiro256 rng(1);
  for (double& v : global) v = rng.uniform(-1.0, 1.0);
  const auto dv = DistributedVector::scatter(layout, global);
  const auto back = dv.gather();
  EXPECT_EQ(back, global);
}

class DistributedApply : public ::testing::TestWithParam<unsigned> {};

TEST_P(DistributedApply, MatchesSerialFmmpBitExactly) {
  // The distributed product performs the same arithmetic as the serial
  // butterfly, so blocks must agree bit for bit across any rank count.
  const unsigned ranks = GetParam();
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const BlockLayout layout(nu, ranks);

  std::vector<double> x(1024);
  Xoshiro256 rng(2);
  for (double& v : x) v = rng.uniform(0.0, 1.0);

  // Serial reference.
  std::vector<double> expected(1024);
  core::FmmpOperator(model, landscape).apply(x, expected);

  auto dv = DistributedVector::scatter(layout, x);
  TrafficStats stats;
  distributed_apply_w(model, landscape, dv, stats);
  const auto result = dv.gather();
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_DOUBLE_EQ(result[i], expected[i]) << "i=" << i << " ranks=" << ranks;
  }
}

TEST_P(DistributedApply, TrafficMatchesTheSchedule) {
  // Cross-rank levels = log2(ranks); per level there are ranks/2 disjoint
  // pairs and each pair exchanges two messages (one per direction).
  const unsigned ranks = GetParam();
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const BlockLayout layout(nu, ranks);
  auto dv = DistributedVector::scatter(
      layout, std::vector<double>(1024, 1.0 / 1024.0));
  TrafficStats stats;
  distributed_apply_w(model, landscape, dv, stats);

  const std::size_t cross_levels = layout.rank_bits();
  const std::size_t expected_messages = cross_levels * (ranks / 2) * 2;
  EXPECT_EQ(stats.messages, expected_messages);
  EXPECT_EQ(stats.doubles_moved, expected_messages * layout.block_size());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedApply,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(DistributedPower, MatchesSerialSolver) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 11);

  const core::FmmpOperator op(model, landscape);
  solvers::PowerOptions serial_opts;
  serial_opts.shift = core::conservative_shift(model, landscape);
  const auto serial =
      solvers::power_iteration(op, solvers::landscape_start(landscape), serial_opts);
  ASSERT_TRUE(serial.converged);

  DistributedPowerOptions opts;
  opts.shift = serial_opts.shift;
  const auto dist = distributed_power_iteration(model, landscape, 8, opts);
  ASSERT_TRUE(dist.converged);
  EXPECT_NEAR(dist.eigenvalue, serial.eigenvalue, 1e-12);
  EXPECT_LT(linalg::max_abs_diff(dist.eigenvector, serial.eigenvector), 1e-12);
  EXPECT_EQ(dist.iterations, serial.iterations);  // identical arithmetic
  EXPECT_GT(dist.traffic.messages, 0u);
  EXPECT_GT(dist.traffic.allreduce_calls, 0u);
}

TEST(DistributedPower, RankCountDoesNotChangeTheAnswer) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.04);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 13);

  const auto one = distributed_power_iteration(model, landscape, 1);
  const auto four = distributed_power_iteration(model, landscape, 4);
  const auto sixteen = distributed_power_iteration(model, landscape, 16);
  ASSERT_TRUE(one.converged && four.converged && sixteen.converged);
  EXPECT_NEAR(one.eigenvalue, four.eigenvalue, 1e-13);
  EXPECT_NEAR(one.eigenvalue, sixteen.eigenvalue, 1e-13);
  EXPECT_LT(linalg::max_abs_diff(one.eigenvector, four.eigenvector), 1e-13);
  EXPECT_LT(linalg::max_abs_diff(one.eigenvector, sixteen.eigenvector), 1e-13);
  // Single-rank runs ship nothing.
  EXPECT_EQ(one.traffic.messages, 0u);
  EXPECT_GT(sixteen.traffic.messages, four.traffic.messages);
}

TEST(DistributedApply, RejectsGroupedModelsWithStructuredError) {
  const auto grouped =
      core::MutationModel::grouped({core::coupled_single_flip_group(2, 0.2),
                                    core::coupled_single_flip_group(2, 0.2)});
  const auto landscape = core::Landscape::flat(4, 1.0);
  const BlockLayout layout(4, 2);
  auto dv = DistributedVector::scatter(layout, std::vector<double>(16, 1.0 / 16));
  TrafficStats stats;
  // The old contract was a hard `require` abort with a generic message; the
  // distributed layer now raises a structured error naming the kind and
  // mapping onto SolverFailure::unsupported — while still deriving from
  // precondition_error so pre-existing catch sites keep working.
  try {
    distributed_apply_w(grouped, landscape, dv, stats);
    FAIL() << "grouped model must be rejected";
  } catch (const UnsupportedModelError& e) {
    EXPECT_EQ(e.kind(), core::MutationKind::grouped);
    EXPECT_EQ(e.failure(), solvers::SolverFailure::unsupported);
    EXPECT_NE(std::string(e.what()).find("grouped"), std::string::npos);
  }
  EXPECT_THROW(distributed_apply_w(grouped, landscape, dv, stats),
               precondition_error);  // the compat contract
}

TEST(DistributedPower, RejectsGroupedModelsWithStructuredError) {
  const auto grouped =
      core::MutationModel::grouped({core::coupled_single_flip_group(2, 0.2),
                                    core::coupled_single_flip_group(2, 0.2)});
  const auto landscape = core::Landscape::flat(4, 1.0);
  try {
    distributed_power_iteration(grouped, landscape, 2);
    FAIL() << "grouped model must be rejected";
  } catch (const UnsupportedModelError& e) {
    EXPECT_EQ(e.kind(), core::MutationKind::grouped);
    EXPECT_EQ(e.failure(), solvers::SolverFailure::unsupported);
  }
}

}  // namespace
}  // namespace qs::distributed
