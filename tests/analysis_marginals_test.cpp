// Unit tests for marginal distributions and linkage analysis
// ("resolution levels" of the paper's conclusion).
#include "analysis/marginals.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fmmp.hpp"
#include "solvers/kronecker_solver.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::analysis {
namespace {

TEST(PackConfiguration, SelectsAndPacksBits) {
  EXPECT_EQ(pack_configuration(0b1011, 0b0011), 0b11u);
  EXPECT_EQ(pack_configuration(0b1011, 0b1000), 0b1u);
  EXPECT_EQ(pack_configuration(0b1011, 0b1100), 0b10u);  // bits 2,3 -> 0,1
  EXPECT_EQ(pack_configuration(0b0000, 0b1111), 0u);
}

TEST(Marginals, SingleSiteMarginalMatchesSiteFrequency) {
  const unsigned nu = 8;
  std::vector<double> x(256);
  Xoshiro256 rng(1);
  double total = 0.0;
  for (double& v : x) {
    v = rng.uniform(0.0, 1.0);
    total += v;
  }
  for (double& v : x) v /= total;

  for (unsigned k = 0; k < nu; ++k) {
    const auto marginal = marginal_distribution(nu, x, seq_t{1} << k);
    ASSERT_EQ(marginal.size(), 2u);
    EXPECT_NEAR(marginal[0] + marginal[1], 1.0, 1e-12);
    double direct = 0.0;
    for (seq_t i = 0; i < 256; ++i) {
      if ((i >> k) & 1) direct += x[i];
    }
    EXPECT_NEAR(marginal[1], direct, 1e-13);
  }
}

TEST(Marginals, FullMaskIsIdentity) {
  const unsigned nu = 5;
  std::vector<double> x(32);
  Xoshiro256 rng(2);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  const auto marginal = marginal_distribution(nu, x, sequence_count(nu) - 1);
  ASSERT_EQ(marginal.size(), 32u);
  for (seq_t i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(marginal[i], x[i]);
}

TEST(Marginals, ConsistencyUnderFurtherMarginalisation) {
  // Marginalising {i, j} then dropping j must equal marginalising {i}.
  const unsigned nu = 7;
  std::vector<double> x(128);
  Xoshiro256 rng(3);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  const auto pair = marginal_distribution(nu, x, 0b0101);  // bits 0 and 2
  const auto single = marginal_distribution(nu, x, 0b0001);
  EXPECT_NEAR(pair[0] + pair[2], single[0], 1e-13);  // bit0=0 rows
  EXPECT_NEAR(pair[1] + pair[3], single[1], 1e-13);
}

TEST(Marginals, IndependentProductHasZeroLinkage) {
  // Build x as a product distribution: bits independent by construction.
  const unsigned nu = 6;
  std::vector<double> site_p{0.1, 0.5, 0.9, 0.3, 0.7, 0.2};
  std::vector<double> x(64, 1.0);
  for (seq_t i = 0; i < 64; ++i) {
    for (unsigned k = 0; k < nu; ++k) {
      x[i] *= ((i >> k) & 1) ? site_p[k] : 1.0 - site_p[k];
    }
  }
  for (unsigned a = 0; a < nu; ++a) {
    for (unsigned b = a + 1; b < nu; ++b) {
      EXPECT_NEAR(linkage_disequilibrium(nu, x, a, b), 0.0, 1e-14);
    }
  }
}

TEST(Marginals, QuasispeciesCloudShowsPositiveLinkage) {
  // Around a single peak, mutations co-occur less than independence would
  // predict of the marginals... in fact the double mutant is *over*
  // represented relative to p_i p_j because both singles are rare while the
  // cloud is centred on the master: D > 0.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto r = solvers::solve(model, landscape);
  ASSERT_TRUE(r.converged);
  const double d = linkage_disequilibrium(nu, r.concentrations, 0, 1);
  EXPECT_GT(d, 0.0);
  const double rho = site_correlation(nu, r.concentrations, 0, 1);
  EXPECT_GT(rho, 0.0);
  EXPECT_LT(rho, 1.0);
}

TEST(Marginals, KroneckerImplicitMatchesExplicit) {
  // The factor-by-factor marginal of a Kronecker result must equal the
  // explicit marginal of the expanded vector, for masks inside one group
  // and spanning groups.
  const auto model = core::MutationModel::uniform(9, 0.04);
  Xoshiro256 rng(9);
  std::vector<std::vector<double>> factors;
  for (unsigned g = 0; g < 3; ++g) {
    std::vector<double> f(8);
    for (double& v : f) v = rng.uniform(0.5, 2.0);
    factors.push_back(std::move(f));
  }
  const core::KroneckerLandscape landscape(std::move(factors));
  const auto kron = solvers::solve_kronecker(model, landscape);
  const auto full = kron.expand();

  for (seq_t mask : {seq_t{0b000000001}, seq_t{0b000000110}, seq_t{0b000101000},
                     seq_t{0b100100100}, seq_t{0b111111111}}) {
    const auto implicit = kron.marginal_distribution(mask);
    const auto explicit_m = marginal_distribution(9, full, mask);
    ASSERT_EQ(implicit.size(), explicit_m.size()) << "mask=" << mask;
    for (std::size_t c = 0; c < implicit.size(); ++c) {
      EXPECT_NEAR(implicit[c], explicit_m[c], 1e-13) << "mask=" << mask;
    }
  }
}

TEST(Marginals, KroneckerMarginalWorksAtHugeNu) {
  // nu = 60: marginal of three far-apart positions without touching 2^60.
  const auto model = core::MutationModel::uniform(60, 0.01);
  Xoshiro256 rng(10);
  std::vector<std::vector<double>> factors;
  for (unsigned g = 0; g < 10; ++g) {
    std::vector<double> f(64);
    for (double& v : f) v = rng.uniform(0.5, 2.0);
    factors.push_back(std::move(f));
  }
  const core::KroneckerLandscape landscape(std::move(factors));
  const auto kron = solvers::solve_kronecker(model, landscape);

  const seq_t mask = (seq_t{1} << 0) | (seq_t{1} << 31) | (seq_t{1} << 59);
  const auto marginal = kron.marginal_distribution(mask);
  ASSERT_EQ(marginal.size(), 8u);
  double total = 0.0;
  for (double v : marginal) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Marginals, RejectBadMasks) {
  std::vector<double> x(16, 1.0 / 16.0);
  EXPECT_THROW(marginal_distribution(4, x, 0), precondition_error);
  EXPECT_THROW(marginal_distribution(4, x, 1u << 4), precondition_error);
  EXPECT_THROW(linkage_disequilibrium(4, x, 1, 1), precondition_error);
  EXPECT_THROW(linkage_disequilibrium(4, x, 0, 4), precondition_error);
  // Monomorphic site: correlation undefined.
  std::vector<double> mono(16, 0.0);
  mono[0] = 1.0;
  EXPECT_THROW(site_correlation(4, mono, 0, 1), precondition_error);
}

}  // namespace
}  // namespace qs::analysis
