// Property-based (parameterised) sweeps over the model's invariants.
//
// Each suite sweeps a grid of (nu, p) or seeds and asserts a structural
// invariant from the paper: column stochasticity, the spectral law
// (1-2p)^k, Perron positivity, the error-class closure of Lemma 2, and the
// exactness of the fast products.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_classes.hpp"
#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "core/smvp.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/rng.hpp"
#include "transforms/fwht.hpp"

namespace qs {
namespace {

struct ModelParam {
  unsigned nu;
  double p;
};

std::string model_param_name(const ::testing::TestParamInfo<ModelParam>& info) {
  return "nu" + std::to_string(info.param.nu) + "_p" +
         std::to_string(static_cast<int>(info.param.p * 1000));
}

class MutationMatrixProperty : public ::testing::TestWithParam<ModelParam> {};

TEST_P(MutationMatrixProperty, ColumnStochasticAndSymmetric) {
  const auto [nu, p] = GetParam();
  const auto q = core::build_q_dense(core::MutationModel::uniform(nu, p));
  EXPECT_LT(q.max_column_sum_deviation(), 1e-12);
  EXPECT_TRUE(q.is_symmetric(1e-15));
}

TEST_P(MutationMatrixProperty, EntriesArePositiveProbabilities) {
  const auto [nu, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  for (seq_t i = 0; i < model.dimension(); ++i) {
    for (seq_t j = 0; j < model.dimension(); ++j) {
      const double q = model.entry(i, j);
      ASSERT_GT(q, 0.0);
      ASSERT_LE(q, 1.0);
    }
  }
}

TEST_P(MutationMatrixProperty, FmmpMatchesDenseOnRandomVectors) {
  const auto [nu, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu * 1000 + 1);
  const core::FmmpOperator fmmp(model, landscape);
  const core::SmvpOperator smvp(model, landscape);
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  Xoshiro256 rng(nu);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> x(n), y1(n), y2(n);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    fmmp.apply(x, y1);
    smvp.apply(x, y2);
    ASSERT_LT(linalg::max_abs_diff(y1, y2), 1e-12);
  }
}

TEST_P(MutationMatrixProperty, SpectralLawHoldsThroughTheButterfly) {
  // Apply Q to the w-th Walsh function and read off the eigenvalue.
  const auto [nu, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  for (seq_t w : {seq_t{0}, seq_t{1}, seq_t{3}, n - 1}) {
    std::vector<double> v(n);
    for (seq_t i = 0; i < n; ++i) {
      v[i] = (hamming_weight(i & w) % 2 == 0) ? 1.0 : -1.0;  // Walsh function
    }
    const auto before = v;
    model.apply(v);
    const double lambda = std::pow(1.0 - 2.0 * p, hamming_weight(w));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(v[i], lambda * before[i], 1e-12)
          << "w=" << w << " i=" << i;
    }
  }
}

TEST_P(MutationMatrixProperty, PerronPositivityOfQuasispecies) {
  const auto [nu, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu * 31 + 7);
  const core::FmmpOperator op(model, landscape);
  const auto r = solvers::power_iteration(op, solvers::landscape_start(landscape));
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.eigenvalue, 0.0);
  for (double x : r.eigenvector) ASSERT_GT(x, 0.0);  // strictly positive
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MutationMatrixProperty,
    ::testing::Values(ModelParam{2, 0.01}, ModelParam{2, 0.25}, ModelParam{3, 0.1},
                      ModelParam{4, 0.05}, ModelParam{5, 0.02}, ModelParam{6, 0.15},
                      ModelParam{7, 0.4}, ModelParam{8, 0.01}, ModelParam{8, 0.49}),
    model_param_name);

class ErrorClassClosure : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ErrorClassClosure, LemmaTwoWMapsClassVectorsToClassVectors) {
  // Lemma 2: for an error-class landscape, W maps error-class vectors to
  // error-class vectors.
  const auto [nu, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  Xoshiro256 rng(nu * 7 + static_cast<unsigned>(p * 100));
  std::vector<double> phi(nu + 1), reps(nu + 1);
  for (auto& v : phi) v = rng.uniform(0.5, 3.0);
  for (auto& v : reps) v = rng.uniform(0.0, 1.0);
  const auto landscape = core::ErrorClassLandscape::from_values(nu, phi).expand();

  const auto x = solvers::expand_representatives(nu, reps);
  const core::FmmpOperator op(model, landscape);
  std::vector<double> y(x.size());
  op.apply(x, y);

  // y must be constant on every error class.
  std::vector<double> class_rep(nu + 1, -1.0);
  for (seq_t i = 0; i < y.size(); ++i) {
    const unsigned k = hamming_weight(i);
    if (class_rep[k] < 0.0) {
      class_rep[k] = y[i];
    } else {
      ASSERT_NEAR(y[i], class_rep[k], 1e-12 * std::abs(class_rep[k]) + 1e-15);
    }
  }
}

TEST_P(ErrorClassClosure, ReducedIterationMatchesFullIteration) {
  // One reduced step Q_Gamma diag(phi) v must equal the class representatives
  // of one full step W (expand v).
  const auto [nu, p] = GetParam();
  Xoshiro256 rng(nu * 13 + 1);
  std::vector<double> phi(nu + 1), reps(nu + 1);
  for (auto& v : phi) v = rng.uniform(0.5, 3.0);
  for (auto& v : reps) v = rng.uniform(0.1, 1.0);

  const auto q_gamma = solvers::reduced_mutation_matrix(nu, p);
  std::vector<double> reduced_next(nu + 1, 0.0);
  for (unsigned d = 0; d <= nu; ++d) {
    for (unsigned k = 0; k <= nu; ++k) {
      reduced_next[d] += q_gamma(d, k) * phi[k] * reps[k];
    }
  }

  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::ErrorClassLandscape::from_values(nu, phi).expand();
  const auto x = solvers::expand_representatives(nu, reps);
  const core::FmmpOperator op(model, landscape);
  std::vector<double> y(x.size());
  op.apply(x, y);

  for (unsigned d = 0; d <= nu; ++d) {
    const seq_t rep_index = (seq_t{1} << d) - 1;
    ASSERT_NEAR(y[rep_index], reduced_next[d], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ErrorClassClosure,
                         ::testing::Values(ModelParam{4, 0.05}, ModelParam{6, 0.02},
                                           ModelParam{8, 0.1}, ModelParam{10, 0.3}),
                         model_param_name);

class FwhtProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FwhtProperty, InvolutionAtEveryLength) {
  const unsigned nu = GetParam();
  const std::size_t n = std::size_t{1} << nu;
  std::vector<double> v(n), orig(n);
  Xoshiro256 rng(nu + 99);
  for (std::size_t i = 0; i < n; ++i) v[i] = orig[i] = rng.uniform(-1.0, 1.0);
  transforms::fwht_normalized(v);
  transforms::fwht_normalized(v);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(v[i], orig[i], 1e-12);
}

TEST_P(FwhtProperty, DiagonalisesQ) {
  // fwht(Q v) must equal Lambda fwht(v) entrywise.
  const unsigned nu = GetParam();
  const double p = 0.07;
  const auto model = core::MutationModel::uniform(nu, p);
  const std::size_t n = std::size_t{1} << nu;
  std::vector<double> v(n);
  Xoshiro256 rng(nu + 5);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);

  std::vector<double> qv = v;
  model.apply(qv);
  transforms::fwht(qv);

  transforms::fwht(v);
  for (seq_t w = 0; w < n; ++w) {
    const double lambda = std::pow(1.0 - 2.0 * p, hamming_weight(w));
    ASSERT_NEAR(qv[w], lambda * v[w], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FwhtProperty, ::testing::Values(1u, 2u, 4u, 7u, 10u),
                         [](const auto& info) {
                           return "nu" + std::to_string(info.param);
                         });

class LandscapeSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LandscapeSeedProperty, SolverInvariantsAcrossRandomLandscapes) {
  const std::uint64_t seed = GetParam();
  const unsigned nu = 8;
  const double p = 0.02;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, seed);
  const core::FmmpOperator op(model, landscape);
  solvers::PowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);
  const auto r = solvers::power_iteration(op, solvers::landscape_start(landscape), opts);
  ASSERT_TRUE(r.converged);

  // lambda_0 bounded by the paper's norm bounds (Section 3).
  EXPECT_LE(r.eigenvalue, landscape.max_fitness() + 1e-12);
  EXPECT_GE(r.eigenvalue,
            std::pow(1.0 - 2.0 * p, nu) * landscape.min_fitness() - 1e-12);
  // Concentrations form a distribution.
  EXPECT_NEAR(linalg::norm1(std::span<const double>(r.eigenvector)), 1.0, 1e-12);
  // Residual honoured.
  EXPECT_LE(r.residual, opts.tolerance);
  // The master sequence (fittest) carries the single largest concentration.
  seq_t argmax = 0;
  for (seq_t i = 1; i < r.eigenvector.size(); ++i) {
    if (r.eigenvector[i] > r.eigenvector[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandscapeSeedProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace qs
