// Unit tests for the fast Walsh-Hadamard transform.
#include "transforms/fwht.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::transforms {
namespace {

TEST(Fwht, HadamardOrder2) {
  std::vector<double> v{1.0, 2.0};
  fwht(v);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

TEST(Fwht, HadamardOrder4KnownResult) {
  // H4 * (1, 0, 0, 0) = first column of H4 = all ones.
  std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  fwht(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Fwht, MatchesExplicitHadamardEntrywise) {
  // H_{i,j} = (-1)^{popcount(i & j)}; verify the transform against the
  // definition on a random vector for nu = 5.
  const std::size_t n = 32;
  std::vector<double> v(n), expected(n, 0.0);
  Xoshiro256 rng(4);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const int sign = (std::popcount(i & j) % 2 == 0) ? 1 : -1;
      expected[i] += sign * v[j];
    }
  }
  fwht(v);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], expected[i], 1e-12);
}

TEST(Fwht, InvolutionUpToN) {
  for (unsigned nu : {1u, 3u, 6u, 10u}) {
    const std::size_t n = std::size_t{1} << nu;
    std::vector<double> v(n), orig(n);
    Xoshiro256 rng(nu);
    for (std::size_t i = 0; i < n; ++i) v[i] = orig[i] = rng.uniform(-1.0, 1.0);
    fwht(v);
    fwht(v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(v[i], static_cast<double>(n) * orig[i], 1e-10 * n);
    }
  }
}

TEST(Fwht, NormalizedIsInvolutary) {
  const std::size_t n = 256;
  std::vector<double> v(n), orig(n);
  Xoshiro256 rng(8);
  for (std::size_t i = 0; i < n; ++i) v[i] = orig[i] = rng.uniform(-1.0, 1.0);
  fwht_normalized(v);
  fwht_normalized(v);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], orig[i], 1e-13);
}

TEST(Fwht, NormalizedPreservesTwoNorm) {
  const std::size_t n = 128;
  std::vector<double> v(n);
  Xoshiro256 rng(9);
  double norm2 = 0.0;
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
    norm2 += x * x;
  }
  fwht_normalized(v);
  double after = 0.0;
  for (double x : v) after += x * x;
  EXPECT_NEAR(after, norm2, 1e-12);
}

TEST(Fwht, Linearity) {
  const std::size_t n = 64;
  std::vector<double> a(n), b(n), sum(n);
  Xoshiro256 rng(10);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  fwht(a);
  fwht(b);
  fwht(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sum[i], 2.0 * a[i] + 3.0 * b[i], 1e-11);
  }
}

TEST(Fwht, TrivialLengthOneIsIdentity) {
  std::vector<double> v{3.5};
  fwht(v);
  EXPECT_DOUBLE_EQ(v[0], 3.5);
}

TEST(Fwht, RejectsNonPowerOfTwo) {
  std::vector<double> v(3);
  EXPECT_THROW(fwht(v), qs::precondition_error);
  std::vector<double> empty;
  EXPECT_THROW(fwht(empty), qs::precondition_error);
}

}  // namespace
}  // namespace qs::transforms
