// The live-introspection plane end to end: a daemon under real load answers
// STATS with nonzero solve-latency quantiles (the acceptance criterion for
// the telemetry PR), replies echo the request's trace id through the socket
// round trip, and the text exposition renders/parses losslessly.  In trace
// builds, one client solve against the in-process daemon leaves client,
// queue, and server spans sharing a single trace id in the span rings.
#include "service/stats.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace qs::service {
namespace {

namespace fs = std::filesystem;

SolveRequest quick_request(double peak = 8.0) {
  SolveRequest request;
  request.nu = 6;
  request.landscape = LandscapeKind::single_peak;
  request.param0 = peak;
  request.param1 = 1.0;
  request.p = 0.02;
  request.tolerance = 1e-10;
  request.max_iterations = 100000;
  return request;
}

/// Daemon on a private pid-keyed socket; histograms are reset around each
/// test so latency assertions see only this test's load.
class ServiceStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_histograms();
    socket_path_ = fs::temp_directory_path() /
                   ("qs_stats_test_" + std::to_string(::getpid()) + ".sock");
    config_.socket_path = socket_path_;
  }
  void TearDown() override {
    obs::reset_histograms();
    std::error_code ec;
    fs::remove(socket_path_, ec);
  }

  fs::path socket_path_;
  SocketServerConfig config_;
};

/// deliver() fulfills the promise before bumping completed_, so a snapshot
/// taken right after solve() returns can be one behind — wait it out.
void wait_for_completed(SolverService& service, std::uint64_t n) {
  for (int i = 0; i < 2000 && service.completed() < n; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

double must(const std::string& text, const std::string& metric) {
  const std::optional<double> v = stats_value(text, metric);
  EXPECT_TRUE(v.has_value()) << metric << " missing from:\n" << text;
  return v.value_or(-1.0);
}

TEST_F(ServiceStatsTest, DaemonUnderLoadReportsNonzeroSolveLatencies) {
  SocketServer server(config_);
  server.start();
  Client client(socket_path_);

  // Real load: four distinct scenarios (fresh solves) and four repeats
  // (cache hits), so queue, cache, and solve histograms all populate.
  for (const double peak : {6.0, 7.0, 8.0, 9.0, 6.0, 7.0, 8.0, 9.0}) {
    const SolveReply reply = client.solve(quick_request(peak));
    ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;
  }

  wait_for_completed(server.service(), 8);
  const std::string text = client.stats();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.rfind("# qs_serve live stats", 0), 0u) << text;

  EXPECT_GE(must(text, "qs_uptime_seconds"), 0.0);
  EXPECT_GE(must(text, "qs_connections_total"), 1.0);
  EXPECT_GE(must(text, "qs_completed_total"), 8.0);
  EXPECT_GE(must(text, "qs_queue_total{event=\"accepted\"}"), 8.0);
  EXPECT_GE(must(text, "qs_cache_total{event=\"hits\"}"), 1.0);
  EXPECT_GE(must(text, "qs_cache_total{event=\"misses\"}"), 4.0);
  EXPECT_GE(must(text, "qs_requests_total{landscape=\"single-peak\"}"), 8.0);

  // The acceptance bar: nonzero p50/p99 solve latency from a daemon under
  // load, through the same text a scraper or qs_client --stats would see.
  EXPECT_GE(must(text, "qs_latency_seconds{op=\"service.solve\",stat=\"count\"}"),
            4.0);
  EXPECT_GT(must(text, "qs_latency_seconds{op=\"service.solve\",stat=\"p50\"}"),
            0.0);
  EXPECT_GT(must(text, "qs_latency_seconds{op=\"service.solve\",stat=\"p99\"}"),
            0.0);
  EXPECT_GT(must(text, "qs_latency_seconds{op=\"queue.wait\",stat=\"count\"}"),
            0.0);
  EXPECT_GT(
      must(text, "qs_latency_seconds{op=\"service.cache_lookup\",stat=\"count\"}"),
      0.0);
  server.stop();
}

TEST_F(ServiceStatsTest, StatsNeverEnterTheAdmissionQueue) {
  // A daemon whose queue admits nothing still answers STATS: the frame is
  // served by the connection thread, not a worker.
  config_.service.queue_capacity = 1;
  config_.service.workers = 1;
  SocketServer server(config_);
  server.start();
  Client client(socket_path_);
  const std::string text = client.stats();
  EXPECT_GE(must(text, "qs_uptime_seconds"), 0.0);
  EXPECT_EQ(must(text, "qs_completed_total"), 0.0);
  server.stop();
}

TEST_F(ServiceStatsTest, ReplyEchoesTheRequestTraceIdThroughTheSocket) {
  SocketServer server(config_);
  server.start();
  Client client(socket_path_);

  // Explicit id survives the wire round trip (works in span-less builds —
  // the trace fields ride the always-present protocol tail).
  SolveRequest tagged = quick_request();
  tagged.trace_id = 424242;
  const SolveReply reply = client.solve(tagged);
  ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;
  EXPECT_EQ(reply.trace_id, 424242u);

  // Untagged requests get a minted id from the client, never zero.
  const SolveReply minted = client.solve(quick_request(7.5));
  ASSERT_EQ(minted.status, StatusCode::ok) << minted.message;
  EXPECT_NE(minted.trace_id, 0u);
  server.stop();
}

TEST_F(ServiceStatsTest, OneSolveLeavesOneConnectedTraceInTheRings) {
  if (!obs::compiled_in()) {
    GTEST_SKIP() << "span layer compiled out (QS_ENABLE_TRACING=OFF)";
  }
  obs::reset();
  obs::set_enabled(true);

  SocketServer server(config_);
  server.start();
  Client client(socket_path_);
  SolveRequest tagged = quick_request(6.5);
  tagged.trace_id = 0x7E57ull;
  const SolveReply reply = client.solve(tagged);
  server.stop();
  obs::set_enabled(false);
  ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;

  // Client and daemon share this process's rings, so the whole journey is
  // visible: the client request span, the queue-wait and end-to-end
  // request spans, and the batch span must all carry 0x7E57.
  bool client_span = false, request_span = false;
  bool queue_span = false, batch_span = false;
  for (const obs::SpanRecord& s : obs::snapshot_spans()) {
    const std::string name(s.name);
    if (name == "client.solve" && s.trace_id == 0x7E57ull) client_span = true;
    if (name == "service.request" && s.trace_id == 0x7E57ull) request_span = true;
    if (name == "service.queue_wait" && s.trace_id == 0x7E57ull) queue_span = true;
    if (name == "service.batch" && s.trace_id == 0x7E57ull) batch_span = true;
  }
  EXPECT_TRUE(client_span);
  EXPECT_TRUE(request_span);
  EXPECT_TRUE(queue_span);
  EXPECT_TRUE(batch_span);
}

TEST(StatsExposition, RenderAndLookupRoundTrip) {
  ServiceStatsSnapshot snap;
  snap.uptime_seconds = 12.5;
  snap.connections = 3;
  snap.queue_depth = 2;
  snap.queue.accepted = 40;
  snap.queue.rejected_overload = 1;
  snap.cache.hits = 10;
  snap.cache.misses = 5;
  snap.completed = 38;
  snap.request_mix = {30, 6, 4, 0};
  obs::HistogramSummary hist;
  hist.name = "service.solve";
  hist.count = 15;
  hist.sum = 0.3;
  hist.p50 = 0.015;
  hist.p90 = 0.04;
  hist.p99 = 0.05;
  hist.max = 0.06;
  snap.histograms.push_back(hist);
  obs::HistogramSummary ratio;
  ratio.name = "solver.residual_decay";
  ratio.count = 100;
  ratio.sum = 91.0;
  ratio.p50 = 0.91;
  ratio.p90 = 0.95;
  ratio.p99 = 0.99;
  ratio.max = 1.02;
  snap.histograms.push_back(ratio);

  const std::string text = render_stats_text(snap);
  EXPECT_EQ(text.rfind("# ", 0), 0u) << "exposition must lead with a comment";
  EXPECT_EQ(stats_value(text, "qs_uptime_seconds"), 12.5);
  EXPECT_EQ(stats_value(text, "qs_connections_total"), 3.0);
  EXPECT_EQ(stats_value(text, "qs_queue_depth"), 2.0);
  EXPECT_EQ(stats_value(text, "qs_queue_total{event=\"accepted\"}"), 40.0);
  EXPECT_EQ(stats_value(text, "qs_queue_total{event=\"rejected_overload\"}"), 1.0);
  EXPECT_EQ(stats_value(text, "qs_cache_total{event=\"hits\"}"), 10.0);
  EXPECT_EQ(stats_value(text, "qs_requests_total{landscape=\"single-peak\"}"),
            30.0);
  EXPECT_EQ(stats_value(text, "qs_requests_total{landscape=\"flat\"}"), 0.0);
  EXPECT_EQ(
      stats_value(text, "qs_latency_seconds{op=\"service.solve\",stat=\"p50\"}"),
      0.015);
  EXPECT_EQ(
      stats_value(text, "qs_latency_seconds{op=\"service.solve\",stat=\"count\"}"),
      15.0);
  // Ratio-valued histograms render under qs_ratio, not qs_latency_seconds.
  EXPECT_EQ(
      stats_value(text, "qs_ratio{op=\"solver.residual_decay\",stat=\"p50\"}"),
      0.91);
  EXPECT_FALSE(
      stats_value(text,
                  "qs_latency_seconds{op=\"solver.residual_decay\",stat=\"p50\"}")
          .has_value());

  // Lookups are exact-spelling: absent metrics and garbage return nullopt.
  EXPECT_FALSE(stats_value(text, "qs_no_such_metric").has_value());
  EXPECT_FALSE(stats_value("", "qs_uptime_seconds").has_value());
  EXPECT_FALSE(stats_value("qs_uptime_seconds not-a-number\n",
                           "qs_uptime_seconds")
                   .has_value());
}

TEST(StatsExposition, ServiceSnapshotCarriesLiveCountersAndMix) {
  obs::reset_histograms();
  SolverService service;
  const SolveReply first = service.solve(quick_request());
  ASSERT_EQ(first.status, StatusCode::ok) << first.message;
  const SolveReply again = service.solve(quick_request());
  ASSERT_EQ(again.status, StatusCode::ok) << again.message;
  EXPECT_TRUE(again.cache_hit);
  wait_for_completed(service, 2);

  const ServiceStatsSnapshot snap = service.stats_snapshot();
  EXPECT_GT(snap.uptime_seconds, 0.0);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_GE(snap.queue.accepted, 2u);
  EXPECT_GE(snap.cache.hits, 1u);
  EXPECT_EQ(snap.request_mix[0], 2u);  // single_peak
  EXPECT_EQ(snap.request_mix[1] + snap.request_mix[2] + snap.request_mix[3], 0u);
  bool solve_hist = false;
  for (const obs::HistogramSummary& h : snap.histograms) {
    if (h.name == "service.solve") {
      solve_hist = true;
      EXPECT_GE(h.count, 1u);
      EXPECT_GT(h.p50, 0.0);
    }
  }
  EXPECT_TRUE(solve_hist);
  service.shutdown();
  obs::reset_histograms();
}

}  // namespace
}  // namespace qs::service
