// Tests for obs::Histogram (src/obs/histogram.hpp): log-binned quantile
// accuracy against a sorted-sample oracle, lock-free shard merging under
// concurrent recording (the TSan target), the registry's overflow fallback,
// and the schema-version-2 metrics JSON round trip including backward
// compatibility with schema-1 files.
//
// The histogram is always compiled (unlike the span layer), so every test
// here runs identically in default and trace builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace qs::obs {
namespace {

/// Nearest-rank quantile of a sorted sample — the oracle the binned
/// estimate must land near.
double oracle_quantile(std::vector<double> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

/// With kBinsPerOctave sub-bins per power of two, a bin spans a ratio of
/// 2^(1/kBinsPerOctave); the midpoint estimate is within half that, but
/// nearest-rank rounding at bin edges can add the other half.
constexpr double kBinRatio = 1.189207115002721;  // 2^(1/4)

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_histograms(); }
  void TearDown() override { reset_histograms(); }
};

TEST_F(HistogramTest, QuantilesTrackASortedSampleOracle) {
  Histogram& h = histogram("hist_test.quantiles");
  std::vector<double> sample;
  // Deterministic log-uniform-ish spread over ~6 decades.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double unit = static_cast<double>(state >> 11) / 9007199254740992.0;
    const double v = std::exp2(unit * 20.0 - 14.0);  // 2^-14 .. 2^6
    sample.push_back(v);
    h.record(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, sample.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double oracle = oracle_quantile(sample, q);
    const double est = snap.quantile(q);
    EXPECT_LE(est, oracle * kBinRatio) << "q=" << q;
    EXPECT_GE(est, oracle / kBinRatio) << "q=" << q;
  }
  // max is exact, not binned.
  EXPECT_EQ(snap.max, *std::max_element(sample.begin(), sample.end()));
}

TEST_F(HistogramTest, SingleValueDistributionPinsEveryQuantile) {
  Histogram& h = histogram("hist_test.single");
  for (int i = 0; i < 100; ++i) h.record(0.25);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.max, 0.25);
  // The estimate is capped by the exact max and bounded by the bin ratio.
  EXPECT_LE(snap.quantile(0.5), 0.25);
  EXPECT_GE(snap.quantile(0.5), 0.25 / kBinRatio);
  EXPECT_DOUBLE_EQ(snap.sum, 25.0);
}

TEST_F(HistogramTest, EmptyAndDegenerateInputsAreSafe) {
  Histogram& h = histogram("hist_test.empty");
  const HistogramSnapshot empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  h.record(0.0);                     // non-positive: lands in the first bin
  h.record(-1.0);
  h.record(std::nan(""));            // non-finite: dropped entirely
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
}

TEST_F(HistogramTest, RecordNsConvertsToSeconds) {
  Histogram& h = histogram("hist_test.ns");
  h.record_ns(1500000);  // 1.5 ms
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.max, 0.0015);
}

TEST_F(HistogramTest, ConcurrentRecordingMergesEveryShardExactly) {
  // The TSan target: many threads hammer one histogram through the
  // relaxed-atomic shards while another takes snapshots mid-flight.
  Histogram& h = histogram("hist_test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(0.001 * static_cast<double>(1 + ((t + i) % 7)));
      }
    });
  }
  // Mid-flight snapshots must be internally sane (monotone count, no tear
  // into nonsense), even though they race with the recorders.
  for (int probe = 0; probe < 50; ++probe) {
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_LE(snap.count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  for (std::thread& w : workers) w.join();

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t binned = 0;
  for (const std::uint64_t b : snap.bins) binned += b;
  EXPECT_EQ(binned, snap.count);
  EXPECT_DOUBLE_EQ(snap.max, 0.007);
}

TEST_F(HistogramTest, RegistryReturnsTheSameSlotForTheSameName) {
  Histogram& a = histogram("hist_test.registry");
  Histogram& b = histogram("hist_test.registry");
  EXPECT_EQ(&a, &b);
  a.record(1.0);
  EXPECT_EQ(b.snapshot().count, 1u);

  const auto named = snapshot_histograms();
  bool found = false;
  for (const auto& n : named) {
    if (std::string(n.name) == "hist_test.registry") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HistogramTest, MetricsJsonV2RoundTripsHistogramSummaries) {
  // The recorder is process-global and earlier tests in this binary leave
  // values behind; reset first (which also clears histogram samples), then
  // record.
  auto& m = metrics();
  m.reset();
  Histogram& h = histogram("hist_test.roundtrip");
  for (int i = 1; i <= 1000; ++i) h.record(1e-4 * i);

  m.set_info("tool", "hist_test");
  m.set_value("nu", 12.0);
  m.record_residual(0.5);

  std::ostringstream out;
  write_metrics_json(out, m.snapshot());
  std::istringstream in(out.str());
  MetricsSnapshot loaded;
  int schema = 0;
  ASSERT_TRUE(read_metrics_json(in, loaded, &schema)) << out.str();
  EXPECT_EQ(schema, 2);

  const HistogramSummary* found = nullptr;
  for (const HistogramSummary& s : loaded.histograms) {
    if (s.name == "hist_test.roundtrip") found = &s;
  }
  ASSERT_NE(found, nullptr) << out.str();
  const HistogramSummary direct = summarize("hist_test.roundtrip",
                                            h.snapshot());
  EXPECT_EQ(found->count, direct.count);
  EXPECT_NEAR(found->sum, direct.sum, 1e-12 * direct.sum);
  EXPECT_NEAR(found->p50, direct.p50, 1e-12);
  EXPECT_NEAR(found->p99, direct.p99, 1e-12);
  EXPECT_NEAR(found->max, direct.max, 1e-12);
  EXPECT_EQ(loaded.residual_count, 1u);
  ASSERT_EQ(loaded.values.size(), 1u);
  EXPECT_EQ(loaded.values.front().second, 12.0);
}

TEST_F(HistogramTest, SchemaV1FilesStillLoadWithEmptyHistograms) {
  // A file written by the previous release: no "histograms" object.
  const std::string v1 = R"({
  "schema_version": 1,
  "tracing_compiled_in": false,
  "dropped_spans": 0,
  "info": {"solver": "power"},
  "values": {"nu": 10},
  "residuals": {"count": 2, "tail": [0.5, 0.25]},
  "phases": [],
  "counters": {}
})";
  std::istringstream in(v1);
  MetricsSnapshot loaded;
  int schema = 0;
  ASSERT_TRUE(read_metrics_json(in, loaded, &schema));
  EXPECT_EQ(schema, 1);
  EXPECT_TRUE(loaded.histograms.empty());
  ASSERT_EQ(loaded.info.size(), 1u);
  EXPECT_EQ(loaded.info.front().second, "power");
  EXPECT_EQ(loaded.residual_count, 2u);
  ASSERT_EQ(loaded.residual_tail.size(), 2u);
  EXPECT_EQ(loaded.residual_tail[1], 0.25);

  // Unknown future schemas are refused, not misread.
  std::istringstream future(R"({"schema_version": 99})");
  MetricsSnapshot ignored;
  EXPECT_FALSE(read_metrics_json(future, ignored, nullptr));
}

TEST_F(HistogramTest, ResetHistogramsClearsCountsButKeepsRegistration) {
  Histogram& h = histogram("hist_test.reset");
  h.record(1.0);
  ASSERT_EQ(h.snapshot().count, 1u);
  reset_histograms();
  EXPECT_EQ(h.snapshot().count, 0u);
  h.record(2.0);
  EXPECT_EQ(h.snapshot().count, 1u);
}

}  // namespace
}  // namespace qs::obs
