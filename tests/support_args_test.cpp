// Unit tests for the command-line argument parser.
#include "support/args.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace qs {
namespace {

ArgParser parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(ArgParser, KeyValuePairs) {
  const auto args = parse({"prog", "--nu", "16", "--p", "0.01"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_TRUE(args.has("nu"));
  EXPECT_EQ(args.get("nu", ""), "16");
  EXPECT_EQ(args.get_long("nu", 0, 1, 100), 16);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0, 0.0, 0.5), 0.01);
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = parse({"prog", "--landscape=random", "--seed=42"});
  EXPECT_EQ(args.get("landscape", ""), "random");
  EXPECT_EQ(args.get_long("seed", 0, 0, 1000), 42);
}

TEST(ArgParser, BareFlags) {
  const auto args = parse({"prog", "--reduced", "--parallel", "--nu", "8"});
  EXPECT_TRUE(args.has("reduced"));
  EXPECT_TRUE(args.has("parallel"));
  EXPECT_FALSE(args.has("serial"));
  EXPECT_EQ(args.get_long("nu", 0, 1, 100), 8);
}

TEST(ArgParser, FlagFollowedByOptionIsNotConsumed) {
  // "--reduced --nu 8": --reduced must not swallow "--nu".
  const auto args = parse({"prog", "--reduced", "--nu", "8"});
  EXPECT_EQ(args.get("reduced", "missing"), "");
  EXPECT_EQ(args.get_long("nu", 0, 1, 100), 8);
}

TEST(ArgParser, PositionalArguments) {
  const auto args = parse({"prog", "input.qs", "--nu", "4", "output.qs"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.qs");
  EXPECT_EQ(args.positional()[1], "output.qs");
}

TEST(ArgParser, DefaultsWhenAbsent) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5, 0.0, 10.0), 2.5);
  EXPECT_EQ(args.get_long("missing", 7, 0, 10), 7);
}

TEST(ArgParser, NumericValidation) {
  const auto args = parse({"prog", "--p", "abc", "--nu", "200"});
  EXPECT_THROW(args.get_double("p", 0.0, 0.0, 1.0), precondition_error);
  EXPECT_THROW(args.get_long("nu", 0, 1, 100), precondition_error);  // range
}

TEST(ArgParser, ProvidedOptionNames) {
  const auto args = parse({"prog", "--a", "1", "--b=2", "--c"});
  const auto names = args.provided_options();
  EXPECT_EQ(names.size(), 3u);
}

}  // namespace
}  // namespace qs
