// Unit tests for the replicator-mutator ODE and its integrators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "ode/integrators.hpp"
#include "ode/replicator.hpp"
#include "solvers/power_iteration.hpp"
#include "support/contracts.hpp"

namespace qs::ode {
namespace {

TEST(ReplicatorODE, DerivativeConservesTotalMass) {
  // sum_i dx_i/dt = 0 on the simplex (column stochasticity of Q).
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.04);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 1);
  const ReplicatorODE ode(model, landscape);

  auto x = ode.uniform_start();
  x[5] += 0.01;  // perturb inside the simplex
  linalg::normalize1(x);
  std::vector<double> dx(x.size());
  ode.derivative(x, dx);
  EXPECT_NEAR(linalg::sum(dx), 0.0, 1e-13);
}

TEST(ReplicatorODE, MeanFitnessIsPhi) {
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 2);
  const ReplicatorODE ode(model, landscape);
  const auto x = ode.master_start();
  std::vector<double> dx(x.size());
  const double phi = ode.derivative(x, dx);
  EXPECT_NEAR(phi, landscape.value(0), 1e-14);  // only x_0 is populated
}

TEST(ReplicatorODE, QuasispeciesIsAFixedPoint) {
  // The dominant eigenvector of W must make dx/dt vanish.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const core::FmmpOperator op(model, landscape);
  const auto eig =
      solvers::power_iteration(op, solvers::landscape_start(landscape));
  ASSERT_TRUE(eig.converged);

  const ReplicatorODE ode(model, landscape);
  std::vector<double> dx(eig.eigenvector.size());
  const double phi = ode.derivative(eig.eigenvector, dx);
  EXPECT_NEAR(phi, eig.eigenvalue, 1e-10);  // Phi at the fixed point = lambda_0
  EXPECT_LT(linalg::norm_inf(dx), 1e-10);
}

TEST(Rk4, PreservesSimplexAndMovesDownhill) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.05);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const ReplicatorODE ode(model, landscape);
  auto x = ode.uniform_start();
  for (int s = 0; s < 100; ++s) rk4_step(ode, x, 0.05);
  EXPECT_NEAR(linalg::sum(std::span<const double>(x)), 1.0, 1e-12);
  for (double v : x) EXPECT_GE(v, 0.0);
  // Selection concentrates mass on the master sequence.
  EXPECT_GT(x[0], 1.0 / 64.0);
}

TEST(IntegrateToStationary, ConvergesToEigenvector) {
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 4);

  const core::FmmpOperator op(model, landscape);
  const auto eig =
      solvers::power_iteration(op, solvers::landscape_start(landscape));
  ASSERT_TRUE(eig.converged);

  const ReplicatorODE ode(model, landscape);
  auto x = ode.master_start();
  StationaryOptions opts;
  opts.derivative_tol = 1e-11;
  const auto r = integrate_to_stationary(ode, x, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.mean_fitness, eig.eigenvalue, 1e-8);
  EXPECT_LT(linalg::max_abs_diff(x, eig.eigenvector), 1e-7);
}

TEST(IntegrateToStationary, FixedStepAgreesWithAdaptive) {
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 0.04);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const ReplicatorODE ode(model, landscape);

  auto x_adaptive = ode.uniform_start();
  StationaryOptions adaptive;
  adaptive.derivative_tol = 1e-10;
  const auto ra = integrate_to_stationary(ode, x_adaptive, adaptive);
  ASSERT_TRUE(ra.converged);

  auto x_fixed = ode.uniform_start();
  StationaryOptions fixed;
  fixed.adaptive = false;
  fixed.dt = 0.05;
  fixed.derivative_tol = 1e-10;
  const auto rf = integrate_to_stationary(ode, x_fixed, fixed);
  ASSERT_TRUE(rf.converged);

  EXPECT_NEAR(ra.mean_fitness, rf.mean_fitness, 1e-8);
  EXPECT_LT(linalg::max_abs_diff(x_adaptive, x_fixed), 1e-7);
}

TEST(Rkf45, TakesLargerStepsNearEquilibrium) {
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const ReplicatorODE ode(model, landscape);
  auto x = ode.uniform_start();
  double dt = 1e-3;
  AdaptiveOptions opts;
  double first = 0.0;
  for (int s = 0; s < 200; ++s) {
    const double taken = rkf45_step(ode, x, dt, opts);
    if (s == 0) first = taken;
  }
  // The controller must have grown the step well beyond the initial one.
  EXPECT_GT(dt, 5.0 * first);
}

TEST(Integrators, RejectNonPositiveStep) {
  const auto model = core::MutationModel::uniform(3, 0.1);
  const auto landscape = core::Landscape::flat(3, 1.0);
  const ReplicatorODE ode(model, landscape);
  auto x = ode.uniform_start();
  EXPECT_THROW(integrate_fixed(ode, x, 0.0, 1), precondition_error);
  double dt = -1.0;
  EXPECT_THROW(rkf45_step(ode, x, dt), precondition_error);
}

TEST(ReplicatorODE, RejectsMismatchedLandscape) {
  const auto model = core::MutationModel::uniform(3, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  EXPECT_THROW(ReplicatorODE(model, landscape), precondition_error);
}

}  // namespace
}  // namespace qs::ode
