// Unit tests for the A-letter alphabet reduction.
#include "solvers/reduced_alphabet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rna/alphabet.hpp"
#include "rna/rna_model.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(ReducedAlphabetMatrix, RowsSumToOne) {
  for (unsigned alphabet : {2u, 4u, 20u}) {
    const auto q = reduced_alphabet_mutation_matrix(12, alphabet, 0.05);
    for (std::size_t d = 0; d <= 12; ++d) {
      double s = 0.0;
      for (std::size_t k = 0; k <= 12; ++k) s += q(d, k);
      EXPECT_NEAR(s, 1.0, 1e-12) << "A=" << alphabet << " d=" << d;
    }
  }
}

TEST(ReducedAlphabetMatrix, BinaryCaseMatchesBinaryReduction) {
  // A = 2 must reproduce the Section 5.1 binary matrix entry for entry.
  const unsigned nu = 10;
  const double p = 0.03;
  const auto binary = reduced_mutation_matrix(nu, p);
  const auto general = reduced_alphabet_mutation_matrix(nu, 2, p);
  EXPECT_LT(binary.max_abs_distance(general), 1e-13);
}

TEST(ReducedAlphabetMatrix, TotalFlowIsSymmetric) {
  // |Gamma_d| Q(d,k) == |Gamma_k| Q(k,d) with |Gamma_k| = C(L,k)(A-1)^k.
  const unsigned length = 9;
  const unsigned alphabet = 4;
  const auto q = reduced_alphabet_mutation_matrix(length, alphabet, 0.06);
  auto log_card = [&](unsigned k) {
    return std::lgamma(length + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(length - k + 1.0) +
           k * std::log(static_cast<double>(alphabet - 1));
  };
  for (unsigned d = 0; d <= length; ++d) {
    for (unsigned k = d + 1; k <= length; ++k) {
      const double lhs = std::exp(log_card(d)) * q(d, k);
      const double rhs = std::exp(log_card(k)) * q(k, d);
      EXPECT_NEAR(lhs, rhs, 1e-12 * std::max(lhs, 1e-300));
    }
  }
}

TEST(ReducedAlphabetMatrix, RejectsBadArguments) {
  EXPECT_THROW(reduced_alphabet_mutation_matrix(0, 4, 0.1), precondition_error);
  EXPECT_THROW(reduced_alphabet_mutation_matrix(5, 1, 0.1), precondition_error);
  EXPECT_THROW(reduced_alphabet_mutation_matrix(5, 4, 0.0), precondition_error);
  EXPECT_THROW(reduced_alphabet_mutation_matrix(5, 4, 0.8), precondition_error);
  EXPECT_NO_THROW(reduced_alphabet_mutation_matrix(5, 4, 0.75));  // = (A-1)/A
}

TEST(ReducedAlphabet, BinarySolveMatchesBinaryReducedSolver) {
  const unsigned nu = 14;
  const double p = 0.02;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto binary = solve_reduced(p, ecl);
  const auto general = solve_reduced_alphabet(p, 2, ecl);
  EXPECT_NEAR(binary.eigenvalue, general.eigenvalue, 1e-10);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(binary.class_concentrations[k], general.class_concentrations[k],
                1e-10);
  }
}

TEST(ReducedAlphabet, RnaSolveMatchesFullJukesCantorSolver) {
  // L = 4 bases (256 species): reduced vs the full grouped-Kronecker solve
  // on the base-class single-peak landscape.
  const unsigned bases = 4;
  const double mu = 0.05;
  std::vector<double> phi_values(bases + 1, 1.0);
  phi_values[0] = 3.0;
  const auto phi = core::ErrorClassLandscape::from_values(bases, phi_values);

  const auto reduced = solve_reduced_alphabet(mu, 4, phi);

  const auto model = rna::uniform_rna_model(bases, rna::jukes_cantor(mu));
  const auto landscape = rna::rna_base_class_landscape("AAAA", phi_values);
  const auto full = solve(model, landscape);
  ASSERT_TRUE(full.converged);

  EXPECT_NEAR(reduced.eigenvalue, full.eigenvalue, 1e-9 * full.eigenvalue);
  const auto full_classes =
      rna::base_class_concentrations(bases, full.concentrations, 0);
  for (unsigned k = 0; k <= bases; ++k) {
    EXPECT_NEAR(reduced.class_concentrations[k], full_classes[k], 1e-8)
        << "k=" << k;
  }
}

TEST(ReducedAlphabet, ClassConcentrationsFormDistribution) {
  const auto phi = core::ErrorClassLandscape::single_peak(30, 4.0, 1.0);
  const auto r = solve_reduced_alphabet(0.01, 4, phi);
  double s = 0.0;
  for (double c : r.class_concentrations) {
    EXPECT_GE(c, 0.0);
    s += c;
  }
  EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_GT(r.class_concentrations[0], 0.2);  // ordered phase at mu = 0.01
}

TEST(ReducedAlphabet, RandomReplicationGivesUniformClasses) {
  // mu = (A-1)/A: every letter equally likely next generation.
  const unsigned length = 10;
  const unsigned alphabet = 4;
  const auto phi = core::ErrorClassLandscape::single_peak(length, 2.0, 1.0);
  const auto r = solve_reduced_alphabet(0.75, alphabet, phi);
  const double total = std::pow(4.0, 10.0);
  for (unsigned k = 0; k <= length; ++k) {
    const double card = std::exp(std::lgamma(11.0) - std::lgamma(k + 1.0) -
                                 std::lgamma(11.0 - k) +
                                 k * std::log(3.0));
    EXPECT_NEAR(r.class_concentrations[k], card / total, 1e-9) << k;
  }
}

TEST(ReducedAlphabet, ErrorThresholdScalesWithAlphabet) {
  // At the same per-position error rate, a larger alphabet reverts less
  // often (mu/(A-1)), so the master class holds *less* mass near the
  // threshold... actually back-mutation is weaker, making the ordered
  // phase easier to destroy; verify the ordering empirically.
  const unsigned length = 20;
  const auto phi = core::ErrorClassLandscape::single_peak(length, 2.0, 1.0);
  const double mu = 0.03;
  const auto binary = solve_reduced_alphabet(mu, 2, phi);
  const auto rna = solve_reduced_alphabet(mu, 4, phi);
  EXPECT_GT(binary.class_concentrations[0], rna.class_concentrations[0]);
}

TEST(ReducedAlphabet, ScalesToLongProteins) {
  // 20-letter alphabet (amino acids), length 300: far beyond any explicit
  // method (20^300 states), solved in milliseconds.
  const unsigned length = 300;
  const auto phi = core::ErrorClassLandscape::single_peak(length, 5.0, 1.0);
  const auto r = solve_reduced_alphabet(0.001, 20, phi);
  EXPECT_TRUE(std::isfinite(r.eigenvalue));
  EXPECT_GT(r.eigenvalue, 1.0);
  double s = 0.0;
  for (double c : r.class_concentrations) s += c;
  EXPECT_NEAR(s, 1.0, 1e-10);
  EXPECT_GT(r.class_concentrations[0], 0.3);
}

}  // namespace
}  // namespace qs::solvers
