// Unit tests for dense matrices and the LU factorisation.
#include "linalg/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::linalg {
namespace {

DenseMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  DenseMatrix m(n, n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

TEST(DenseMatrix, IdentityMultiplyIsNoOp) {
  const DenseMatrix eye = DenseMatrix::identity(4);
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4);
  eye.multiply(x, y);
  EXPECT_EQ(x, y);
}

TEST(DenseMatrix, KnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  std::vector<double> x{1.0, 1.0};
  std::vector<double> y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DenseMatrix, TransposedMultiplyMatchesExplicitTranspose) {
  const DenseMatrix a = random_matrix(6, 1);
  const DenseMatrix at = a.transposed();
  std::vector<double> x(6), y1(6), y2(6);
  Xoshiro256 rng(2);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  a.multiply_transposed(x, y1);
  at.multiply(x, y2);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(DenseMatrix, MatrixMatrixProductAssociatesWithVector) {
  const DenseMatrix a = random_matrix(5, 3);
  const DenseMatrix b = random_matrix(5, 4);
  const DenseMatrix ab = a.multiply(b);
  std::vector<double> x(5), bx(5), y1(5), y2(5);
  Xoshiro256 rng(5);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  b.multiply(x, bx);
  a.multiply(bx, y1);
  ab.multiply(x, y2);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(DenseMatrix, SymmetryCheck) {
  DenseMatrix s(2, 2);
  s(0, 0) = 1.0; s(0, 1) = 2.0; s(1, 0) = 2.0; s(1, 1) = 3.0;
  EXPECT_TRUE(s.is_symmetric(0.0));
  s(1, 0) = 2.1;
  EXPECT_FALSE(s.is_symmetric(1e-3));
  EXPECT_TRUE(s.is_symmetric(0.2));
}

TEST(DenseMatrix, ColumnSumDeviation) {
  DenseMatrix m(2, 2);
  m(0, 0) = 0.7; m(1, 0) = 0.3;  // column 0 sums to 1
  m(0, 1) = 0.5; m(1, 1) = 0.4;  // column 1 sums to 0.9
  EXPECT_NEAR(m.max_column_sum_deviation(), 0.1, 1e-15);
}

TEST(DenseMatrix, DistanceMeasures) {
  DenseMatrix a(2, 2);
  DenseMatrix b(2, 2);
  b(0, 1) = 3.0;
  b(1, 0) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_distance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs_distance(b), 4.0);
}

TEST(DenseMatrix, MultiplyRejectsAliasingAndMismatch) {
  DenseMatrix a(2, 2);
  std::vector<double> x{1.0, 2.0};
  EXPECT_THROW(a.multiply(x, x), qs::precondition_error);
  std::vector<double> y(3);
  EXPECT_THROW(a.multiply(x, y), qs::precondition_error);
}

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  LuFactorization lu(a);
  std::vector<double> b{5.0, 10.0};  // solution x = (1, 3)
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-14);
  EXPECT_NEAR(b[1], 3.0, 1e-14);
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const std::size_t n = 10;
    DenseMatrix a = random_matrix(n, seed);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well conditioned
    LuFactorization lu(a);
    std::vector<double> b(n), x(n), r(n);
    Xoshiro256 rng(seed + 100);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    x = b;
    lu.solve(x);
    a.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-12);
  }
}

TEST(Lu, DeterminantOfKnownMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-14);
}

TEST(Lu, RejectsSingularMatrix) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(LuFactorization lu(a), std::runtime_error);
}

TEST(Lu, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(LuFactorization lu(a), qs::precondition_error);
}

}  // namespace
}  // namespace qs::linalg
