// Unit tests for the population-genetics observables.
#include "analysis/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fmmp.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"

namespace qs::analysis {
namespace {

TEST(Statistics, ConsensusOfPointMassIsThatSequence) {
  std::vector<double> x(32, 0.0);
  x[0b10110] = 1.0;
  EXPECT_EQ(consensus_sequence(5, x), 0b10110u);
}

TEST(Statistics, ConsensusEqualsMasterBelowThreshold) {
  // Even with [Gamma_0] < 1/2 the positionwise majority stays the master.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto r = solvers::solve(model, landscape);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.concentrations[0], 0.5);  // master itself is a minority...
  EXPECT_EQ(consensus_sequence(nu, r.concentrations), 0u);  // ...yet consensus
}

TEST(Statistics, SiteFrequenciesOfKnownMixture) {
  // 50/50 mixture of 000 and 011: bit 0 and bit 1 at frequency 1/2.
  std::vector<double> x(8, 0.0);
  x[0b000] = 0.5;
  x[0b011] = 0.5;
  const auto freq = site_frequencies(3, x);
  EXPECT_DOUBLE_EQ(freq[0], 0.5);
  EXPECT_DOUBLE_EQ(freq[1], 0.5);
  EXPECT_DOUBLE_EQ(freq[2], 0.0);
}

TEST(Statistics, SiteFrequenciesSumMatchesMeanDistance) {
  // sum_k freq_k = mean Hamming distance from 0 (both count expected set bits).
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.05);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const auto r = solvers::solve(model, landscape);
  ASSERT_TRUE(r.converged);
  const auto freq = site_frequencies(nu, r.concentrations);
  double total = 0.0;
  for (double f : freq) total += f;
  EXPECT_NEAR(total, mean_hamming_distance(nu, r.concentrations), 1e-12);
}

TEST(Statistics, CloudRadiusGrowsWithErrorRate) {
  const unsigned nu = 10;
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  double previous = -1.0;
  for (double p : {0.005, 0.02, 0.05}) {
    const auto r = solvers::solve(core::MutationModel::uniform(nu, p), landscape);
    ASSERT_TRUE(r.converged);
    const double radius = mean_hamming_distance(nu, r.concentrations);
    EXPECT_GT(radius, previous);
    previous = radius;
  }
}

TEST(Statistics, UniformPopulationMoments) {
  // Uniform over 2^nu: mean distance nu/2, variance nu/4 (binomial).
  const unsigned nu = 12;
  std::vector<double> x(sequence_count(nu), 1.0 / sequence_count(nu));
  EXPECT_NEAR(mean_hamming_distance(nu, x), nu / 2.0, 1e-10);
  EXPECT_NEAR(hamming_distance_variance(nu, x), nu / 4.0, 1e-10);
}

TEST(Statistics, MeanFitnessAtStationarityEqualsLambda) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);
  const auto r = solvers::solve(model, landscape);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(mean_fitness(landscape, r.concentrations), r.eigenvalue, 1e-10);
}

TEST(Statistics, MutationalLoadIncreasesWithErrorRate) {
  const unsigned nu = 10;
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  double previous = -1.0;
  for (double p : {0.001, 0.01, 0.05}) {
    const auto r = solvers::solve(core::MutationModel::uniform(nu, p), landscape);
    ASSERT_TRUE(r.converged);
    const double load = mutational_load(landscape, r.concentrations);
    EXPECT_GT(load, previous);
    EXPECT_GE(load, 0.0);
    EXPECT_LT(load, 1.0);
    previous = load;
  }
}

TEST(Statistics, SelectionCoefficientsAverageToZero) {
  // Concentration-weighted mean of s_i is zero by construction.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const auto r = solvers::solve(model, landscape);
  ASSERT_TRUE(r.converged);
  const auto s = selection_coefficients(landscape, r.concentrations);
  double weighted = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) weighted += s[i] * r.concentrations[i];
  EXPECT_NEAR(weighted, 0.0, 1e-12);
  // The master (fittest) is favoured at stationarity.
  EXPECT_GT(s[0], 0.0);
}

TEST(Statistics, RejectBadDimensions) {
  std::vector<double> x(8, 0.125);
  EXPECT_THROW(site_frequencies(4, x), precondition_error);
  EXPECT_THROW(mean_hamming_distance(4, x), precondition_error);
  const auto landscape = core::Landscape::flat(4, 1.0);
  EXPECT_THROW(mean_fitness(landscape, x), precondition_error);
}

}  // namespace
}  // namespace qs::analysis
