// Unit tests for the high-level quasispecies solver facade.
#include "solvers/quasispecies_solver.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(Facade, GeneralAndReducedPathsAgreeOnErrorClassLandscape) {
  const unsigned nu = 9;
  const double p = 0.03;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);

  const auto reduced = solve(p, ecl);
  ASSERT_TRUE(reduced.converged);

  const auto model = core::MutationModel::uniform(nu, p);
  const auto full_landscape = ecl.expand();
  const auto general = solve(model, full_landscape);
  ASSERT_TRUE(general.converged);

  EXPECT_NEAR(reduced.eigenvalue, general.eigenvalue, 1e-9 * general.eigenvalue);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(reduced.class_concentrations[k], general.class_concentrations[k],
                1e-8);
  }
  ASSERT_EQ(reduced.concentrations.size(), general.concentrations.size());
  EXPECT_LT(linalg::max_abs_diff(reduced.concentrations, general.concentrations),
            1e-8);
}

TEST(Facade, AllMatvecKindsAgree) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);

  SolveOptions fmmp_opts;
  fmmp_opts.matvec = MatvecKind::fmmp;
  const auto fmmp = solve(model, landscape, fmmp_opts);

  SolveOptions xmvp_opts;
  xmvp_opts.matvec = MatvecKind::xmvp;
  xmvp_opts.xmvp_d_max = nu;  // exact
  const auto xmvp = solve(model, landscape, xmvp_opts);

  SolveOptions smvp_opts;
  smvp_opts.matvec = MatvecKind::smvp;
  const auto smvp = solve(model, landscape, smvp_opts);

  ASSERT_TRUE(fmmp.converged);
  ASSERT_TRUE(xmvp.converged);
  ASSERT_TRUE(smvp.converged);
  EXPECT_NEAR(fmmp.eigenvalue, smvp.eigenvalue, 1e-11);
  EXPECT_NEAR(xmvp.eigenvalue, smvp.eigenvalue, 1e-11);
  EXPECT_LT(linalg::max_abs_diff(fmmp.concentrations, smvp.concentrations), 1e-10);
  EXPECT_LT(linalg::max_abs_diff(xmvp.concentrations, smvp.concentrations), 1e-10);
}

TEST(Facade, FormulationsYieldTheSameConcentrations) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.04);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 4);

  SolveOptions right;
  right.formulation = core::Formulation::right;
  SolveOptions sym;
  sym.formulation = core::Formulation::symmetric;
  SolveOptions left;
  left.formulation = core::Formulation::left;

  const auto r = solve(model, landscape, right);
  const auto s = solve(model, landscape, sym);
  const auto l = solve(model, landscape, left);
  ASSERT_TRUE(r.converged && s.converged && l.converged);
  EXPECT_NEAR(r.eigenvalue, s.eigenvalue, 1e-10);
  EXPECT_NEAR(r.eigenvalue, l.eigenvalue, 1e-10);
  EXPECT_LT(linalg::max_abs_diff(r.concentrations, s.concentrations), 1e-9);
  EXPECT_LT(linalg::max_abs_diff(r.concentrations, l.concentrations), 1e-9);
}

TEST(Facade, ApproximateXmvpIsCloseButNotExact) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);

  SolveOptions exact_opts;
  const auto exact = solve(model, landscape, exact_opts);

  SolveOptions approx_opts;
  approx_opts.matvec = MatvecKind::xmvp;
  approx_opts.xmvp_d_max = 5;
  approx_opts.tolerance = 1e-10;  // the paper's tau for d = 5
  const auto approx = solve(model, landscape, approx_opts);

  ASSERT_TRUE(exact.converged);
  ASSERT_TRUE(approx.converged);
  EXPECT_NEAR(approx.eigenvalue, exact.eigenvalue, 1e-6);
  EXPECT_LT(linalg::max_abs_diff(approx.concentrations, exact.concentrations), 1e-6);
}

TEST(Facade, EngineOptionGivesSameAnswer) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 6);

  const auto serial = solve(model, landscape);
  SolveOptions engine_opts;
  engine_opts.engine = &parallel::parallel_engine();
  const auto parallel_result = solve(model, landscape, engine_opts);
  ASSERT_TRUE(serial.converged && parallel_result.converged);
  EXPECT_NEAR(serial.eigenvalue, parallel_result.eigenvalue, 1e-11);
  EXPECT_LT(
      linalg::max_abs_diff(serial.concentrations, parallel_result.concentrations),
      1e-10);
}

TEST(Facade, ShiftToggleDoesNotChangeTheAnswer) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.05);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  SolveOptions with;
  with.use_shift = true;
  SolveOptions without;
  without.use_shift = false;
  const auto a = solve(model, landscape, with);
  const auto b = solve(model, landscape, without);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_NEAR(a.eigenvalue, b.eigenvalue, 1e-11);
  EXPECT_LE(a.iterations, b.iterations);  // shift can only help
}

TEST(Facade, ClassConcentrationsSumToOne) {
  const auto model = core::MutationModel::uniform(10, 0.02);
  const auto landscape = core::Landscape::random(10, 5.0, 1.0, 8);
  const auto r = solve(model, landscape);
  ASSERT_TRUE(r.converged);
  double s = 0.0;
  for (double c : r.class_concentrations) s += c;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Facade, RejectsDimensionMismatch) {
  const auto model = core::MutationModel::uniform(5, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  EXPECT_THROW(solve(model, landscape), precondition_error);
}


TEST(Facade, SparseMatvecKindMatchesXmvp) {
  // The CSR materialisation and the implicit XOR product are the same
  // truncated matrix; through the facade they must produce the same solve.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 9);

  SolveOptions xmvp_opts;
  xmvp_opts.matvec = MatvecKind::xmvp;
  xmvp_opts.xmvp_d_max = nu;
  const auto via_xmvp = solve(model, landscape, xmvp_opts);

  SolveOptions sparse_opts;
  sparse_opts.matvec = MatvecKind::sparse;
  sparse_opts.xmvp_d_max = nu;
  const auto via_sparse = solve(model, landscape, sparse_opts);

  ASSERT_TRUE(via_xmvp.converged);
  ASSERT_TRUE(via_sparse.converged);
  EXPECT_NEAR(via_xmvp.eigenvalue, via_sparse.eigenvalue, 1e-11);
  EXPECT_LT(linalg::max_abs_diff(via_xmvp.concentrations, via_sparse.concentrations),
            1e-10);
}

TEST(Facade, SparseKindRejectsNonRightFormulations) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  SolveOptions opts;
  opts.matvec = MatvecKind::sparse;
  opts.formulation = core::Formulation::symmetric;
  EXPECT_THROW(solve(model, landscape, opts), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
