// Unit tests for the spectral-gap / deflated power iteration diagnostics.
#include "solvers/deflation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(SpectralGap, MatchesDenseSpectrumTopTwo) {
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);

  const auto gap = spectral_gap(model, landscape);

  const auto w = core::build_w_dense(model, landscape, core::Formulation::symmetric);
  const auto dense = linalg::jacobi_eigen(w);
  EXPECT_NEAR(gap.lambda0, dense.values[0], 1e-8);
  EXPECT_NEAR(gap.lambda1, dense.values[1], 1e-6);
  EXPECT_LT(gap.ratio(), 1.0);
}

TEST(SpectralGap, ShiftImprovesTheRatio) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);
  const auto gap = spectral_gap(model, landscape);
  const double mu = core::conservative_shift(model, landscape);
  EXPECT_LT(gap.shifted_ratio(mu), gap.ratio());
}

TEST(SpectralGap, PredictsPowerIterationCount) {
  // The predictor must land within ~25 % of the observed iteration count on
  // a well-separated problem.
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const auto gap = spectral_gap(model, landscape);

  const core::FmmpOperator op(model, landscape);
  PowerOptions opts;
  opts.tolerance = 1e-12;
  const auto run = power_iteration(op, landscape_start(landscape), opts);
  ASSERT_TRUE(run.converged);

  // Residual decades from the start's overlap is roughly the tolerance
  // decades; allow generous slack for the unknown starting error.
  const double predicted = SpectralGap::predicted_iterations(gap.ratio(), 12.0);
  EXPECT_GT(predicted, 0.5 * run.iterations);
  EXPECT_LT(predicted, 2.5 * run.iterations);
}

TEST(SpectralGap, FlatLandscapeHasKnownGap) {
  // W = c Q: lambda_0 = c, lambda_1 = c (1 - 2p).
  const unsigned nu = 6;
  const double p = 0.07;
  const double c = 3.0;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::flat(nu, c);
  const auto gap = spectral_gap(model, landscape);
  EXPECT_NEAR(gap.lambda0, c, 1e-9);
  EXPECT_NEAR(gap.lambda1, c * (1.0 - 2.0 * p), 1e-7);
}

TEST(SpectralGap, PredictedIterationsValidatesInput) {
  EXPECT_THROW(SpectralGap::predicted_iterations(1.5, 10.0), precondition_error);
  EXPECT_THROW(SpectralGap::predicted_iterations(0.5, -1.0), precondition_error);
  EXPECT_NEAR(SpectralGap::predicted_iterations(0.1, 10.0), 10.0, 1e-12);
}

TEST(SpectralGap, RejectsUnsupportedModels) {
  const auto asym = core::MutationModel::per_site(
      {transforms::Factor2::asymmetric(0.3, 0.1),
       transforms::Factor2::asymmetric(0.1, 0.1)});
  const auto landscape = core::Landscape::flat(2, 1.0);
  EXPECT_THROW(spectral_gap(asym, landscape), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
