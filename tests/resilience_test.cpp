// Checkpoint/resume resilience tests: an interrupted power iteration resumed
// from its periodic checkpoint reproduces the uninterrupted run bit for bit,
// and torn checkpoint files are rejected without losing the previous one.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "io/binary_io.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"
#include "testing/fault_injection.hpp"

namespace qs {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qs_resilience_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path path(const char* name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

TEST_F(ResilienceTest, KillAndResumeReproducesTheTrajectoryBitForBit) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 77);
  const core::FmmpOperator op(model, landscape);
  const auto start = solvers::landscape_start(landscape);

  // Reference: one uninterrupted serial run, tracing every residual check.
  std::map<unsigned, double> reference;
  solvers::PowerOptions ref_opts;
  ref_opts.residual_check_every = 1;
  ref_opts.on_residual = [&reference](unsigned it, double res) {
    reference[it] = res;
  };
  const auto full = solvers::power_iteration(op, start, ref_opts);
  ASSERT_TRUE(full.converged);
  ASSERT_GT(full.iterations, 25u) << "test needs a run long enough to interrupt";

  // "Killed" run: same configuration plus periodic checkpointing, hard
  // stopped at iteration 25 (the cap models the kill signal).
  solvers::PowerOptions first_leg = ref_opts;
  first_leg.on_residual = nullptr;
  first_leg.checkpoint_path = path("solve.ck");
  first_leg.checkpoint_every = 7;
  first_leg.max_iterations = 25;
  const auto partial = solvers::power_iteration(op, start, first_leg);
  EXPECT_FALSE(partial.converged);

  // The last periodic checkpoint before the kill is iteration 21.
  const auto ck = io::load_checkpoint(path("solve.ck"));
  ASSERT_EQ(ck.iteration, 21u);

  // Resume and trace: every residual check from iteration 22 onward must be
  // bit-identical to the uninterrupted run — same iterate, same arithmetic,
  // same stall-window state, no re-normalisation on the way in.
  std::map<unsigned, double> resumed_trace;
  solvers::PowerOptions second_leg = ref_opts;
  second_leg.on_residual = [&resumed_trace](unsigned it, double res) {
    resumed_trace[it] = res;
  };
  const auto resumed = solvers::resume_power_iteration(op, ck, second_leg);
  ASSERT_TRUE(resumed.converged);

  ASSERT_FALSE(resumed_trace.empty());
  EXPECT_EQ(resumed_trace.begin()->first, 22u);
  for (const auto& [it, res] : resumed_trace) {
    ASSERT_TRUE(reference.count(it)) << "iteration " << it;
    EXPECT_EQ(reference.at(it), res) << "iteration " << it;  // bitwise
  }
  // The terminal state matches bit for bit as well.
  EXPECT_EQ(resumed.iterations, full.iterations);
  EXPECT_EQ(resumed.eigenvalue, full.eigenvalue);
  EXPECT_EQ(resumed.residual, full.residual);
  ASSERT_EQ(resumed.eigenvector.size(), full.eigenvector.size());
  for (std::size_t i = 0; i < full.eigenvector.size(); ++i) {
    ASSERT_EQ(resumed.eigenvector[i], full.eigenvector[i]) << "entry " << i;
  }
}

TEST_F(ResilienceTest, TornCheckpointIsRejectedAndThePreviousOneSurvives) {
  // A crash mid-write can only ever leave a stale *.tmp sibling behind: the
  // destination is replaced atomically, so the previous checkpoint survives
  // any interruption.  Model the crash by hand-writing a half-finished tmp.
  io::SolverCheckpoint good;
  good.iteration = 42;
  good.eigenvalue = 1.5;
  good.eigenvector = {0.5, 0.5};
  io::save_checkpoint(path("c.qs"), good);

  {
    std::ofstream tmp(path("c.qs.tmp"), std::ios::binary);
    tmp << "partial garbage from a crashed writer";
  }
  const auto loaded = io::load_checkpoint(path("c.qs"));
  EXPECT_EQ(loaded.iteration, 42u);
  EXPECT_EQ(loaded.eigenvalue, 1.5);

  // And a checkpoint that *was* torn on disk (e.g. copied off a dying node)
  // is rejected at load instead of resuming from garbage.
  std::filesystem::copy_file(path("c.qs"), path("torn.qs"));
  std::filesystem::resize_file(path("torn.qs"),
                               std::filesystem::file_size(path("torn.qs")) - 8);
  EXPECT_THROW(io::load_checkpoint(path("torn.qs")), std::runtime_error);
  // The original is still loadable after the failed read of its copy.
  EXPECT_EQ(io::load_checkpoint(path("c.qs")).iteration, 42u);
}

TEST_F(ResilienceTest, ResumeRejectsDimensionMismatch) {
  const auto model = core::MutationModel::uniform(6, 0.01);
  const auto landscape = core::Landscape::single_peak(6, 2.0, 1.0);
  const core::FmmpOperator op(model, landscape);
  io::SolverCheckpoint ck;
  ck.eigenvector.assign(16, 1.0 / 16.0);  // wrong: operator dimension is 64
  EXPECT_THROW(solvers::resume_power_iteration(op, ck), precondition_error);
}

TEST_F(ResilienceTest, ResumeRefusesAPoisonedCheckpoint) {
  const auto model = core::MutationModel::uniform(6, 0.01);
  const auto landscape = core::Landscape::single_peak(6, 2.0, 1.0);
  const core::FmmpOperator op(model, landscape);
  io::SolverCheckpoint ck;
  ck.iteration = 10;
  ck.eigenvector.assign(64, 1.0 / 64.0);
  ck.eigenvector[7] = std::numeric_limits<double>::infinity();
  const auto r = solvers::resume_power_iteration(op, ck);
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 10u);  // no products performed on garbage
}

TEST_F(ResilienceTest, FacadeFallsBackWhenTheCheckpointFileIsTorn) {
  // A transient NaN with a *corrupted* checkpoint on disk: the facade must
  // reject the torn file, fall back to the unshifted retry, and still
  // converge — never resume from garbage.
  const auto model = core::MutationModel::uniform(8, 0.01);
  const auto landscape = core::Landscape::single_peak(8, 2.0, 1.0);

  solvers::SolveOptions opts;
  opts.checkpoint_path = path("solve.ck");
  opts.checkpoint_every = 4;
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 10;
  struct Owning final : core::LinearOperator {
    std::unique_ptr<core::LinearOperator> held;
    testing::FaultInjectingOperator faulty;
    std::filesystem::path ck;
    Owning(std::unique_ptr<core::LinearOperator> op,
           testing::FaultInjectingOperator::Config cfg, std::filesystem::path p)
        : held(std::move(op)), faulty(*held, cfg), ck(std::move(p)) {}
    seq_t dimension() const override { return faulty.dimension(); }
    std::string_view name() const override { return faulty.name(); }
    void apply(std::span<const double> x, std::span<double> y) const override {
      faulty.apply(x, y);
      // Right after the poisoned product: tear the checkpoint on disk so the
      // recovery path finds a corrupt file.
      if (faulty.apply_count() == 10 && std::filesystem::exists(ck)) {
        std::filesystem::resize_file(ck, std::filesystem::file_size(ck) - 8);
      }
    }
  };
  const auto ck_path = opts.checkpoint_path;
  opts.wrap_operator = [cfg, ck_path](std::unique_ptr<core::LinearOperator> inner) {
    return std::unique_ptr<core::LinearOperator>(
        new Owning(std::move(inner), cfg, ck_path));
  };

  const auto r = solvers::solve(model, landscape, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::none);
  EXPECT_EQ(r.recovery_attempts, 1u);  // the unshifted retry, not the resume
}

}  // namespace
}  // namespace qs
