// Bitwise checkpoint/resume trajectories for the Krylov and block solvers.
//
// The iteration-driver contract (solvers/iteration_driver.hpp): a resumed
// run takes the checkpointed iterate verbatim, restores the stall-window
// accounting, and therefore reproduces the uninterrupted run's residual
// trajectory bit for bit on the serial backend.  resilience_test.cpp proves
// this for the power iteration through on-disk checkpoints; these tests
// prove it for Lanczos, Arnoldi, shift-invert, and block power through the
// in-memory checkpoint_sink seam: run an uninterrupted reference capturing
// every periodic checkpoint, resume from a mid-flight one, and compare every
// subsequent residual observation with EXPECT_EQ — no tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "io/binary_io.hpp"
#include "solvers/arnoldi.hpp"
#include "solvers/block_power.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/shift_invert.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

using ResidualTrace = std::map<unsigned, double>;

core::MutationModel test_model() { return core::MutationModel::uniform(10, 0.01); }
core::Landscape test_landscape() {
  return core::Landscape::random(10, 5.0, 1.0, 77);
}

// Entries of `trace` strictly after `iteration` — what a resume from that
// iteration's checkpoint must reproduce exactly.
ResidualTrace tail_after(const ResidualTrace& trace, unsigned iteration) {
  ResidualTrace tail;
  for (const auto& [it, res] : trace) {
    if (it > iteration) tail[it] = res;
  }
  return tail;
}

const io::SolverCheckpoint& checkpoint_at(
    const std::vector<io::SolverCheckpoint>& checkpoints, std::uint64_t iteration) {
  for (const auto& ck : checkpoints) {
    if (ck.iteration == iteration) return ck;
  }
  throw std::logic_error("no checkpoint captured at the requested iteration");
}

TEST(SolversResumeTest, LanczosResumeReproducesTheTrajectoryBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  // tolerance = 0 never converges, so the reference runs all 8 cycles and
  // the trajectory has a tail to compare.
  LanczosOptions options;
  options.tolerance = 0.0;
  options.basis_size = 4;
  options.max_restarts = 8;
  options.checkpoint_every = 2;

  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  ResidualTrace reference_trace;
  options.on_residual = [&](unsigned it, double res) { reference_trace[it] = res; };

  // The cycle loop is inclusive of max_restarts, so the reference performs
  // max_restarts + 1 driver iterations.
  const LanczosResult reference = lanczos_dominant_w(model, fitness, {}, options);
  ASSERT_EQ(reference.iterations, 9u);
  ASSERT_EQ(reference.failure, SolverFailure::none);
  ASSERT_EQ(checkpoints.size(), 4u);  // cycles 2, 4, 6, 8

  const io::SolverCheckpoint& mid = checkpoint_at(checkpoints, 4);
  EXPECT_EQ(mid.solver_kind, io::SolverKind::lanczos);

  LanczosOptions resume_options;
  resume_options.tolerance = 0.0;
  resume_options.basis_size = 4;
  resume_options.max_restarts = 8;
  ResidualTrace resumed_trace;
  resume_options.on_residual = [&](unsigned it, double res) {
    resumed_trace[it] = res;
  };

  const LanczosResult resumed =
      resume_lanczos_dominant_w(model, fitness, mid, resume_options);

  EXPECT_EQ(resumed_trace, tail_after(reference_trace, 4));
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.matvec_count, reference.matvec_count);
  EXPECT_EQ(resumed.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(resumed.residual, reference.residual);
  ASSERT_EQ(resumed.concentrations.size(), reference.concentrations.size());
  for (std::size_t i = 0; i < reference.concentrations.size(); ++i) {
    ASSERT_EQ(resumed.concentrations[i], reference.concentrations[i]) << i;
  }
}

TEST(SolversResumeTest, ArnoldiResumeReproducesTheTrajectoryBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  ArnoldiOptions options;
  options.tolerance = 0.0;
  options.basis_size = 4;
  options.max_restarts = 6;
  options.checkpoint_every = 2;

  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  ResidualTrace reference_trace;
  options.on_residual = [&](unsigned it, double res) { reference_trace[it] = res; };

  const ArnoldiResult reference = arnoldi_dominant_w(model, fitness, {}, options);
  ASSERT_EQ(reference.iterations, 7u);  // max_restarts + 1 cycles
  ASSERT_EQ(reference.failure, SolverFailure::none);
  ASSERT_EQ(checkpoints.size(), 3u);  // cycles 2, 4, 6

  const io::SolverCheckpoint& mid = checkpoint_at(checkpoints, 2);
  EXPECT_EQ(mid.solver_kind, io::SolverKind::arnoldi);

  ArnoldiOptions resume_options;
  resume_options.tolerance = 0.0;
  resume_options.basis_size = 4;
  resume_options.max_restarts = 6;
  ResidualTrace resumed_trace;
  resume_options.on_residual = [&](unsigned it, double res) {
    resumed_trace[it] = res;
  };

  const ArnoldiResult resumed =
      resume_arnoldi_dominant_w(model, fitness, mid, resume_options);

  EXPECT_EQ(resumed_trace, tail_after(reference_trace, 2));
  EXPECT_EQ(resumed.iterations, reference.iterations);
  EXPECT_EQ(resumed.matvec_count, reference.matvec_count);
  EXPECT_EQ(resumed.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(resumed.residual, reference.residual);
}

TEST(SolversResumeTest, InverseIterationResumeReproducesTheTrajectoryBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  // mu = 0 targets the smallest eigenpair through plain CG; the fixed shift
  // is restored from the checkpoint's aux field on resume.
  ShiftInvertOptions options;
  options.tolerance = 0.0;
  options.max_outer_iterations = 8;
  options.checkpoint_every = 3;

  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  ResidualTrace reference_trace;
  options.on_residual = [&](unsigned it, double res) { reference_trace[it] = res; };

  const WEigenResult reference =
      inverse_iteration_w(model, fitness, /*mu=*/0.0, {}, options);
  ASSERT_EQ(reference.failure, SolverFailure::none);
  ASSERT_GE(reference.outer_iterations, 6u);

  const io::SolverCheckpoint& mid = checkpoint_at(checkpoints, 3);
  EXPECT_EQ(mid.solver_kind, io::SolverKind::shift_invert);
  EXPECT_EQ(mid.aux, 0.0);  // the fixed shift rides in aux

  ShiftInvertOptions resume_options;
  resume_options.tolerance = 0.0;
  resume_options.max_outer_iterations = 8;
  ResidualTrace resumed_trace;
  resume_options.on_residual = [&](unsigned it, double res) {
    resumed_trace[it] = res;
  };

  const WEigenResult resumed =
      resume_inverse_iteration_w(model, fitness, mid, resume_options);

  EXPECT_EQ(resumed_trace, tail_after(reference_trace, 3));
  EXPECT_EQ(resumed.outer_iterations, reference.outer_iterations);
  EXPECT_EQ(resumed.inner_iterations_total, reference.inner_iterations_total);
  EXPECT_EQ(resumed.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(resumed.residual, reference.residual);
}

TEST(SolversResumeTest, RayleighQuotientResumeReproducesTheTrajectoryBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  ShiftInvertOptions options;
  options.tolerance = 0.0;
  options.max_outer_iterations = 6;
  options.checkpoint_every = 2;

  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  ResidualTrace reference_trace;
  options.on_residual = [&](unsigned it, double res) { reference_trace[it] = res; };

  const WEigenResult reference =
      rayleigh_quotient_iteration_w(model, fitness, {}, options);
  ASSERT_EQ(reference.failure, SolverFailure::none);

  const io::SolverCheckpoint& mid = checkpoint_at(checkpoints, 2);
  EXPECT_EQ(mid.solver_kind, io::SolverKind::shift_invert);

  ShiftInvertOptions resume_options;
  resume_options.tolerance = 0.0;
  resume_options.max_outer_iterations = 6;
  ResidualTrace resumed_trace;
  resume_options.on_residual = [&](unsigned it, double res) {
    resumed_trace[it] = res;
  };

  // The resume skips the power warm-up: the checkpoint's aux holds the next
  // Rayleigh shift, and the cold run updates the shift every step too.
  const WEigenResult resumed =
      resume_rayleigh_quotient_iteration_w(model, fitness, mid, resume_options);

  EXPECT_EQ(resumed_trace, tail_after(reference_trace, 2));
  EXPECT_EQ(resumed.outer_iterations, reference.outer_iterations);
  EXPECT_EQ(resumed.inner_iterations_total, reference.inner_iterations_total);
  EXPECT_EQ(resumed.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(resumed.residual, reference.residual);
}

TEST(SolversResumeTest, BlockPowerResumeReproducesTheTrajectoryBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  BlockPowerOptions options;
  options.tolerance = 0.0;
  options.k = 2;
  options.block = 4;
  options.max_iterations = 12;
  options.checkpoint_every = 4;

  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  ResidualTrace reference_trace;
  options.on_residual = [&](unsigned it, double res) { reference_trace[it] = res; };

  const BlockPowerResult reference = top_k_spectrum(model, fitness, options);
  ASSERT_EQ(reference.iterations, 12u);
  ASSERT_EQ(reference.failure, SolverFailure::none);
  ASSERT_EQ(checkpoints.size(), 3u);  // panel products 4, 8, 12

  const io::SolverCheckpoint& mid = checkpoint_at(checkpoints, 4);
  EXPECT_EQ(mid.solver_kind, io::SolverKind::block_power);
  EXPECT_EQ(mid.aux, 4.0);  // the panel width rides in aux
  EXPECT_EQ(mid.eigenvector.size(), model.dimension() * 4);

  BlockPowerOptions resume_options;
  resume_options.tolerance = 0.0;
  resume_options.k = 2;
  resume_options.block = 4;
  resume_options.max_iterations = 12;
  ResidualTrace resumed_trace;
  resume_options.on_residual = [&](unsigned it, double res) {
    resumed_trace[it] = res;
  };

  const BlockPowerResult resumed =
      resume_top_k_spectrum(model, fitness, mid, resume_options);

  EXPECT_EQ(resumed_trace, tail_after(reference_trace, 4));
  EXPECT_EQ(resumed.iterations, reference.iterations);
  ASSERT_EQ(resumed.eigenvalues.size(), reference.eigenvalues.size());
  for (std::size_t j = 0; j < reference.eigenvalues.size(); ++j) {
    EXPECT_EQ(resumed.eigenvalues[j], reference.eigenvalues[j]) << j;
    EXPECT_EQ(resumed.residuals[j], reference.residuals[j]) << j;
  }
  ASSERT_EQ(resumed.eigenvectors.size(), reference.eigenvectors.size());
  for (std::size_t j = 0; j < reference.eigenvectors.size(); ++j) {
    ASSERT_EQ(resumed.eigenvectors[j], reference.eigenvectors[j]) << j;
  }
}

TEST(SolversResumeTest, ResumeRefusesACheckpointFromADifferentSolver) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  LanczosOptions options;
  options.tolerance = 0.0;
  options.basis_size = 4;
  options.max_restarts = 2;
  options.checkpoint_every = 1;
  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  lanczos_dominant_w(model, fitness, {}, options);
  ASSERT_FALSE(checkpoints.empty());

  try {
    resume_arnoldi_dominant_w(model, fitness, checkpoints.front(), {});
    FAIL() << "resume accepted a checkpoint written by another solver";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lanczos"), std::string::npos) << what;
    EXPECT_NE(what.find("arnoldi"), std::string::npos) << what;
  }
}

TEST(SolversResumeTest, BlockPowerResumeRefusesAMismatchedPanelWidth) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  BlockPowerOptions options;
  options.tolerance = 0.0;
  options.k = 2;
  options.block = 4;
  options.max_iterations = 2;
  options.checkpoint_every = 1;
  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  top_k_spectrum(model, fitness, options);
  ASSERT_FALSE(checkpoints.empty());

  BlockPowerOptions wider = options;
  wider.checkpoint_sink = nullptr;
  wider.block = 8;
  EXPECT_THROW(resume_top_k_spectrum(model, fitness, checkpoints.front(), wider),
               precondition_error);
}

TEST(SolversResumeTest, PoisonedCheckpointIsRefusedWithAStructuredFailure) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  LanczosOptions options;
  options.tolerance = 0.0;
  options.basis_size = 4;
  options.max_restarts = 2;
  options.checkpoint_every = 1;
  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  lanczos_dominant_w(model, fitness, {}, options);
  ASSERT_FALSE(checkpoints.empty());

  io::SolverCheckpoint poisoned = checkpoints.front();
  poisoned.eigenvector[3] = std::nan("");

  const LanczosResult resumed =
      resume_lanczos_dominant_w(model, fitness, poisoned, {});
  EXPECT_EQ(resumed.failure, SolverFailure::non_finite);
  EXPECT_FALSE(resumed.converged);
}

TEST(SolversResumeTest, AThrowingSinkDegradesDurabilityNotTheSolve) {
  const auto model = test_model();
  const auto fitness = test_landscape();

  LanczosOptions options;
  options.tolerance = 0.0;
  options.basis_size = 4;
  options.max_restarts = 6;

  const LanczosResult reference = lanczos_dominant_w(model, fitness, {}, options);

  options.checkpoint_every = 2;
  options.checkpoint_sink = [](const io::SolverCheckpoint&) {
    throw std::runtime_error("injected checkpoint I/O failure");
  };
  const LanczosResult damaged = lanczos_dominant_w(model, fitness, {}, options);

  EXPECT_EQ(damaged.checkpoint_failures, 3u);  // cycles 2, 4, 6
  EXPECT_EQ(damaged.failure, SolverFailure::none);
  EXPECT_EQ(damaged.iterations, reference.iterations);
  EXPECT_EQ(damaged.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(damaged.residual, reference.residual);
}

}  // namespace
}  // namespace qs::solvers
