// Counting global allocation hooks for the zero-allocation hot-path tests.
//
// Linked into the test binary only: every `operator new` bumps the counter
// read through support/alloc_counter.hpp, which lets a test pin down that a
// solver iteration (power loop through a warm core::Workspace) performs no
// heap allocations at all.  The overrides deliberately forward to plain
// malloc/free — no alignment tricks beyond what the standard requires — so
// they stay boring and obviously correct.

#include <cstdlib>
#include <new>

#include "support/alloc_counter.hpp"

namespace {

void* counted_alloc(std::size_t size) {
  qs::support::count_allocation();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  qs::support::count_allocation();
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  qs::support::count_allocation();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  qs::support::count_allocation();
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
