// Unit tests for the spectral operations on Q (Sections 2 and 3).
#include "core/spectral.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/explicit_q.hpp"
#include "core/site_process.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "support/binomial.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::core {
namespace {

TEST(Spectral, QEigenvaluesArePowersWithBinomialMultiplicities) {
  // Section 2: Q(nu) has eigenvalues (1-2p)^k with multiplicity C(nu, k).
  const unsigned nu = 6;
  const double p = 0.1;
  const auto model = MutationModel::uniform(nu, p);
  const auto q = build_q_dense(model);
  const auto eigen = linalg::jacobi_eigen(q);

  std::map<unsigned, unsigned> multiplicity;
  for (double lambda : eigen.values) {
    EXPECT_GT(lambda, 0.0);  // positive definite for p < 1/2
    // Match to the nearest power of (1 - 2p).
    const double k_real = std::log(lambda) / std::log(1.0 - 2.0 * p);
    const unsigned k = static_cast<unsigned>(std::lround(k_real));
    EXPECT_NEAR(lambda, std::pow(1.0 - 2.0 * p, k), 1e-12);
    ++multiplicity[k];
  }
  BinomialRow row(nu);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_EQ(multiplicity[k], row.exact(k)) << "k=" << k;
  }
}

TEST(Spectral, ApplyQSpectralMatchesButterfly) {
  const unsigned nu = 10;
  const auto model = MutationModel::uniform(nu, 0.07);
  const std::size_t n = 1024;
  std::vector<double> a(n), b(n);
  Xoshiro256 rng(2);
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = rng.uniform(-1.0, 1.0);
  model.apply(a);             // butterfly product
  apply_q_spectral(model, b); // FWHT-diagonalised product
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Spectral, ApplyQSpectralWorksForPerSiteSymmetric) {
  std::vector<transforms::Factor2> sites{uniform_site(0.02), uniform_site(0.1),
                                         uniform_site(0.3), uniform_site(0.25)};
  const auto model = MutationModel::per_site(sites);
  std::vector<double> a(16), b(16);
  Xoshiro256 rng(3);
  for (std::size_t i = 0; i < 16; ++i) a[i] = b[i] = rng.uniform(-1.0, 1.0);
  model.apply(a);
  apply_q_spectral(model, b);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(a[i], b[i], 1e-13);
}

TEST(Spectral, ShiftInvertComposedWithShiftIsIdentity) {
  // (Q - mu I)^{-1} applied after (Q - mu I) must restore the input.
  const unsigned nu = 8;
  const auto model = MutationModel::uniform(nu, 0.05);
  const double mu = 0.3;  // below lambda_min? No: any mu != eigenvalue works
  const std::size_t n = 256;
  std::vector<double> v(n), orig(n);
  Xoshiro256 rng(4);
  for (std::size_t i = 0; i < n; ++i) v[i] = orig[i] = rng.uniform(-1.0, 1.0);

  // v <- (Q - mu I) v.
  std::vector<double> qv = v;
  model.apply(qv);
  for (std::size_t i = 0; i < n; ++i) v[i] = qv[i] - mu * v[i];
  apply_q_shift_invert(model, mu, v);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], orig[i], 1e-10);
}

TEST(Spectral, ShiftInvertRejectsEigenvalueShift) {
  const auto model = MutationModel::uniform(4, 0.1);
  std::vector<double> v(16, 1.0);
  EXPECT_THROW(apply_q_shift_invert(model, 1.0, v), precondition_error);
  const double lam2 = std::pow(0.8, 2);
  EXPECT_THROW(apply_q_shift_invert(model, lam2, v), precondition_error);
}

TEST(Spectral, QMinEigenvalue) {
  const auto model = MutationModel::uniform(7, 0.12);
  EXPECT_NEAR(q_min_eigenvalue(model), std::pow(1.0 - 0.24, 7), 1e-15);
}

TEST(Spectral, ConservativeShiftIsBelowSmallestEigenvalueOfW) {
  // Section 3: mu = (1-2p)^nu f_min <= lambda_min(W).  Verify on a dense
  // symmetric-formulation spectrum.
  const unsigned nu = 6;
  const double p = 0.08;
  const auto model = MutationModel::uniform(nu, p);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 9);
  const double mu = conservative_shift(model, landscape);
  EXPECT_NEAR(mu, std::pow(1.0 - 2.0 * p, nu) * landscape.min_fitness(), 1e-15);

  const auto w_sym = build_w_dense(model, landscape, Formulation::symmetric);
  const auto eigen = linalg::jacobi_eigen(w_sym);
  const double lambda_min = eigen.values.back();
  EXPECT_GT(lambda_min, 0.0);       // W positive definite
  EXPECT_LE(mu, lambda_min + 1e-15);
}

TEST(Spectral, DominantUpperBoundHolds) {
  const unsigned nu = 6;
  const auto model = MutationModel::uniform(nu, 0.03);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 10);
  const auto w_sym = build_w_dense(model, landscape, Formulation::symmetric);
  const auto eigen = linalg::jacobi_eigen(w_sym);
  EXPECT_LE(eigen.values[0], dominant_upper_bound(landscape) + 1e-12);
}

TEST(Spectral, ErrorClassShiftMatchesExpandedShift) {
  const unsigned nu = 8;
  const auto model = MutationModel::uniform(nu, 0.06);
  const auto ecl = ErrorClassLandscape::linear(nu, 2.0, 1.0);
  EXPECT_NEAR(conservative_shift(model, ecl),
              conservative_shift(model, ecl.expand()), 1e-15);
}

TEST(Spectral, RejectsUnsupportedModels) {
  const auto grouped =
      MutationModel::grouped({coupled_single_flip_group(2, 0.2)});
  std::vector<double> v(4, 1.0);
  EXPECT_THROW(apply_q_spectral(grouped, v), precondition_error);
  EXPECT_THROW(q_min_eigenvalue(grouped), precondition_error);

  const auto asym = MutationModel::per_site(
      {transforms::Factor2::asymmetric(0.3, 0.1),
       transforms::Factor2::asymmetric(0.1, 0.1)});
  std::vector<double> v4(4, 1.0);
  EXPECT_THROW(apply_q_spectral(asym, v4), precondition_error);
}

}  // namespace
}  // namespace qs::core
