// Unit tests for the matrix-free Krylov solvers (CG and MINRES).
#include "linalg/krylov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::linalg {
namespace {

DenseMatrix random_spd(std::size_t n, std::uint64_t seed, double diag_boost) {
  DenseMatrix m(n, n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.uniform(-1.0, 1.0);
      m(j, i) = m(i, j);
    }
    m(i, i) += diag_boost;
  }
  return m;
}

ApplyFn dense_apply(const DenseMatrix& a) {
  return [&a](std::span<const double> x, std::span<double> y) { a.multiply(x, y); };
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  const std::size_t n = 40;
  const auto a = random_spd(n, 1, 5.0);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Xoshiro256 rng(2);
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  a.multiply(x_true, b);

  const auto r = conjugate_gradient(dense_apply(a), b, x);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

TEST(ConjugateGradient, ExactPreconditionerConvergesInOneIteration) {
  const std::size_t n = 20;
  const auto a = random_spd(n, 3, 4.0);
  const LuFactorization lu(a);
  ApplyFn inv = [&](std::span<const double> in, std::span<double> out) {
    copy(in, out);
    lu.solve(out);
  };
  std::vector<double> b(n), x(n, 0.0);
  Xoshiro256 rng(4);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto r = conjugate_gradient(dense_apply(a), b, x, {}, inv);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2u);
}

TEST(ConjugateGradient, PreconditionerReducesIterations) {
  // Diagonal (Jacobi) preconditioner on a badly scaled SPD matrix.
  const std::size_t n = 60;
  DenseMatrix a = random_spd(n, 5, 3.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double s = std::pow(10.0, static_cast<double>(i % 4));
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) *= s;
      a(j, i) *= s;
    }
  }
  std::vector<double> b(n), x0(n, 0.0), x1(n, 0.0);
  Xoshiro256 rng(6);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const auto plain = conjugate_gradient(dense_apply(a), b, x0);
  ApplyFn jacobi = [&](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] / a(i, i);
  };
  const auto preconditioned = conjugate_gradient(dense_apply(a), b, x1, {}, jacobi);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(preconditioned.converged);
  EXPECT_LT(preconditioned.iterations, plain.iterations);
  EXPECT_LT(max_abs_diff(x0, x1), 1e-6);
}

TEST(ConjugateGradient, ZeroRhsGivesZeroSolution) {
  const auto a = random_spd(10, 7, 3.0);
  std::vector<double> b(10, 0.0), x(10, 1.0);
  const auto r = conjugate_gradient(dense_apply(a), b, x);
  EXPECT_TRUE(r.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

TEST(ConjugateGradient, WarmStartHelps) {
  const std::size_t n = 30;
  const auto a = random_spd(n, 8, 4.0);
  std::vector<double> x_true(n), b(n);
  Xoshiro256 rng(9);
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  a.multiply(x_true, b);

  std::vector<double> cold(n, 0.0);
  const auto cold_result = conjugate_gradient(dense_apply(a), b, cold);
  std::vector<double> warm = x_true;
  warm[0] += 1e-6;
  const auto warm_result = conjugate_gradient(dense_apply(a), b, warm);
  ASSERT_TRUE(cold_result.converged);
  ASSERT_TRUE(warm_result.converged);
  EXPECT_LT(warm_result.iterations, cold_result.iterations);
}

TEST(Minres, SolvesIndefiniteSystem) {
  // Symmetric indefinite: shifted SPD with the shift inside the spectrum.
  const std::size_t n = 40;
  DenseMatrix a = random_spd(n, 10, 5.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= 5.0;  // mixes signs
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Xoshiro256 rng(11);
  for (double& v : x_true) v = rng.uniform(-1.0, 1.0);
  a.multiply(x_true, b);

  const auto r = minres(dense_apply(a), b, x, {1e-13, 2000});
  ASSERT_TRUE(r.converged);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-8);
}

TEST(Minres, AgreesWithCgOnSpd) {
  const std::size_t n = 30;
  const auto a = random_spd(n, 12, 4.0);
  std::vector<double> b(n), x_cg(n, 0.0), x_mr(n, 0.0);
  Xoshiro256 rng(13);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto rc = conjugate_gradient(dense_apply(a), b, x_cg);
  const auto rm = minres(dense_apply(a), b, x_mr);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rm.converged);
  EXPECT_LT(max_abs_diff(x_cg, x_mr), 1e-8);
}

TEST(Minres, ResidualEstimateMatchesTrueResidual) {
  const std::size_t n = 25;
  DenseMatrix a = random_spd(n, 14, 3.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= 2.0;
  std::vector<double> b(n), x(n, 0.0), r_vec(n);
  Xoshiro256 rng(15);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto r = minres(dense_apply(a), b, x, {1e-10, 2000});
  ASSERT_TRUE(r.converged);
  a.multiply(x, r_vec);
  for (std::size_t i = 0; i < n; ++i) r_vec[i] = b[i] - r_vec[i];
  const double true_rel = norm2(r_vec) / norm2(b);
  EXPECT_NEAR(true_rel, r.relative_residual, 1e-8);
}

TEST(Krylov, ReportNonConvergenceHonestly) {
  const auto a = random_spd(50, 16, 0.5);
  std::vector<double> b(50, 1.0), x(50, 0.0);
  KrylovOptions strict;
  strict.max_iterations = 2;
  strict.tolerance = 1e-15;
  EXPECT_FALSE(conjugate_gradient(dense_apply(a), b, x, strict).converged);
  std::vector<double> x2(50, 0.0);
  EXPECT_FALSE(minres(dense_apply(a), b, x2, strict).converged);
}

TEST(Krylov, RejectBadArguments) {
  std::vector<double> b(4, 1.0), x(3, 0.0);
  ApplyFn id = [](std::span<const double> in, std::span<double> out) {
    copy(in, out);
  };
  EXPECT_THROW(conjugate_gradient(id, b, x), qs::precondition_error);
  EXPECT_THROW(minres(id, b, x), qs::precondition_error);
  std::vector<double> x4(4, 0.0);
  EXPECT_THROW(conjugate_gradient(nullptr, b, x4), qs::precondition_error);
}

}  // namespace
}  // namespace qs::linalg
