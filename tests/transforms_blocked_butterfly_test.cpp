// Cross-backend equivalence tests for the cache-blocked banded butterfly:
// every engine path of MutationModel::apply (serial, openmp, thread_pool,
// and the blocked kernel at several tile sizes) must match the serial
// reference apply_butterfly to <= 1e-14, per-site asymmetric factors
// included.
#include "transforms/blocked_butterfly.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "parallel/thread_pool_backend.hpp"
#include "support/rng.hpp"
#include "transforms/butterfly.hpp"

namespace qs::transforms {
namespace {

constexpr double kTol = 1e-14;

std::vector<Factor2> asymmetric_factors(unsigned nu, std::uint64_t seed) {
  std::vector<Factor2> sites;
  sites.reserve(nu);
  Xoshiro256 rng(seed);
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(Factor2::asymmetric(rng.uniform(0.001, 0.4), rng.uniform(0.001, 0.4)));
  }
  return sites;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_near_all(const std::vector<double>& expected,
                     const std::vector<double>& actual, double tol) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], tol) << "index " << i;
  }
}

TEST(BlockedButterfly, AllBackendsMatchSerialReferenceAcrossNu) {
  const auto backends = {parallel::Backend::serial, parallel::Backend::openmp,
                         parallel::Backend::thread_pool};
  for (unsigned nu = 1; nu <= 14; ++nu) {
    const auto model = core::MutationModel::per_site(asymmetric_factors(nu, nu));
    const std::size_t n = std::size_t{1} << nu;
    const auto x = random_vector(n, 100 + nu);

    std::vector<double> reference = x;
    apply_butterfly(reference, model.site_factors());

    for (parallel::Backend kind : backends) {
      const auto engine = parallel::make_engine(kind);
      std::vector<double> v = x;
      model.apply(v, *engine);
      expect_near_all(reference, v, kTol);
    }
  }
}

TEST(BlockedButterfly, SeveralTileSizesMatchReference) {
  const BlockedPlan plans[] = {
      {.tile_log2 = 4, .chunk_log2 = 2},
      {.tile_log2 = 6, .chunk_log2 = 3},
      {.tile_log2 = 10, .chunk_log2 = 6},
      {.tile_log2 = 14, .chunk_log2 = 6},
  };
  const auto pool = parallel::make_engine(parallel::Backend::thread_pool);
  for (unsigned nu = 1; nu <= 14; ++nu) {
    const auto model = core::MutationModel::per_site(asymmetric_factors(nu, 200 + nu));
    const std::size_t n = std::size_t{1} << nu;
    const auto x = random_vector(n, 300 + nu);

    std::vector<double> reference = x;
    apply_butterfly(reference, model.site_factors());

    for (const BlockedPlan& plan : plans) {
      std::vector<double> serial_v = x;
      model.apply_blocked(serial_v, parallel::serial_engine(), plan);
      expect_near_all(reference, serial_v, kTol);

      std::vector<double> pooled_v = x;
      model.apply_blocked(pooled_v, *pool, plan);
      expect_near_all(reference, pooled_v, kTol);
    }
  }
}

TEST(BlockedButterfly, PerLevelEnginePathMatchesBlocked) {
  for (unsigned nu : {3u, 9u, 13u}) {
    const auto model = core::MutationModel::per_site(asymmetric_factors(nu, 400 + nu));
    const std::size_t n = std::size_t{1} << nu;
    const auto x = random_vector(n, 500 + nu);

    std::vector<double> blocked = x;
    model.apply(blocked, parallel::serial_engine());
    std::vector<double> per_level = x;
    model.apply_per_level(per_level, parallel::serial_engine());
    expect_near_all(blocked, per_level, kTol);
  }
}

TEST(BlockedButterfly, FusedFmmpFormulationsMatchSerialOperator) {
  const unsigned nu = 11;
  const std::size_t n = std::size_t{1} << nu;
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const auto x = random_vector(n, 42);
  const auto backends = {parallel::Backend::serial, parallel::Backend::openmp,
                         parallel::Backend::thread_pool};

  // The symmetric formulation needs a symmetric model; right/left take the
  // general asymmetric per-site factors.
  const auto symmetric_model = core::MutationModel::uniform(nu, 0.02);
  const auto general_model = core::MutationModel::per_site(asymmetric_factors(nu, 7));

  for (core::Formulation formulation :
       {core::Formulation::right, core::Formulation::symmetric, core::Formulation::left}) {
    const auto& model =
        formulation == core::Formulation::symmetric ? symmetric_model : general_model;
    std::vector<double> reference(n);
    const core::FmmpOperator serial_op(model, landscape, formulation);
    serial_op.apply(x, reference);

    for (parallel::Backend kind : backends) {
      const auto engine = parallel::make_engine(kind);
      const core::FmmpOperator fused(model, landscape, formulation, engine.get());
      std::vector<double> y(n);
      fused.apply(x, y);
      expect_near_all(reference, y, kTol);

      const core::FmmpOperator per_level(model, landscape, formulation, engine.get(),
                                         transforms::LevelOrder::ascending,
                                         core::EngineKernel::per_level);
      std::vector<double> z(n);
      per_level.apply(x, z);
      expect_near_all(reference, z, kTol);
    }
  }
}

TEST(BlockedButterfly, DegenerateNuZeroAppliesScalingsOnly) {
  // nu = 0 is below MutationModel's domain but the raw kernel must handle
  // the N = 1 vector: no levels, just the fused diagonal scalings.
  std::vector<double> x{3.0}, y{0.0};
  const std::vector<double> pre{2.0}, post{5.0};
  apply_blocked_butterfly_fused(x, y, {}, pre, post, parallel::serial_engine());
  EXPECT_DOUBLE_EQ(y[0], 30.0);

  std::vector<double> in_place{4.0};
  apply_blocked_butterfly(in_place, {}, parallel::serial_engine());
  EXPECT_DOUBLE_EQ(in_place[0], 4.0);
}

TEST(BlockedButterfly, NuOneSingleLevel) {
  const auto model = core::MutationModel::per_site({Factor2::asymmetric(0.1, 0.3)});
  std::vector<double> reference{0.7, 0.3};
  apply_butterfly(reference, model.site_factors());
  for (parallel::Backend kind :
       {parallel::Backend::serial, parallel::Backend::openmp, parallel::Backend::thread_pool}) {
    const auto engine = parallel::make_engine(kind);
    std::vector<double> v{0.7, 0.3};
    model.apply(v, *engine);
    expect_near_all(reference, v, kTol);
  }
}

TEST(BlockedButterfly, SingleThreadPoolMatchesReference) {
  const parallel::ThreadPoolBackend pool(1);
  ASSERT_EQ(pool.concurrency(), 1u);
  for (unsigned nu : {1u, 6u, 12u}) {
    const auto model = core::MutationModel::per_site(asymmetric_factors(nu, 600 + nu));
    const std::size_t n = std::size_t{1} << nu;
    const auto x = random_vector(n, 700 + nu);

    std::vector<double> reference = x;
    apply_butterfly(reference, model.site_factors());
    std::vector<double> v = x;
    model.apply(v, pool);
    expect_near_all(reference, v, kTol);
  }
}

TEST(BlockedButterfly, BandBoundariesCoverAllLevelsOnce) {
  const BlockedPlan plan{.tile_log2 = 14, .chunk_log2 = 6};
  for (unsigned nu = 0; nu <= 30; ++nu) {
    const auto bounds = blocked_band_boundaries(nu, plan);
    ASSERT_GE(bounds.size(), 1u);
    EXPECT_EQ(bounds.front(), 0u);
    if (nu == 0) {
      EXPECT_EQ(bounds.size(), 1u);
      continue;
    }
    EXPECT_EQ(bounds.back(), nu);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
      EXPECT_LE(bounds[i] - bounds[i - 1], plan.tile_log2);
    }
  }
}

}  // namespace
}  // namespace qs::transforms
