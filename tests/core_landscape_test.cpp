// Unit tests for fitness landscapes.
#include "core/landscape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/contracts.hpp"

namespace qs::core {
namespace {

TEST(Landscape, FlatValues) {
  const auto l = Landscape::flat(4, 2.5);
  EXPECT_EQ(l.dimension(), 16u);
  for (seq_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(l.value(i), 2.5);
  EXPECT_DOUBLE_EQ(l.min_fitness(), 2.5);
  EXPECT_DOUBLE_EQ(l.max_fitness(), 2.5);
  EXPECT_TRUE(l.is_error_class());
}

TEST(Landscape, SinglePeak) {
  const auto l = Landscape::single_peak(5, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(l.value(0), 2.0);
  for (seq_t i = 1; i < 32; ++i) EXPECT_DOUBLE_EQ(l.value(i), 1.0);
  EXPECT_DOUBLE_EQ(l.min_fitness(), 1.0);
  EXPECT_DOUBLE_EQ(l.max_fitness(), 2.0);
  EXPECT_TRUE(l.is_error_class());
}

TEST(Landscape, LinearMatchesDefinition) {
  // f_i = f0 - (f0 - fnu) * d_H(i, 0) / nu  (caption of Figure 1).
  const unsigned nu = 6;
  const auto l = Landscape::linear(nu, 2.0, 1.0);
  for (seq_t i = 0; i < 64; ++i) {
    const double expected = 2.0 - 1.0 * hamming_weight(i) / 6.0;
    EXPECT_NEAR(l.value(i), expected, 1e-15);
  }
  EXPECT_TRUE(l.is_error_class());
}

TEST(Landscape, RandomMatchesEquationThirteen) {
  // f_0 = c; f_i = sigma * (eta + 0.5) with eta in [0,1), so
  // f_i in [sigma/2, 3 sigma/2).
  const double c = 5.0, sigma = 1.0;
  const auto l = Landscape::random(10, c, sigma, 1234);
  EXPECT_DOUBLE_EQ(l.value(0), c);
  for (seq_t i = 1; i < l.dimension(); ++i) {
    ASSERT_GE(l.value(i), sigma * 0.5);
    ASSERT_LT(l.value(i), sigma * 1.5);
  }
  EXPECT_FALSE(l.is_error_class(1e-9));
}

TEST(Landscape, RandomIsDeterministicPerSeed) {
  const auto a = Landscape::random(8, 5.0, 1.0, 7);
  const auto b = Landscape::random(8, 5.0, 1.0, 7);
  const auto c = Landscape::random(8, 5.0, 1.0, 8);
  for (seq_t i = 0; i < 256; ++i) EXPECT_EQ(a.value(i), b.value(i));
  bool any_diff = false;
  for (seq_t i = 1; i < 256; ++i) any_diff |= (a.value(i) != c.value(i));
  EXPECT_TRUE(any_diff);
}

TEST(Landscape, RejectsInvalidArguments) {
  EXPECT_THROW(Landscape::flat(4, 0.0), precondition_error);
  EXPECT_THROW(Landscape::flat(4, -1.0), precondition_error);
  EXPECT_THROW(Landscape::single_peak(4, 2.0, 0.0), precondition_error);
  EXPECT_THROW(Landscape::random(4, 5.0, 2.5, 1), precondition_error);  // sigma >= c/2
  EXPECT_THROW(Landscape::random(4, 5.0, 0.0, 1), precondition_error);
  EXPECT_THROW(Landscape::from_values(3, {1.0, 2.0}), precondition_error);  // not 2^nu
  std::vector<double> with_zero(8, 1.0);
  with_zero[3] = 0.0;
  EXPECT_THROW(Landscape::from_values(3, with_zero), precondition_error);
}

TEST(Landscape, RejectsNonFiniteValues) {
  // +Inf passes a plain `v > 0` check and NaN fails every comparison, so
  // both need the explicit isfinite guard — either would poison every
  // downstream product.
  std::vector<double> with_inf(8, 1.0);
  with_inf[2] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Landscape::from_values(3, with_inf), precondition_error);
  std::vector<double> with_nan(8, 1.0);
  with_nan[5] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Landscape::from_values(3, with_nan), precondition_error);
  EXPECT_THROW(Landscape::flat(3, std::numeric_limits<double>::infinity()),
               precondition_error);
}

TEST(ErrorClassLandscape, ExpansionIsErrorClass) {
  const auto ecl = ErrorClassLandscape::from_values(4, {3.0, 2.0, 1.5, 1.1, 1.0});
  const auto full = ecl.expand();
  EXPECT_TRUE(full.is_error_class());
  for (seq_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(full.value(i), ecl.value(hamming_weight(i)));
  }
}

TEST(ErrorClassLandscape, SinglePeakAndLinearAgreeWithFullFactories) {
  const unsigned nu = 5;
  const auto peak_full = Landscape::single_peak(nu, 2.0, 1.0);
  const auto peak_cls = ErrorClassLandscape::single_peak(nu, 2.0, 1.0).expand();
  const auto lin_full = Landscape::linear(nu, 2.0, 1.0);
  const auto lin_cls = ErrorClassLandscape::linear(nu, 2.0, 1.0).expand();
  for (seq_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(peak_full.value(i), peak_cls.value(i));
    EXPECT_NEAR(lin_full.value(i), lin_cls.value(i), 1e-15);
  }
}

TEST(ErrorClassLandscape, RejectsInvalidArguments) {
  EXPECT_THROW(ErrorClassLandscape::from_values(4, {1.0, 1.0}), precondition_error);
  EXPECT_THROW(ErrorClassLandscape::from_values(1, {1.0, 0.0}), precondition_error);
  EXPECT_THROW(ErrorClassLandscape::from_values(
                   1, {1.0, std::numeric_limits<double>::infinity()}),
               precondition_error);
  EXPECT_THROW(ErrorClassLandscape::from_values(
                   1, {std::numeric_limits<double>::quiet_NaN(), 1.0}),
               precondition_error);
  const auto l = ErrorClassLandscape::single_peak(4, 2.0, 1.0);
  EXPECT_THROW(l.value(5), precondition_error);
}

TEST(KroneckerLandscape, ValueIsProductOfFactors) {
  // factors[0] on bits 0-1, factors[1] on bit 2.
  const KroneckerLandscape kl({{1.0, 2.0, 3.0, 4.0}, {1.0, 10.0}});
  EXPECT_EQ(kl.nu(), 3u);
  EXPECT_EQ(kl.dimension(), 8u);
  EXPECT_DOUBLE_EQ(kl.value(0b000), 1.0);
  EXPECT_DOUBLE_EQ(kl.value(0b001), 2.0);
  EXPECT_DOUBLE_EQ(kl.value(0b011), 4.0);
  EXPECT_DOUBLE_EQ(kl.value(0b100), 10.0);
  EXPECT_DOUBLE_EQ(kl.value(0b111), 40.0);
}

TEST(KroneckerLandscape, ExpandMatchesValue) {
  const KroneckerLandscape kl({{1.0, 2.0}, {1.5, 0.5}, {3.0, 1.0}});
  const auto full = kl.expand();
  for (seq_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(full.value(i), kl.value(i));
}

TEST(KroneckerLandscape, RejectsInvalidFactors) {
  EXPECT_THROW(KroneckerLandscape({}), precondition_error);
  EXPECT_THROW(KroneckerLandscape({{1.0, 2.0, 3.0}}), precondition_error);  // size 3
  EXPECT_THROW(KroneckerLandscape(std::vector<std::vector<double>>{{1.0}}),
               precondition_error);  // factor of size 1
  EXPECT_THROW(KroneckerLandscape({{1.0, 0.0}}), precondition_error);       // zero
  const KroneckerLandscape kl({{1.0, 2.0}});
  EXPECT_THROW(kl.value(2), precondition_error);
}

}  // namespace
}  // namespace qs::core
