// Unit tests for the operator-based power iteration (Section 3).
#include "solvers/power_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(PowerIteration, FlatLandscapeGivesUniformEigenvector) {
  // All sequences equally fit: W = c Q is bistochastic scaled and the
  // dominant eigenvector is uniform (Section 1.1).
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.05);
  const auto landscape = core::Landscape::flat(nu, 3.0);
  const core::FmmpOperator op(model, landscape);
  const auto r = power_iteration(op);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 3.0, 1e-10);  // lambda_0 = c (Q's lambda_0 = 1)
  const double expected = 1.0 / 256.0;
  for (double x : r.eigenvector) EXPECT_NEAR(x, expected, 1e-12);
}

TEST(PowerIteration, MatchesDenseEigenSolverOnRandomLandscape) {
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);

  // Reference: full dense symmetric eigendecomposition.
  const auto w_sym = core::build_w_dense(model, landscape,
                                         core::Formulation::symmetric);
  const auto dense = linalg::jacobi_eigen(w_sym);

  const core::FmmpOperator op(model, landscape, core::Formulation::right);
  const auto r = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, dense.values[0], 1e-10);

  // The dense symmetric eigenvector converts to concentrations via
  // x_R = F^{-1/2} x_S.
  std::vector<double> x_ref(w_sym.rows());
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    x_ref[i] = dense.vectors(i, 0) / std::sqrt(landscape.value(i));
  }
  double s = 0.0;
  for (double v : x_ref) s += v;
  if (s < 0.0) linalg::scale(x_ref, -1.0);
  linalg::normalize1(x_ref);
  EXPECT_LT(linalg::max_abs_diff(r.eigenvector, x_ref), 1e-9);
}

TEST(PowerIteration, EigenvectorIsNonnegative) {
  // Perron-Frobenius: concentrations must be nonnegative.
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 6);
  const core::FmmpOperator op(model, landscape);
  const auto r = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(r.converged);
  for (double x : r.eigenvector) EXPECT_GE(x, 0.0);
  EXPECT_NEAR(linalg::norm1(r.eigenvector), 1.0, 1e-13);
}

TEST(PowerIteration, ShiftReducesIterationCount) {
  // The paper reports about ten percent fewer iterations with
  // mu = (1-2p)^nu f_min on random landscapes.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 77);
  const core::FmmpOperator op(model, landscape);
  const auto start = landscape_start(landscape);

  PowerOptions plain;
  plain.tolerance = 1e-13;
  const auto unshifted = power_iteration(op, start, plain);

  PowerOptions shifted = plain;
  shifted.shift = core::conservative_shift(model, landscape);
  const auto with_shift = power_iteration(op, start, shifted);

  ASSERT_TRUE(unshifted.converged);
  ASSERT_TRUE(with_shift.converged);
  EXPECT_LT(with_shift.iterations, unshifted.iterations);
  EXPECT_NEAR(with_shift.eigenvalue, unshifted.eigenvalue, 1e-10);
  EXPECT_LT(linalg::max_abs_diff(with_shift.eigenvector, unshifted.eigenvector),
            1e-9);
}

TEST(PowerIteration, ResidualCheckCadenceDoesNotChangeResult) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 13);
  const core::FmmpOperator op(model, landscape);
  const auto start = landscape_start(landscape);

  PowerOptions every;
  every.tolerance = 1e-12;
  PowerOptions sparse = every;
  sparse.residual_check_every = 8;
  const auto a = power_iteration(op, start, every);
  const auto b = power_iteration(op, start, sparse);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.eigenvalue, b.eigenvalue, 1e-11);
  // The sparse check can only overshoot to the next multiple of 8.
  EXPECT_GE(b.iterations, a.iterations);
  EXPECT_LE(b.iterations, a.iterations + 8);
}

TEST(PowerIteration, ReportsNonConvergenceHonestly) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 14);
  const core::FmmpOperator op(model, landscape);
  PowerOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-15;
  const auto r = power_iteration(op, landscape_start(landscape), opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_GT(r.residual, 1e-15);
}

TEST(PowerIteration, EngineReductionsMatchSerial) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 15);
  const core::FmmpOperator op(model, landscape);
  const auto start = landscape_start(landscape);

  PowerOptions serial_opts;
  const auto serial = power_iteration(op, start, serial_opts);
  PowerOptions engine_opts;
  engine_opts.engine = &parallel::parallel_engine();
  const auto engine = power_iteration(op, start, engine_opts);
  ASSERT_TRUE(serial.converged);
  ASSERT_TRUE(engine.converged);
  EXPECT_NEAR(serial.eigenvalue, engine.eigenvalue, 1e-12);
}

TEST(PowerIteration, LandscapeStartIsNormalisedCopyOfF) {
  const auto landscape = core::Landscape::random(6, 5.0, 1.0, 16);
  const auto s = landscape_start(landscape);
  EXPECT_NEAR(linalg::norm1(std::span<const double>(s)), 1.0, 1e-14);
  // Proportional to the landscape values.
  const double ratio = s[3] / landscape.value(3);
  for (seq_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(s[i], ratio * landscape.value(i), 1e-14);
  }
}

TEST(PowerIteration, RejectsBadArguments) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  const core::FmmpOperator op(model, landscape);
  std::vector<double> wrong(8, 1.0);
  EXPECT_THROW(power_iteration(op, wrong), precondition_error);
  PowerOptions opts;
  opts.residual_check_every = 0;
  EXPECT_THROW(power_iteration(op, {}, opts), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
