// ScenarioCache: LRU behaviour, crash-safe filesystem persistence through
// binary_io, corruption quarantine, and absorbed store failures.
#include "service/scenario_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "testing/fault_injection.hpp"

namespace qs::service {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    dir_ = fs::temp_directory_path() /
           ("qs_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& path() const { return dir_; }

 private:
  static inline int counter_ = 0;
  fs::path dir_;
};

CacheEntry sample_entry(double eigenvalue = 7.5) {
  CacheEntry entry;
  entry.eigenvalue = eigenvalue;
  entry.residual = 1.5e-12;
  entry.iterations = 321;
  entry.class_concentrations = {0.625, 0.25, 0.125};
  entry.fingerprint = {0xde, 0xad, 0xbe, 0xef, 0x01};
  return entry;
}

void expect_bit_identical(const CacheEntry& a, const CacheEntry& b) {
  EXPECT_EQ(std::memcmp(&a.eigenvalue, &b.eigenvalue, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.residual, &b.residual, sizeof(double)), 0);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.class_concentrations.size(), b.class_concentrations.size());
  EXPECT_EQ(std::memcmp(a.class_concentrations.data(), b.class_concentrations.data(),
                        a.class_concentrations.size() * sizeof(double)),
            0);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(CacheEntryPacking, RoundTripsBitExactly) {
  const CacheEntry entry = sample_entry();
  expect_bit_identical(entry, unpack_cache_entry(pack_cache_entry(entry)));

  CacheEntry no_fingerprint = sample_entry();
  no_fingerprint.fingerprint.clear();
  expect_bit_identical(no_fingerprint,
                       unpack_cache_entry(pack_cache_entry(no_fingerprint)));
}

TEST(CacheEntryPacking, StructurallyInvalidPayloadsThrow) {
  EXPECT_THROW(unpack_cache_entry({1.0, 2.0}), std::runtime_error);
  std::vector<double> bad = pack_cache_entry(sample_entry());
  bad[3] = 99.0;  // declared count disagrees with actual length
  EXPECT_THROW(unpack_cache_entry(bad), std::runtime_error);
}

TEST(CacheEntryPacking, AbsurdCountFieldsThrowInsteadOfUndefinedCasts) {
  // A validly-checksummed file can still carry garbage doubles in its count
  // fields; casting NaN / negative / huge values to size_t is UB, so the
  // unpacker must reject them as corruption first.
  const std::vector<double> good = pack_cache_entry(sample_entry());
  for (const double poison :
       {std::nan(""), -1.0, 0.5, 1e300,
        std::numeric_limits<double>::infinity()}) {
    std::vector<double> bad = good;
    bad[3] = poison;  // concentration count
    EXPECT_THROW(unpack_cache_entry(bad), std::runtime_error);
    bad = good;
    bad[2] = poison;  // iteration count
    EXPECT_THROW(unpack_cache_entry(bad), std::runtime_error);
    bad = good;
    bad[4 + sample_entry().class_concentrations.size()] = poison;  // fp length
    EXPECT_THROW(unpack_cache_entry(bad), std::runtime_error);
  }
}

TEST(ScenarioCacheMemory, FingerprintMismatchIsAMissNotAWrongAnswer) {
  // Two different scenarios colliding on the same 64-bit key must never
  // serve each other's answer.
  ScenarioCache cache(8);
  cache.store(1, sample_entry(1.0));
  const std::vector<std::uint8_t> other_scenario = {0x99, 0x99};
  EXPECT_FALSE(cache.lookup(1, other_scenario).has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);
  // The rightful owner still hits.
  auto hit = cache.lookup(1, sample_entry().fingerprint);
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(sample_entry(1.0), *hit);
}

TEST(ScenarioCacheFs, DiskFingerprintMismatchIsAMissAndRecomputeOverwrites) {
  TempDir dir;
  {
    ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
    cache.store(3, sample_entry(1.0));
  }
  // "Restart": a colliding scenario looks up the same key with a different
  // fingerprint — miss (counted as a collision), then its own store
  // overwrites the file and the new fingerprint is served thereafter.
  ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
  CacheEntry collider = sample_entry(2.0);
  collider.fingerprint = {0x42};
  EXPECT_FALSE(cache.lookup(3, collider.fingerprint).has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);
  cache.store(3, collider);

  ScenarioCache reopened(8, std::make_unique<FsCacheStorage>(dir.path()));
  auto hit = reopened.lookup(3, collider.fingerprint);
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(collider, *hit);
}

TEST(ScenarioCacheMemory, LruHitsMissesAndEvicts) {
  ScenarioCache cache(2);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.store(1, sample_entry(1.0));
  cache.store(2, sample_entry(2.0));
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 is now most recent
  cache.store(3, sample_entry(3.0));         // evicts 2 (least recent)
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST(ScenarioCacheFs, PersistsAcrossCacheInstances) {
  TempDir dir;
  const CacheEntry entry = sample_entry();
  {
    ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
    cache.store(42, entry);
  }
  // A new cache over the same directory: the entry survives the "restart".
  ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
  auto hit = cache.lookup(42);
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(entry, *hit);
}

TEST(ScenarioCacheFs, EvictedEntriesFallThroughToDisk) {
  TempDir dir;
  ScenarioCache cache(1, std::make_unique<FsCacheStorage>(dir.path()));
  cache.store(1, sample_entry(1.0));
  cache.store(2, sample_entry(2.0));  // evicts key 1 from memory
  auto hit = cache.lookup(1);         // disk still has it
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(sample_entry(1.0), *hit);
}

TEST(ScenarioCacheFs, TruncatedEntryIsQuarantinedAndRecomputable) {
  TempDir dir;
  auto storage = std::make_unique<FsCacheStorage>(dir.path());
  const fs::path entry_file = storage->entry_path(7);
  {
    ScenarioCache cache(8, std::move(storage));
    cache.store(7, sample_entry());
  }
  // Crash mid-sector: chop the file.  binary_io's length check must refuse
  // it, and the cache must quarantine rather than serve garbage.
  {
    const auto size = fs::file_size(entry_file);
    fs::resize_file(entry_file, size / 2);
  }
  ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
  EXPECT_FALSE(cache.lookup(7).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(entry_file));
  fs::path bad = entry_file;
  bad += ".bad";
  EXPECT_TRUE(fs::exists(bad)) << "corrupt entry must be preserved as evidence";

  // Recompute path: a fresh store overwrites cleanly and serves again.
  cache.store(7, sample_entry());
  ScenarioCache reopened(8, std::make_unique<FsCacheStorage>(dir.path()));
  EXPECT_TRUE(reopened.lookup(7).has_value());
}

TEST(ScenarioCacheFs, BitFlippedEntryFailsTheChecksumAndIsQuarantined) {
  TempDir dir;
  auto storage = std::make_unique<FsCacheStorage>(dir.path());
  const fs::path entry_file = storage->entry_path(9);
  {
    ScenarioCache cache(8, std::move(storage));
    cache.store(9, sample_entry());
  }
  {
    // Flip one payload byte in place — the FNV checksum must catch it.
    std::fstream file(entry_file, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(40);
    char byte;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(40);
    file.write(&byte, 1);
  }
  ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
  EXPECT_FALSE(cache.lookup(9).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(ScenarioCacheFs, SemanticCorruptionPastTheChecksumIsStillRejected) {
  // The injected corrupt-at-store writes a checksum-consistent file whose
  // *content* is garbage: unpack_cache_entry's structural checks are the
  // last line, and the cache must quarantine on them too.
  TempDir dir;
  testing::FaultInjectingCacheStorage::Config config;
  config.corrupt_at_store = 1;
  {
    ScenarioCache cache(8, std::make_unique<testing::FaultInjectingCacheStorage>(
                               std::make_unique<FsCacheStorage>(dir.path()), config));
    cache.store(5, sample_entry());
  }
  ScenarioCache cache(8, std::make_unique<FsCacheStorage>(dir.path()));
  EXPECT_FALSE(cache.lookup(5).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(ScenarioCache, StoreFailuresAreAbsorbedAndCounted) {
  testing::FaultInjectingCacheStorage::Config config;
  config.throw_at_store = 1;
  config.throw_forever = true;
  ScenarioCache cache(8, std::make_unique<testing::FaultInjectingCacheStorage>(
                             nullptr, config));
  // A sick disk must not fail the request: the answer stays served from
  // memory and the failure is visible in the stats.
  cache.store(1, sample_entry());
  EXPECT_TRUE(cache.lookup(1).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.store_failures, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(ScenarioCache, LoadFailuresQuarantineAndMiss) {
  testing::FaultInjectingCacheStorage::Config config;
  config.throw_at_load = 1;
  auto storage = std::make_unique<testing::FaultInjectingCacheStorage>(nullptr, config);
  auto* injector = storage.get();
  ScenarioCache cache(8, std::move(storage));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_EQ(injector->quarantine_count(), 1u);
}

}  // namespace
}  // namespace qs::service
