// Unit tests for the CSV and text-table writers.
#include <gtest/gtest.h>

#include <sstream>

#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace qs {
namespace {

TEST(FormatDouble, RoundTripsExactly) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e-300, 3.141592653589793, 1e20}) {
    const std::string s = format_double(v);
    EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
  }
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.row().cell(1.5).cell(std::string("x")).cell(std::size_t{7});
  csv.end_row();
  EXPECT_EQ(out.str(), "a,b,c\n1.5,x,7\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  for (int i = 0; i < 3; ++i) {
    csv.row().cell(static_cast<double>(i)).cell(static_cast<double>(i * i));
    csv.end_row();
  }
  EXPECT_EQ(out.str(), "0,0\n1,1\n2,4\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, NumericRowHelper) {
  TextTable t({"label", "v1", "v2"});
  t.add_row_numeric("row", {1.23456789, 1e-9});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("1.235"), std::string::npos);
  EXPECT_NE(out.str().find("1e-09"), std::string::npos);
}

TEST(TextTable, RejectsRowWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(FormatShort, CompactRepresentation) {
  EXPECT_EQ(format_short(2.0), "2");
  EXPECT_EQ(format_short(0.5), "0.5");
}

}  // namespace
}  // namespace qs
