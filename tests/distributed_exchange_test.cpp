// The distributed layer's determinism and equivalence suite.
//
// Three claims are pinned here:
//   1. the tree reductions of distributed/reduction.hpp compose: per-block
//      partials combined in tree order equal the global tree, bit for bit,
//      for every power-of-two block count;
//   2. the lockstep Exchange implements the collective contract (swaps,
//      tree-ordered allreduce, gather/scatter, structured desync errors,
//      no hangs when a rank dies);
//   3. the headline contract — a distributed power iteration is
//      BIT-IDENTICAL (eigenvalue, iteration count, residual stream,
//      eigenvector) to the serial facade run with tree_engine() and a
//      tree_landscape_start iterate, for every rank count, model kind,
//      and across checkpoint/resume boundaries (including resuming under
//      a different rank count).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "distributed/distributed_solver.hpp"
#include "distributed/exchange.hpp"
#include "distributed/reduction.hpp"
#include "obs/metrics.hpp"
#include "parallel/engine.hpp"
#include "solvers/power_iteration.hpp"
#include "support/rng.hpp"
#include "transforms/sv_microkernel.hpp"

namespace qs::distributed {
namespace {

// ---------------------------------------------------------------------------
// Tree reductions.
// ---------------------------------------------------------------------------

TEST(TreeReduction, BlockPartialsComposeToTheGlobalTree) {
  // The keystone of the rank-count invariance: summing aligned power-of-two
  // blocks with tree_sum and combining the partials in tree order must equal
  // the tree over the whole vector — exactly, not approximately.
  std::vector<double> v(1024);
  Xoshiro256 rng(42);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  const double whole = tree_sum(v);
  for (unsigned ranks : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const std::size_t block = v.size() / ranks;
    std::vector<double> partials(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
      partials[r] = tree_sum(std::span<const double>(v).subspan(r * block, block));
    }
    const double composed = tree_sum(partials);
    EXPECT_EQ(composed, whole) << "ranks=" << ranks;
  }
}

TEST(TreeReduction, DotAndSquaresComposeToo) {
  std::vector<double> a(512), b(512);
  Xoshiro256 rng(7);
  for (double& x : a) x = rng.uniform(-2.0, 2.0);
  for (double& x : b) x = rng.uniform(-2.0, 2.0);
  const double whole_dot = tree_dot(a, b);
  const double whole_sq = tree_sum_squares(a);
  for (unsigned ranks : {2u, 8u, 32u}) {
    const std::size_t block = a.size() / ranks;
    std::vector<double> pd(ranks), ps(ranks);
    for (unsigned r = 0; r < ranks; ++r) {
      const auto sa = std::span<const double>(a).subspan(r * block, block);
      const auto sb = std::span<const double>(b).subspan(r * block, block);
      pd[r] = tree_dot(sa, sb);
      ps[r] = tree_sum_squares(sa);
    }
    EXPECT_EQ(tree_sum(pd), whole_dot) << "ranks=" << ranks;
    EXPECT_EQ(tree_sum(ps), whole_sq) << "ranks=" << ranks;
  }
}

TEST(TreeReduction, TreeEngineMatchesTheFreeFunctions) {
  std::vector<double> v(300);  // non-power-of-two length works too
  Xoshiro256 rng(3);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  const parallel::Engine& engine = tree_engine();
  EXPECT_EQ(engine.reduce_sum(v), tree_sum(v));
  EXPECT_EQ(engine.reduce_abs_sum(v), tree_abs_sum(v));
  EXPECT_EQ(engine.reduce_sum_squares(v), tree_sum_squares(v));
  EXPECT_EQ(engine.reduce_dot(v, v), tree_dot(v, v));
}

// ---------------------------------------------------------------------------
// Lockstep exchange primitives.
// ---------------------------------------------------------------------------

TEST(LockstepExchange, SendrecvSwapsBlocksBetweenPartners) {
  LockstepGroup group(4);
  std::vector<std::vector<double>> got(4);
  group.run([&](Exchange& ex) {
    const unsigned partner = ex.rank() ^ 1u;
    std::vector<double> mine(8, static_cast<double>(ex.rank()) + 1.0);
    std::vector<double> theirs(8, -1.0);
    ex.sendrecv(partner, mine, theirs, 5);
    got[ex.rank()] = theirs;
    EXPECT_EQ(ex.stats().messages, 1u);
    EXPECT_EQ(ex.stats().doubles_moved, 8u);
  });
  for (unsigned rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(got[rank], std::vector<double>(8, static_cast<double>(rank ^ 1u) + 1.0));
  }
}

TEST(LockstepExchange, AllreduceIsTreeOrderedAndIdenticalEverywhere) {
  const unsigned ranks = 8;
  std::vector<double> partials(ranks);
  Xoshiro256 rng(11);
  for (double& p : partials) p = rng.uniform(-1.0, 1.0);
  const double expected = tree_sum(partials);

  LockstepGroup group(ranks);
  std::vector<double> got(ranks);
  group.run([&](Exchange& ex) {
    got[ex.rank()] = ex.allreduce_sum(partials[ex.rank()], 3);
    EXPECT_EQ(ex.stats().allreduce_calls, 1u);
  });
  for (unsigned rank = 0; rank < ranks; ++rank) {
    EXPECT_EQ(got[rank], expected) << "rank " << rank;
  }
}

TEST(LockstepExchange, VectorAllreduceAndGatherScatterRoundTrip) {
  const unsigned ranks = 4;
  const std::size_t block = 16;
  std::vector<double> image(ranks * block);
  Xoshiro256 rng(13);
  for (double& v : image) v = rng.uniform(0.0, 1.0);

  LockstepGroup group(ranks);
  std::vector<double> gathered(ranks * block, 0.0);
  group.run([&](Exchange& ex) {
    // Scatter the image, then gather it back: exact round trip.
    std::vector<double> mine(block, 0.0);
    ex.scatter_from_root(mine,
                         ex.rank() == 0 ? std::span<const double>(image)
                                        : std::span<const double>{},
                         1);
    for (std::size_t t = 0; t < block; ++t) {
      ASSERT_EQ(mine[t], image[ex.rank() * block + t]);
    }
    ex.gather_to_root(mine,
                      ex.rank() == 0 ? std::span<double>(gathered)
                                     : std::span<double>{},
                      2);
    // Element-wise vector allreduce: every rank contributes [rank, 2*rank].
    std::vector<double> vec = {static_cast<double>(ex.rank()),
                               2.0 * static_cast<double>(ex.rank())};
    ex.allreduce_sum(std::span<double>(vec), 3);
    EXPECT_EQ(vec[0], 6.0);   // 0+1+2+3
    EXPECT_EQ(vec[1], 12.0);
  });
  EXPECT_EQ(gathered, image);
}

TEST(LockstepExchange, TagMismatchFailsEveryRankWithoutHanging) {
  LockstepGroup group(4);
  EXPECT_THROW(group.run([&](Exchange& ex) {
    // Rank 2 runs a different collective tag: a desynchronised program.
    const unsigned tag = ex.rank() == 2 ? 9 : 5;
    ex.allreduce_sum(1.0, tag);
  }),
               ExchangeError);
}

TEST(LockstepExchange, ARankDyingOutsideACollectiveFailsTheGroup) {
  // A rank that throws between collectives (a solver guard, a bad alloc)
  // must not leave the surviving ranks waiting at the barrier forever.
  LockstepGroup group(4);
  EXPECT_THROW(group.run([&](Exchange& ex) {
    if (ex.rank() == 2) throw std::runtime_error("rank 2 died");
    ex.allreduce_sum(1.0, 1);
    ex.allreduce_sum(2.0, 2);
  }),
               std::runtime_error);  // lowest-rank error: ExchangeError is one
}

// ---------------------------------------------------------------------------
// Bit-identical equivalence with the serial facade.
// ---------------------------------------------------------------------------

struct FacadeRun {
  solvers::PowerResult result;
  std::vector<std::pair<unsigned, double>> residuals;
};

/// The serial facade of a distributed solve: the blocked Fmmp operator with
/// the same plan, tree_engine() reductions, and a verbatim
/// tree_landscape_start iterate via an iteration-0 checkpoint (so the start
/// is NOT re-normalised with the serial left-to-right norm).
FacadeRun run_facade(const core::MutationModel& model,
                     const core::Landscape& landscape,
                     const DistributedPowerOptions& options) {
  FacadeRun out;
  const core::FmmpOperator op(model, landscape, core::Formulation::right,
                              &parallel::serial_engine(),
                              transforms::LevelOrder::ascending,
                              core::EngineKernel::blocked, options.plan);
  solvers::PowerOptions popts;
  static_cast<solvers::IterationOptions&>(popts) =
      static_cast<const solvers::IterationOptions&>(options);
  popts.shift = options.shift;
  popts.engine = &tree_engine();
  popts.on_residual = [&out](unsigned it, double r) {
    out.residuals.emplace_back(it, r);
  };
  io::SolverCheckpoint start;
  start.iteration = 0;
  start.solver_kind = io::SolverKind::power;
  start.best_residual = std::numeric_limits<double>::infinity();
  start.window_start_best = std::numeric_limits<double>::infinity();
  start.eigenvector = tree_landscape_start(landscape);
  out.result = solvers::resume_power_iteration(op, start, popts);
  return out;
}

void expect_bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

struct EquivalenceCase {
  const char* name;
  bool per_site;
  unsigned nu;
  unsigned ranks;
};

class DistEquivalence : public ::testing::TestWithParam<EquivalenceCase> {
 protected:
  static core::MutationModel make_model(const EquivalenceCase& c) {
    if (!c.per_site) return core::MutationModel::uniform(c.nu, 0.03);
    // Per-site with a different (symmetric) rate at every site, so the
    // rank-local banded kernel sees genuinely distinct Factor2 levels and
    // conservative_shift still applies.
    std::vector<transforms::Factor2> sites;
    for (unsigned k = 0; k < c.nu; ++k) {
      sites.push_back(
          transforms::Factor2::uniform(0.01 + 0.004 * static_cast<double>(k)));
    }
    return core::MutationModel::per_site(std::move(sites));
  }
};

TEST_P(DistEquivalence, LockstepSolveIsBitIdenticalToTheSerialFacade) {
  const EquivalenceCase c = GetParam();
  const auto model = make_model(c);
  const auto landscape = core::Landscape::random(c.nu, 5.0, 1.0, 17);

  DistributedPowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);
  const FacadeRun facade = run_facade(model, landscape, opts);
  ASSERT_TRUE(facade.result.converged);

  std::vector<std::pair<unsigned, double>> residuals;
  opts.on_residual = [&residuals](unsigned it, double r) {
    residuals.emplace_back(it, r);
  };
  const auto dist = distributed_power_iteration(model, landscape, c.ranks, opts);

  EXPECT_TRUE(dist.converged);
  EXPECT_EQ(dist.eigenvalue, facade.result.eigenvalue);       // exact bits
  EXPECT_EQ(dist.iterations, facade.result.iterations);
  EXPECT_EQ(dist.residual, facade.result.residual);
  EXPECT_EQ(residuals, facade.residuals);                     // full stream
  expect_bit_equal(dist.eigenvector, facade.result.eigenvector);

  // Plan provenance: the rank-local levels ran the banded kernel with the
  // plan's resolved sv tier, and the level split matches the layout.
  EXPECT_EQ(dist.plan_kernel,
            transforms::resolved_sv_kernel_name(opts.plan.sv_kernel));
  EXPECT_EQ(dist.local_levels, c.nu - BlockLayout(c.nu, c.ranks).rank_bits());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistEquivalence,
    ::testing::Values(EquivalenceCase{"uniform_r1", false, 10, 1},
                      EquivalenceCase{"uniform_r2", false, 10, 2},
                      EquivalenceCase{"uniform_r4", false, 10, 4},
                      EquivalenceCase{"uniform_r16", false, 10, 16},
                      EquivalenceCase{"per_site_r4", true, 10, 4},
                      EquivalenceCase{"per_site_r16", true, 10, 16},
                      // The max-rank edge: every rank holds exactly two
                      // entries and only level 0 is local.
                      EquivalenceCase{"uniform_max_ranks", false, 6, 32},
                      EquivalenceCase{"per_site_max_ranks", true, 6, 32}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(DistEquivalenceExtra, BlocksEntryMatchesTheLandscapeEntryBitwise) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 4.0, 1.0, 23);
  DistributedPowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);

  const auto whole = distributed_power_iteration(model, landscape, 4, opts);
  const auto blocks = distributed_power_iteration_blocks(
      model, 4,
      [&landscape](const BlockLayout& layout, unsigned rank) {
        const auto v = landscape.values().subspan(layout.block_begin(rank),
                                                  layout.block_size());
        return std::vector<double>(v.begin(), v.end());
      },
      opts);
  EXPECT_EQ(blocks.eigenvalue, whole.eigenvalue);
  EXPECT_EQ(blocks.iterations, whole.iterations);
  expect_bit_equal(blocks.eigenvector, whole.eigenvector);
}

TEST(DistEquivalenceExtra, CapacityModeKeepsOnlyTheRankBlock) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.04);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 29);
  DistributedPowerOptions opts;
  opts.gather_eigenvector = false;
  const auto dist = distributed_power_iteration(model, landscape, 4, opts);
  ASSERT_TRUE(dist.converged);
  ASSERT_EQ(dist.eigenvector.size(), 64u);  // 2^8 / 4, rank 0's block only

  const auto full = distributed_power_iteration(model, landscape, 4);
  for (std::size_t i = 0; i < 64; ++i) {
    // Same solve, different final normalisation order (tree vs serial):
    // equal to rounding.
    EXPECT_NEAR(dist.eigenvector[i], full.eigenvector[i],
                1e-14 * std::abs(full.eigenvector[i]) + 1e-300);
  }
}

// ---------------------------------------------------------------------------
// Cancellation, checkpoint/resume.
// ---------------------------------------------------------------------------

TEST(DistCancellation, AgreedStopFlushesACheckpointAndPartialTraffic) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 31);

  std::atomic<bool> stop{false};
  std::atomic<unsigned> checks{0};
  std::vector<io::SolverCheckpoint> sunk;
  DistributedPowerOptions opts;
  opts.tolerance = 0.0;      // never converges
  opts.stall_window = 0;     // never stalls
  opts.max_iterations = 200;
  opts.on_residual = [&](unsigned, double) {
    if (++checks >= 3) stop.store(true);
  };
  opts.should_stop = [&stop] { return stop.load(); };
  opts.checkpoint_every = 1000;  // configured, but the cadence never fires
  opts.checkpoint_sink = [&sunk](const io::SolverCheckpoint& ck) {
    sunk.push_back(ck);
  };

  const auto dist = distributed_power_iteration(model, landscape, 4, opts);
  EXPECT_EQ(dist.failure, solvers::SolverFailure::cancelled);
  EXPECT_FALSE(dist.converged);
  EXPECT_LT(dist.iterations, 200u);
  // The cancel path flushed exactly one checkpoint, of the pre-update
  // iterate (the result of the iteration before the cancelled one), with
  // the full gathered vector.
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].iteration, dist.iterations - 1);
  EXPECT_EQ(sunk[0].eigenvector.size(), std::size_t{1} << nu);
  // Partial traffic was aggregated before returning.
  EXPECT_GT(dist.traffic.messages, 0u);
  EXPECT_GT(dist.traffic.allreduce_calls, 0u);
}

TEST(DistResume, ResumingUnderADifferentRankCountIsBitIdentical) {
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 37);
  DistributedPowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);

  // Uninterrupted reference with its residual stream.
  std::vector<std::pair<unsigned, double>> ref_stream;
  DistributedPowerOptions ref_opts = opts;
  ref_opts.on_residual = [&ref_stream](unsigned it, double r) {
    ref_stream.emplace_back(it, r);
  };
  const auto ref = distributed_power_iteration(model, landscape, 4, ref_opts);
  ASSERT_TRUE(ref.converged);
  ASSERT_GT(ref.iterations, 6u) << "test needs a few iterations to interrupt";

  // Interrupted run: checkpoint every 5 iterations into a sink.
  std::vector<io::SolverCheckpoint> sunk;
  DistributedPowerOptions ck_opts = opts;
  ck_opts.checkpoint_every = 5;
  ck_opts.checkpoint_sink = [&sunk](const io::SolverCheckpoint& ck) {
    sunk.push_back(ck);
  };
  (void)distributed_power_iteration(model, landscape, 4, ck_opts);
  ASSERT_FALSE(sunk.empty());
  const io::SolverCheckpoint& ck = sunk.front();
  ASSERT_EQ(ck.iteration, 5u);

  // Resume under a DIFFERENT rank count; trajectory must continue exactly.
  std::vector<std::pair<unsigned, double>> resumed_stream;
  DistributedPowerOptions res_opts = opts;
  res_opts.on_residual = [&resumed_stream](unsigned it, double r) {
    resumed_stream.emplace_back(it, r);
  };
  const auto resumed =
      resume_distributed_power_iteration(model, landscape, 8, ck, res_opts);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.eigenvalue, ref.eigenvalue);
  EXPECT_EQ(resumed.iterations, ref.iterations);
  expect_bit_equal(resumed.eigenvector, ref.eigenvector);
  const std::vector<std::pair<unsigned, double>> ref_tail(
      ref_stream.begin() + 5, ref_stream.end());
  EXPECT_EQ(resumed_stream, ref_tail);

  // And the SERIAL solver can resume the distributed checkpoint to the same
  // bits — the checkpoint format is one world.
  const core::FmmpOperator op(model, landscape, core::Formulation::right,
                              &parallel::serial_engine(),
                              transforms::LevelOrder::ascending,
                              core::EngineKernel::blocked, opts.plan);
  solvers::PowerOptions popts;
  popts.shift = opts.shift;
  popts.engine = &tree_engine();
  const auto serial = solvers::resume_power_iteration(op, ck, popts);
  EXPECT_TRUE(serial.converged);
  EXPECT_EQ(serial.eigenvalue, ref.eigenvalue);
  EXPECT_EQ(serial.iterations, ref.iterations);
  expect_bit_equal(serial.eigenvector, ref.eigenvector);
}

// ---------------------------------------------------------------------------
// Observability.
// ---------------------------------------------------------------------------

TEST(DistMetrics, SolveRecordsTransportAndKernelProvenance) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 41);
  (void)distributed_power_iteration(model, landscape, 4);

  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  auto info = [&snap](const std::string& key) -> std::string {
    for (const auto& [k, v] : snap.info) {
      if (k == key) return v;
    }
    return {};
  };
  auto value = [&snap](const std::string& key) -> double {
    for (const auto& [k, v] : snap.values) {
      if (k == key) return v;
    }
    return -1.0;
  };
  EXPECT_EQ(info("dist.exchange"), "lockstep");
  EXPECT_EQ(info("dist.sv_kernel"),
            transforms::resolved_sv_kernel_name(transforms::SvKernel::automatic));
  EXPECT_EQ(value("dist.ranks"), 4.0);
  EXPECT_EQ(value("dist.local_levels"), 6.0);   // nu=8, 2 rank bits
  EXPECT_EQ(value("dist.block_doubles"), 64.0);
  EXPECT_GT(value("dist.messages"), 0.0);
}

}  // namespace
}  // namespace qs::distributed
