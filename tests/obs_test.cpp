// Exporter round-trip tests for the observability layer (src/obs/).
//
// These run in BOTH build flavours: with QS_ENABLE_TRACING=OFF (the
// default) the span layer is compiled out and the tests pin down the
// degraded-but-valid contract — empty-but-parseable trace, metrics with
// values/residuals but no phases; with the `trace` preset they additionally
// verify that recorded spans, instants, and counters survive the trip into
// the Chrome trace JSON and the metrics snapshot.  Registered under the
// ctest label `obs` (ctest -L obs) next to being part of qs_tests.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qs::obs {
namespace {

/// Minimal structural JSON check: braces/brackets balance outside string
/// literals and the text is non-trivial.  Not a full parser — enough to
/// catch the classic exporter bugs (trailing comma never hits this, but a
/// missing quote, an unclosed array, or raw NaN/Inf all do).
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !text.empty();
}

std::string trace_json() {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

std::string metrics_json() {
  std::ostringstream out;
  write_metrics_json(out, metrics().snapshot());
  return out.str();
}

std::filesystem::path temp_file(const std::string& suffix) {
  return std::filesystem::temp_directory_path() /
         ("qs_obs_test_" + std::to_string(::getpid()) + suffix);
}

/// Per-test scrub: the recorder and rings are process-wide singletons, so
/// every test starts them from zero and leaves tracing disabled.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
    metrics().reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    metrics().reset();
  }
};

TEST_F(ObsTest, TraceJsonIsStructurallyValidInEveryBuild) {
  const std::string json = trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The metadata note is what makes an empty trace self-explaining.
  const std::string flag = compiled_in() ? "\"tracing_compiled_in\":true"
                                         : "\"tracing_compiled_in\":false";
  EXPECT_NE(json.find(flag), std::string::npos) << json;
}

TEST_F(ObsTest, DisabledRuntimeSwitchRecordsNothing) {
  // set_enabled(false) is the SetUp state; macro sites must stay silent.
  { QS_TRACE_SPAN("obs_test.silent", app); }
  QS_TRACE_INSTANT("obs_test.silent_instant", app, 1.0);
  QS_TRACE_COUNTER("obs_test.silent_counter", 1);
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_TRUE(snapshot_counters().empty());
}

TEST_F(ObsTest, SpansInstantsAndCountersRoundTripIntoTheTrace) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  { QS_TRACE_SPAN_ARG("obs_test.span", kernel, 7); }
  QS_TRACE_INSTANT_ARG("obs_test.instant", solver, 0.125, 3);
  QS_TRACE_COUNTER("obs_test.counter", 5);
  QS_TRACE_COUNTER("obs_test.counter", 2);

  const auto spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 2u);  // one span + one instant, start-sorted
  const auto counters = snapshot_counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.front().value, 7u);

  const std::string json = trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"obs_test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(ObsTest, ResetClearsRingsAndCounters) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  { QS_TRACE_SPAN("obs_test.span", app); }
  QS_TRACE_COUNTER("obs_test.counter", 1);
  ASSERT_FALSE(snapshot_spans().empty());
  reset();
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_TRUE(snapshot_counters().empty());
  EXPECT_EQ(dropped_spans(), 0u);
}

TEST_F(ObsTest, MetricsSnapshotCarriesInfoValuesAndResiduals) {
  auto& m = metrics();
  m.set_info("solver", "power");
  m.set_info("solver", "lanczos");  // overwrite, not append
  m.set_value("nu", 18.0);
  m.record_residual(0.5);
  m.record_residual(0.25);

  const MetricsSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.info.size(), 1u);
  EXPECT_EQ(snap.info.front().first, "solver");
  EXPECT_EQ(snap.info.front().second, "lanczos");
  ASSERT_EQ(snap.values.size(), 1u);
  EXPECT_EQ(snap.values.front().second, 18.0);
  EXPECT_EQ(snap.residual_count, 2u);
  ASSERT_EQ(snap.residual_tail.size(), 2u);
  EXPECT_EQ(snap.residual_tail[0], 0.5);   // oldest first
  EXPECT_EQ(snap.residual_tail[1], 0.25);
  EXPECT_EQ(snap.tracing_compiled_in, compiled_in());
}

TEST_F(ObsTest, ResidualRingKeepsTheMostRecentTailOldestFirst) {
  auto& m = metrics();
  const std::size_t total = MetricsRecorder::kResidualTail + 10;
  for (std::size_t i = 0; i < total; ++i)
    m.record_residual(static_cast<double>(i));

  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.residual_count, total);
  ASSERT_EQ(snap.residual_tail.size(), MetricsRecorder::kResidualTail);
  EXPECT_EQ(snap.residual_tail.front(), 10.0);  // entries 0..9 were evicted
  EXPECT_EQ(snap.residual_tail.back(), static_cast<double>(total - 1));
}

TEST_F(ObsTest, MetricsJsonHasTheStableSchema) {
  auto& m = metrics();
  m.set_info("simd_tier", "scalar");
  m.set_value("plan.tile_log2", 14.0);
  m.record_residual(1e-9);

  const std::string json = metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* key :
       {"\"schema_version\": 1", "\"tracing_compiled_in\"", "\"dropped_spans\"",
        "\"info\"", "\"values\"", "\"residuals\"", "\"phases\"",
        "\"counters\"", "\"simd_tier\"", "\"plan.tile_log2\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ObsTest, NonFiniteValuesExportAsNullNotAsBrokenJson) {
  metrics().set_value("bad", std::numeric_limits<double>::quiet_NaN());
  const std::string json = metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST_F(ObsTest, MetricsCsvEmitsRaggedKindRows) {
  auto& m = metrics();
  m.set_info("tool", "obs_test");
  m.set_value("nu", 12.0);
  m.record_residual(0.75);

  std::ostringstream out;
  write_metrics_csv(out, m.snapshot());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("info,tool,obs_test\n"), std::string::npos);
  EXPECT_NE(csv.find("value,nu,12\n"), std::string::npos);
  EXPECT_NE(csv.find("residual,0,0.75\n"), std::string::npos);
}

TEST_F(ObsTest, FileWritersPickFormatByExtensionAndFailSoftly) {
  metrics().set_value("nu", 10.0);

  const auto json_path = temp_file(".json");
  const auto csv_path = temp_file(".csv");
  ASSERT_TRUE(write_metrics_file(json_path.string()));
  ASSERT_TRUE(write_metrics_file(csv_path.string()));
  ASSERT_TRUE(write_chrome_trace_file(temp_file(".trace.json").string()));

  std::stringstream json_text, csv_text;
  json_text << std::ifstream(json_path).rdbuf();
  csv_text << std::ifstream(csv_path).rdbuf();
  std::filesystem::remove(json_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(temp_file(".trace.json"));

  EXPECT_EQ(json_text.str().front(), '{');
  EXPECT_NE(csv_text.str().find("kind,name,value"), std::string::npos);

  // Unwritable paths report false instead of throwing (the CLIs warn and
  // keep the solve's result).
  EXPECT_FALSE(write_metrics_file("/nonexistent-dir/qs-obs/m.json"));
  EXPECT_FALSE(write_chrome_trace_file("/nonexistent-dir/qs-obs/t.json"));
}

TEST_F(ObsTest, PhasesAggregateFromTheSpanRings) {
  if (!compiled_in()) {
    // Compiled-out contract: the phase table is empty but present.
    EXPECT_TRUE(metrics().snapshot().phases.empty());
    GTEST_SKIP() << "span-backed phases need a QS_ENABLE_TRACING build";
  }
  set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    QS_TRACE_SPAN("obs_test.phase", kernel);
  }
  const MetricsSnapshot snap = metrics().snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases.front().name, "obs_test.phase");
  EXPECT_EQ(snap.phases.front().category, "kernel");
  EXPECT_EQ(snap.phases.front().count, 3u);
  EXPECT_GE(snap.phases.front().wall_seconds, 0.0);
}

}  // namespace
}  // namespace qs::obs
