// Exporter round-trip tests for the observability layer (src/obs/).
//
// These run in BOTH build flavours: with QS_ENABLE_TRACING=OFF (the
// default) the span layer is compiled out and the tests pin down the
// degraded-but-valid contract — empty-but-parseable trace, metrics with
// values/residuals but no phases; with the `trace` preset they additionally
// verify that recorded spans, instants, and counters survive the trip into
// the Chrome trace JSON and the metrics snapshot.  Registered under the
// ctest label `obs` (ctest -L obs) next to being part of qs_tests.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span_wire.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace qs::obs {
namespace {

/// Minimal structural JSON check: braces/brackets balance outside string
/// literals and the text is non-trivial.  Not a full parser — enough to
/// catch the classic exporter bugs (trailing comma never hits this, but a
/// missing quote, an unclosed array, or raw NaN/Inf all do).
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !text.empty();
}

std::string trace_json() {
  std::ostringstream out;
  write_chrome_trace(out);
  return out.str();
}

std::string metrics_json() {
  std::ostringstream out;
  write_metrics_json(out, metrics().snapshot());
  return out.str();
}

std::filesystem::path temp_file(const std::string& suffix) {
  return std::filesystem::temp_directory_path() /
         ("qs_obs_test_" + std::to_string(::getpid()) + suffix);
}

/// Per-test scrub: the recorder and rings are process-wide singletons, so
/// every test starts them from zero and leaves tracing disabled.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
    metrics().reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    metrics().reset();
  }
};

TEST_F(ObsTest, TraceJsonIsStructurallyValidInEveryBuild) {
  const std::string json = trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The metadata note is what makes an empty trace self-explaining.
  const std::string flag = compiled_in() ? "\"tracing_compiled_in\":true"
                                         : "\"tracing_compiled_in\":false";
  EXPECT_NE(json.find(flag), std::string::npos) << json;
}

TEST_F(ObsTest, DisabledRuntimeSwitchRecordsNothing) {
  // set_enabled(false) is the SetUp state; macro sites must stay silent.
  { QS_TRACE_SPAN("obs_test.silent", app); }
  QS_TRACE_INSTANT("obs_test.silent_instant", app, 1.0);
  QS_TRACE_COUNTER("obs_test.silent_counter", 1);
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_TRUE(snapshot_counters().empty());
}

TEST_F(ObsTest, SpansInstantsAndCountersRoundTripIntoTheTrace) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  { QS_TRACE_SPAN_ARG("obs_test.span", kernel, 7); }
  QS_TRACE_INSTANT_ARG("obs_test.instant", solver, 0.125, 3);
  QS_TRACE_COUNTER("obs_test.counter", 5);
  QS_TRACE_COUNTER("obs_test.counter", 2);

  const auto spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 2u);  // one span + one instant, start-sorted
  const auto counters = snapshot_counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.front().value, 7u);

  const std::string json = trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"obs_test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST_F(ObsTest, ResetClearsRingsAndCounters) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  { QS_TRACE_SPAN("obs_test.span", app); }
  QS_TRACE_COUNTER("obs_test.counter", 1);
  ASSERT_FALSE(snapshot_spans().empty());
  reset();
  EXPECT_TRUE(snapshot_spans().empty());
  EXPECT_TRUE(snapshot_counters().empty());
  EXPECT_EQ(dropped_spans(), 0u);
}

TEST_F(ObsTest, MetricsSnapshotCarriesInfoValuesAndResiduals) {
  auto& m = metrics();
  m.set_info("solver", "power");
  m.set_info("solver", "lanczos");  // overwrite, not append
  m.set_value("nu", 18.0);
  m.record_residual(0.5);
  m.record_residual(0.25);

  const MetricsSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.info.size(), 1u);
  EXPECT_EQ(snap.info.front().first, "solver");
  EXPECT_EQ(snap.info.front().second, "lanczos");
  ASSERT_EQ(snap.values.size(), 1u);
  EXPECT_EQ(snap.values.front().second, 18.0);
  EXPECT_EQ(snap.residual_count, 2u);
  ASSERT_EQ(snap.residual_tail.size(), 2u);
  EXPECT_EQ(snap.residual_tail[0], 0.5);   // oldest first
  EXPECT_EQ(snap.residual_tail[1], 0.25);
  EXPECT_EQ(snap.tracing_compiled_in, compiled_in());
}

TEST_F(ObsTest, ResidualRingKeepsTheMostRecentTailOldestFirst) {
  auto& m = metrics();
  const std::size_t total = MetricsRecorder::kResidualTail + 10;
  for (std::size_t i = 0; i < total; ++i)
    m.record_residual(static_cast<double>(i));

  const MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.residual_count, total);
  ASSERT_EQ(snap.residual_tail.size(), MetricsRecorder::kResidualTail);
  EXPECT_EQ(snap.residual_tail.front(), 10.0);  // entries 0..9 were evicted
  EXPECT_EQ(snap.residual_tail.back(), static_cast<double>(total - 1));
}

TEST_F(ObsTest, MetricsJsonHasTheStableSchema) {
  auto& m = metrics();
  m.set_info("simd_tier", "scalar");
  m.set_value("plan.tile_log2", 14.0);
  m.record_residual(1e-9);

  const std::string json = metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* key :
       {"\"schema_version\": 2", "\"tracing_compiled_in\"", "\"dropped_spans\"",
        "\"info\"", "\"values\"", "\"residuals\"", "\"histograms\"",
        "\"phases\"", "\"counters\"", "\"simd_tier\"", "\"plan.tile_log2\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(ObsTest, NonFiniteValuesExportAsNullNotAsBrokenJson) {
  metrics().set_value("bad", std::numeric_limits<double>::quiet_NaN());
  const std::string json = metrics_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST_F(ObsTest, MetricsCsvEmitsRaggedKindRows) {
  auto& m = metrics();
  m.set_info("tool", "obs_test");
  m.set_value("nu", 12.0);
  m.record_residual(0.75);

  std::ostringstream out;
  write_metrics_csv(out, m.snapshot());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("kind,name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("info,tool,obs_test\n"), std::string::npos);
  EXPECT_NE(csv.find("value,nu,12\n"), std::string::npos);
  EXPECT_NE(csv.find("residual,0,0.75\n"), std::string::npos);
}

TEST_F(ObsTest, FileWritersPickFormatByExtensionAndFailSoftly) {
  metrics().set_value("nu", 10.0);

  const auto json_path = temp_file(".json");
  const auto csv_path = temp_file(".csv");
  ASSERT_TRUE(write_metrics_file(json_path.string()));
  ASSERT_TRUE(write_metrics_file(csv_path.string()));
  ASSERT_TRUE(write_chrome_trace_file(temp_file(".trace.json").string()));

  std::stringstream json_text, csv_text;
  json_text << std::ifstream(json_path).rdbuf();
  csv_text << std::ifstream(csv_path).rdbuf();
  std::filesystem::remove(json_path);
  std::filesystem::remove(csv_path);
  std::filesystem::remove(temp_file(".trace.json"));

  EXPECT_EQ(json_text.str().front(), '{');
  EXPECT_NE(csv_text.str().find("kind,name,value"), std::string::npos);

  // Unwritable paths report false instead of throwing (the CLIs warn and
  // keep the solve's result).
  EXPECT_FALSE(write_metrics_file("/nonexistent-dir/qs-obs/m.json"));
  EXPECT_FALSE(write_chrome_trace_file("/nonexistent-dir/qs-obs/t.json"));
}

TEST_F(ObsTest, MintedTraceIdsAreNonZeroAndDistinct) {
  // Always compiled: span-less builds still mint ids for the wire.
  const std::uint64_t a = mint_trace_id();
  const std::uint64_t b = mint_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(ObsTest, SpansInheritTheThreadTraceContextAndScopesRestore) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  {
    const TraceScope outer(TraceContext{0xAAAAu});
    { QS_TRACE_SPAN("obs_test.outer", app); }
    {
      const TraceScope inner(TraceContext{0xBBBBu});
      { QS_TRACE_SPAN("obs_test.inner", app); }
    }
    // inner destroyed: the outer context must be back in force.
    QS_TRACE_INSTANT("obs_test.restored", app, 1.0);
  }
  { QS_TRACE_SPAN("obs_test.no_context", app); }

  const auto spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 4u);
  for (const SpanRecord& s : spans) {
    const std::string name = s.name;
    if (name == "obs_test.outer" || name == "obs_test.restored") {
      EXPECT_EQ(s.trace_id, 0xAAAAu) << name;
    } else if (name == "obs_test.inner") {
      EXPECT_EQ(s.trace_id, 0xBBBBu);
    } else {
      EXPECT_EQ(s.trace_id, 0u) << name;
    }
  }
}

TEST_F(ObsTest, ProcessTraceIsTheFallbackWhenTheThreadHasNone) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  set_process_trace(TraceContext{0xCCCCu});
  EXPECT_EQ(current_trace().trace_id, 0xCCCCu);
  {
    const TraceScope scope(TraceContext{0xDDDDu});
    EXPECT_EQ(current_trace().trace_id, 0xDDDDu);  // thread wins
  }
  EXPECT_EQ(current_trace().trace_id, 0xCCCCu);
  set_process_trace(TraceContext{});
}

TEST_F(ObsTest, SpanEventRecordsExplicitTimingAndTraceId) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  const std::uint64_t start = monotonic_ns() - 5000;
  span_event("obs_test.event", Category::app, start, 5000, 0x5151u, 9);
  const auto spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans.front().name, "obs_test.event");
  EXPECT_EQ(spans.front().start_ns, start);
  EXPECT_EQ(spans.front().dur_ns, 5000u);
  EXPECT_EQ(spans.front().trace_id, 0x5151u);
  EXPECT_EQ(spans.front().arg, 9);

  const std::string json = trace_json();
  EXPECT_NE(json.find("\"trace_id\":\"0x0000000000005151\""), std::string::npos)
      << json;
}

TEST_F(ObsTest, ImportedSpansGetRankTidsAndClearOnReset) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  SpanRecord remote{};
  remote.name = intern_span_name("obs_test.remote");
  remote.category = Category::distributed;
  remote.tid = 2;
  remote.start_ns = 100;
  remote.dur_ns = 50;
  remote.trace_id = 0x7777u;
  import_spans({remote}, kRankTidBase + 3 * kRankTidStride);

  const auto spans = snapshot_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().tid, kRankTidBase + 3 * kRankTidStride + 2);
  // Rank tids render as rank-R tracks in the Chrome export.
  const std::string json = trace_json();
  EXPECT_NE(json.find("rank-3"), std::string::npos) << json;

  reset();
  EXPECT_TRUE(snapshot_spans().empty());
}

TEST_F(ObsTest, SpanWireRoundTripsRecordsAndNames) {
  // Always compiled: the packer works on explicit records in every build.
  SpanRecord a{};
  a.name = intern_span_name("wire.a");
  a.category = Category::solver;
  a.tid = 1;
  a.start_ns = 1000;
  a.dur_ns = 250;
  a.cpu_ns = 200;
  a.trace_id = 0xABCDEF0123456789ull;
  a.arg = -1;
  a.value = 0.5;
  SpanRecord b = a;
  b.name = intern_span_name("wire.b");
  b.instant = true;
  b.arg = 42;

  const std::vector<double> packed = pack_spans({a, b});
  std::vector<SpanRecord> out;
  ASSERT_TRUE(unpack_spans(packed, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_STREQ(out[0].name, "wire.a");
  EXPECT_STREQ(out[1].name, "wire.b");
  EXPECT_EQ(out[0].trace_id, 0xABCDEF0123456789ull);
  EXPECT_EQ(out[0].start_ns, 1000u);
  EXPECT_EQ(out[0].dur_ns, 250u);
  EXPECT_FALSE(out[0].instant);
  EXPECT_TRUE(out[1].instant);
  EXPECT_EQ(out[1].arg, 42);
  EXPECT_EQ(out[1].category, Category::solver);

  // Malformed buffers append nothing and report failure.
  std::vector<SpanRecord> none;
  EXPECT_FALSE(unpack_spans(std::vector<double>{99999.0}, none));
  EXPECT_TRUE(none.empty());
  std::vector<double> truncated = packed;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(unpack_spans(truncated, none));
  EXPECT_TRUE(none.empty());
}

TEST_F(ObsTest, SpanRingOverflowCountsEveryDroppedSpanExactly) {
  if (!compiled_in()) GTEST_SKIP() << "needs a QS_ENABLE_TRACING build";
  set_enabled(true);
  // The per-thread ring holds 1 << 15 spans; everything beyond that on one
  // thread is overwritten and must be accounted, not silently lost.
  constexpr std::uint64_t kRing = std::uint64_t{1} << 15;
  constexpr std::uint64_t kRecorded = 40000;
  for (std::uint64_t i = 0; i < kRecorded; ++i) {
    QS_TRACE_INSTANT("obs_test.flood", app, 0.0);
  }
  EXPECT_EQ(dropped_spans(), kRecorded - kRing);
  EXPECT_EQ(snapshot_spans().size(), kRing);

  // The exact count ships in the Chrome trace metadata so a truncated
  // timeline is self-explaining.
  const std::string json = trace_json();
  const std::string expected =
      "\"dropped_spans\":" + std::to_string(kRecorded - kRing);
  EXPECT_NE(json.find(expected), std::string::npos);
}

TEST_F(ObsTest, PhasesAggregateFromTheSpanRings) {
  if (!compiled_in()) {
    // Compiled-out contract: the phase table is empty but present.
    EXPECT_TRUE(metrics().snapshot().phases.empty());
    GTEST_SKIP() << "span-backed phases need a QS_ENABLE_TRACING build";
  }
  set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    QS_TRACE_SPAN("obs_test.phase", kernel);
  }
  const MetricsSnapshot snap = metrics().snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases.front().name, "obs_test.phase");
  EXPECT_EQ(snap.phases.front().category, "kernel");
  EXPECT_EQ(snap.phases.front().count, 3u);
  EXPECT_GE(snap.phases.front().wall_seconds, 0.0);
}

}  // namespace
}  // namespace qs::obs
