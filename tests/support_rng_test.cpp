// Unit tests for the deterministic random number generator.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace qs {
namespace {

TEST(Xoshiro256, DeterministicAcrossInstances) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U[0,1) within 5 sigma of 0.5 (sigma = 1/sqrt(12 n)).
  EXPECT_NEAR(sum / n, 0.5, 5.0 / std::sqrt(12.0 * n));
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformIndexInRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.uniform_index(7), 7u);
  }
}

TEST(Xoshiro256, UniformIndexCoversAllValues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values from the public SplitMix64 specification with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(3);
  EXPECT_NE(rng(), rng());  // consecutive outputs differ with prob ~1
}

}  // namespace
}  // namespace qs
