// Unit tests for the time-dependent error rate dynamics.
#include "ode/time_varying.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "ode/integrators.hpp"
#include "ode/replicator.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"

namespace qs::ode {
namespace {

TEST(TimeVarying, ConstantRateMatchesAutonomousODE) {
  const unsigned nu = 7;
  const double p = 0.03;
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  const TimeVaryingReplicatorODE varying(landscape, [p](double) { return p; });
  const auto model = core::MutationModel::uniform(nu, p);
  const ReplicatorODE autonomous(model, landscape);

  std::vector<double> x_var(128, 0.0), x_auto(128, 0.0);
  x_var[0] = x_auto[0] = 1.0;
  double t = 0.0;
  for (int s = 0; s < 200; ++s) {
    rk4_step(varying, t, x_var, 0.05);
    rk4_step(autonomous, x_auto, 0.05);
  }
  EXPECT_NEAR(t, 10.0, 1e-12);
  EXPECT_LT(linalg::max_abs_diff(x_var, x_auto), 1e-12);
}

TEST(TimeVarying, MassStaysOnTheSimplex) {
  const auto landscape = core::Landscape::random(8, 5.0, 1.0, 3);
  const TimeVaryingReplicatorODE ode(landscape, [](double t) {
    return 0.01 + 0.02 * std::sin(t) * std::sin(t);  // oscillating dosing
  });
  std::vector<double> x(256, 1.0 / 256.0);
  double t = 0.0;
  integrate(ode, t, x, 0.05, 400);
  EXPECT_NEAR(linalg::sum(std::span<const double>(x)), 1.0, 1e-12);
  for (double v : x) EXPECT_GE(v, 0.0);
}

TEST(TimeVarying, DrugRampCrossesTheErrorThreshold) {
  // p ramps from deep inside the ordered phase to beyond p_max: the master
  // class must collapse during the ramp and the population end near
  // uniformity.
  const unsigned nu = 10;
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const double p_low = 0.01, p_high = 0.25;
  const double ramp_start = 20.0, ramp_end = 60.0;
  const TimeVaryingReplicatorODE ode(landscape, [=](double t) {
    if (t <= ramp_start) return p_low;
    if (t >= ramp_end) return p_high;
    return p_low + (p_high - p_low) * (t - ramp_start) / (ramp_end - ramp_start);
  });

  std::vector<double> x(sequence_count(nu), 0.0);
  x[0] = 1.0;
  double t = 0.0;
  integrate(ode, t, x, 0.02, 1000);  // settle in the ordered phase
  const double ordered_master = x[0];
  EXPECT_GT(ordered_master, 0.5);

  integrate(ode, t, x, 0.02, 4000);  // through the ramp and beyond
  EXPECT_LT(x[0], 0.01);
  const double uniform_level = 1.0 / static_cast<double>(sequence_count(nu));
  EXPECT_NEAR(x[0], uniform_level, 20.0 * uniform_level);
}

TEST(TimeVarying, DrugWashoutRestoresTheQuasispecies) {
  // A pulse above threshold followed by washout: the population must
  // recover to the pre-treatment stationary state (the dynamics are
  // globally attracting for fixed p).
  const unsigned nu = 8;
  const double p_natural = 0.02;
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto model = core::MutationModel::uniform(nu, p_natural);
  const auto stationary = solvers::solve(model, landscape);
  ASSERT_TRUE(stationary.converged);

  const TimeVaryingReplicatorODE ode(landscape, [=](double t) {
    return (t > 10.0 && t < 30.0) ? 0.3 : p_natural;  // pulse
  });
  std::vector<double> x = stationary.concentrations;
  double t = 0.0;
  integrate(ode, t, x, 0.02, 1000);  // into the pulse
  EXPECT_LT(x[0], 0.1);              // collapsed under the drug
  integrate(ode, t, x, 0.02, 20000);  // long washout
  EXPECT_LT(linalg::max_abs_diff(x, stationary.concentrations), 1e-6);
}

TEST(TimeVarying, RejectsBadRates) {
  const auto landscape = core::Landscape::flat(4, 1.0);
  EXPECT_THROW(TimeVaryingReplicatorODE(landscape, nullptr), precondition_error);
  const TimeVaryingReplicatorODE bad(landscape, [](double) { return 0.7; });
  std::vector<double> x(16, 1.0 / 16.0), dx(16);
  EXPECT_THROW(bad.derivative(0.0, x, dx), precondition_error);
}

}  // namespace
}  // namespace qs::ode
