// Unit tests for binomial coefficient tables.
#include "support/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.hpp"

namespace qs {
namespace {

TEST(BinomialRow, SmallKnownValues) {
  BinomialRow row(5);
  const std::uint64_t expected[] = {1, 5, 10, 10, 5, 1};
  for (unsigned k = 0; k <= 5; ++k) {
    EXPECT_EQ(row.exact(k), expected[k]);
    EXPECT_DOUBLE_EQ(row.value(k), static_cast<double>(expected[k]));
  }
}

TEST(BinomialRow, RowSumIsPowerOfTwo) {
  for (unsigned nu : {1u, 5u, 10u, 20u, 30u}) {
    BinomialRow row(nu);
    EXPECT_DOUBLE_EQ(row.row_sum(), std::ldexp(1.0, static_cast<int>(nu)));
  }
}

TEST(BinomialRow, Symmetry) {
  BinomialRow row(17);
  for (unsigned k = 0; k <= 17; ++k) {
    EXPECT_EQ(row.exact(k), row.exact(17 - k));
  }
}

TEST(BinomialRow, PascalIdentity) {
  BinomialRow upper(12);
  BinomialRow lower(11);
  for (unsigned k = 1; k <= 11; ++k) {
    EXPECT_EQ(upper.exact(k), lower.exact(k - 1) + lower.exact(k));
  }
}

TEST(BinomialRow, LargestExactRow) {
  // C(61, 30) is near the top of what fits exactly in 64 bits.
  BinomialRow row(61);
  EXPECT_EQ(row.exact(0), 1u);
  EXPECT_EQ(row.exact(61), 1u);
  EXPECT_GT(row.exact(30), row.exact(29));
}

TEST(BinomialRow, RejectsOutOfRange) {
  EXPECT_THROW(BinomialRow(62), precondition_error);
  BinomialRow row(4);
  EXPECT_THROW(row.exact(5), precondition_error);
  EXPECT_THROW(row.value(5), precondition_error);
}

TEST(BinomialReal, MatchesExactForSmallArguments) {
  for (unsigned n = 0; n <= 30; ++n) {
    for (unsigned k = 0; k <= n; ++k) {
      const double exact = static_cast<double>(binomial_exact(n, k));
      EXPECT_NEAR(binomial_real(n, k), exact, 1e-9 * exact + 1e-12)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialReal, LargeArgumentsFinite) {
  // C(1000, 500) ~ 2.7e299: near the top of the double range but finite.
  const double c = binomial_real(1000, 500);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 1e298);
}

TEST(BinomialExact, RejectsBadArguments) {
  EXPECT_THROW(binomial_exact(5, 6), precondition_error);
  EXPECT_THROW(binomial_exact(62, 1), precondition_error);
  EXPECT_THROW(binomial_real(5, 6), precondition_error);
}

}  // namespace
}  // namespace qs
