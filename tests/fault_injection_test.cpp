// Fault-injection tests: every failure family the resilience layer handles
// (poisoned products, throwing kernels, failing checkpoint I/O) is injected
// deterministically and the corresponding guard is shown to fire.
#include "testing/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "parallel/engine.hpp"
#include "solvers/arnoldi.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "solvers/shift_invert.hpp"

namespace qs {
namespace {

core::MutationModel test_model(unsigned nu = 8) {
  return core::MutationModel::uniform(nu, 0.01);
}

core::Landscape test_landscape(unsigned nu = 8) {
  return core::Landscape::single_peak(nu, 2.0, 1.0);
}

std::vector<double> nan_start(std::size_t n) {
  std::vector<double> start(n, 1.0);
  start[0] = std::numeric_limits<double>::quiet_NaN();
  return start;
}

// ---------------------------------------------------------------------------
// Structured failure instead of spinning: each iterative solver detects an
// injected NaN and reports SolverFailure::non_finite quickly.

TEST(FaultInjection, PowerIterationDetectsInjectedNan) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const core::FmmpOperator op(model, landscape);
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 5;
  const testing::FaultInjectingOperator faulty(op, cfg);

  solvers::PowerOptions opts;
  opts.max_iterations = 100000;
  const auto r = solvers::power_iteration(
      faulty, solvers::landscape_start(landscape), opts);
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
  // Fail-fast: the guard fires at the poisoned iteration, not at the cap.
  EXPECT_EQ(r.iterations, 5u);
}

TEST(FaultInjection, PowerIterationDetectsNanUnderParallelEngine) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const core::FmmpOperator op(model, landscape);
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 3;
  const testing::FaultInjectingOperator faulty(op, cfg);

  solvers::PowerOptions opts;
  opts.engine = &parallel::parallel_engine();
  const auto r = solvers::power_iteration(
      faulty, solvers::landscape_start(landscape), opts);
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
}

TEST(FaultInjection, LanczosDetectsNonFiniteState) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const auto r = solvers::lanczos_dominant_w(
      model, landscape, nan_start(landscape.dimension()));
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.restarts, 0u);  // caught inside the very first cycle
}

TEST(FaultInjection, ArnoldiDetectsNonFiniteState) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const auto r = solvers::arnoldi_dominant_w(
      model, landscape, nan_start(landscape.dimension()));
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.restarts, 0u);
}

TEST(FaultInjection, RayleighQuotientIterationDetectsNonFiniteState) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const auto r = solvers::rayleigh_quotient_iteration_w(
      model, landscape, nan_start(landscape.dimension()));
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.outer_iterations, 0u);  // caught before the outer loop starts
}

// ---------------------------------------------------------------------------
// Throwing kernels: the exception surfaces on the dispatching thread on
// every backend, including through the Fmmp/butterfly dispatch path.

TEST(FaultInjection, ThrowingOperatorPropagatesToTheCaller) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const core::FmmpOperator op(model, landscape);
  testing::FaultInjectingOperator::Config cfg;
  cfg.throw_at_apply = 3;
  const testing::FaultInjectingOperator faulty(op, cfg);
  EXPECT_THROW(
      solvers::power_iteration(faulty, solvers::landscape_start(landscape)),
      testing::InjectedFault);
  EXPECT_EQ(faulty.apply_count(), 3u);
}

class FaultyEngineTest : public ::testing::TestWithParam<parallel::Backend> {
 protected:
  std::unique_ptr<parallel::Engine> inner_ = make_engine(GetParam());
};

TEST_P(FaultyEngineTest, KernelThrowSurfacesOnTheDispatchingThread) {
  testing::FaultInjectingEngine::Config cfg;
  cfg.throw_at_dispatch = 1;
  const testing::FaultInjectingEngine engine(*inner_, cfg);
  EXPECT_THROW(engine.dispatch(100000, [](std::size_t, std::size_t) {}),
               testing::InjectedFault);
  // The wrapped backend completed its barrier and stays usable.
  std::vector<double> out(1000, 0.0);
  engine.dispatch(1000, [&out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = 1.0;
  });
  for (double v : out) ASSERT_EQ(v, 1.0);
}

TEST_P(FaultyEngineTest, ReduceThrowSurfacesOnTheDispatchingThread) {
  testing::FaultInjectingEngine::Config cfg;
  cfg.throw_at_reduce = 1;
  const testing::FaultInjectingEngine engine(*inner_, cfg);
  EXPECT_THROW(
      engine.reduce_partials(100000, [](std::size_t, std::size_t) { return 0.0; }),
      testing::InjectedFault);
  const double total = engine.reduce_partials(
      1000,
      [](std::size_t begin, std::size_t end) { return double(end - begin); });
  EXPECT_EQ(total, 1000.0);
}

TEST_P(FaultyEngineTest, ThrowInsideTheButterflyDispatchPath) {
  // The Fmmp product dispatches its butterfly levels through the engine; a
  // kernel fault deep inside that path must reach the power iteration's
  // caller as the injected exception, on every backend.
  const auto model = test_model();
  const auto landscape = test_landscape();
  testing::FaultInjectingEngine::Config cfg;
  cfg.throw_at_dispatch = 10;
  const testing::FaultInjectingEngine engine(*inner_, cfg);
  const core::FmmpOperator op(model, landscape, core::Formulation::right, &engine);
  solvers::PowerOptions opts;
  opts.engine = &engine;
  EXPECT_THROW(
      solvers::power_iteration(op, solvers::landscape_start(landscape), opts),
      testing::InjectedFault);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, FaultyEngineTest,
                         ::testing::Values(parallel::Backend::serial,
                                           parallel::Backend::openmp,
                                           parallel::Backend::thread_pool),
                         [](const auto& info) {
                           switch (info.param) {
                             case parallel::Backend::serial: return "serial";
                             case parallel::Backend::openmp: return "openmp";
                             case parallel::Backend::thread_pool: return "thread_pool";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// Checkpoint I/O failure: durability degrades, the solve does not die.

TEST(FaultInjection, FailingCheckpointSinkDoesNotKillTheSolve) {
  const auto model = test_model();
  const auto landscape = test_landscape();
  const core::FmmpOperator op(model, landscape);

  std::size_t delivered = 0;
  solvers::PowerOptions opts;
  opts.checkpoint_every = 10;
  opts.checkpoint_sink = testing::fault_injecting_checkpoint_sink(
      [&delivered](const io::SolverCheckpoint&) { ++delivered; },
      /*fail_at_write=*/2, /*fail_forever=*/true);
  const auto r =
      solvers::power_iteration(op, solvers::landscape_start(landscape), opts);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::none);
  EXPECT_GE(r.checkpoint_failures, 1u);
  EXPECT_EQ(delivered, 1u);  // only the first write got through
}

// ---------------------------------------------------------------------------
// Facade graceful degradation.

/// An owning adapter: SolveOptions::wrap_operator hands over ownership of
/// the inner operator, while FaultInjectingOperator only borrows one.
struct OwningFaultyOperator final : core::LinearOperator {
  std::unique_ptr<core::LinearOperator> held;
  testing::FaultInjectingOperator faulty;
  OwningFaultyOperator(std::unique_ptr<core::LinearOperator> op,
                       testing::FaultInjectingOperator::Config cfg)
      : held(std::move(op)), faulty(*held, cfg) {}
  seq_t dimension() const override { return faulty.dimension(); }
  std::string_view name() const override { return faulty.name(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    faulty.apply(x, y);
  }
};

std::function<std::unique_ptr<core::LinearOperator>(
    std::unique_ptr<core::LinearOperator>)>
inject_faults(testing::FaultInjectingOperator::Config cfg) {
  return [cfg](std::unique_ptr<core::LinearOperator> inner) {
    return std::unique_ptr<core::LinearOperator>(
        new OwningFaultyOperator(std::move(inner), cfg));
  };
}

class FacadeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qs_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(FacadeRecoveryTest, TransientNanRecoversFromTheLastCheckpoint) {
  const auto model = test_model();
  const auto landscape = test_landscape();

  solvers::SolveOptions opts;
  opts.checkpoint_path = dir_ / "solve.ck";
  opts.checkpoint_every = 4;
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 10;  // transient: exactly one poisoned product
  opts.wrap_operator = inject_faults(cfg);

  const auto r = solvers::solve(model, landscape, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::none);
  EXPECT_EQ(r.recovery_attempts, 1u);
}

TEST_F(FacadeRecoveryTest, NanWithoutCheckpointFallsBackToUnshifted) {
  const auto model = test_model();
  const auto landscape = test_landscape();

  solvers::SolveOptions opts;  // no checkpoint configured
  opts.use_shift = true;
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 5;
  opts.wrap_operator = inject_faults(cfg);

  const auto r = solvers::solve(model, landscape, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::none);
  EXPECT_EQ(r.recovery_attempts, 1u);
}

TEST_F(FacadeRecoveryTest, RecoveryDisabledReportsTheStructuredFailure) {
  const auto model = test_model();
  const auto landscape = test_landscape();

  solvers::SolveOptions opts;
  opts.recover = false;
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 5;
  cfg.nan_every_apply_after = true;
  opts.wrap_operator = inject_faults(cfg);

  const auto r = solvers::solve(model, landscape, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_EQ(r.recovery_attempts, 0u);
}

TEST_F(FacadeRecoveryTest, PersistentFaultStillFailsAfterOneRecoveryAttempt) {
  const auto model = test_model();
  const auto landscape = test_landscape();

  solvers::SolveOptions opts;
  opts.checkpoint_path = dir_ / "solve.ck";
  opts.checkpoint_every = 4;
  testing::FaultInjectingOperator::Config cfg;
  cfg.nan_at_apply = 10;
  cfg.nan_every_apply_after = true;  // the fault is permanent
  opts.wrap_operator = inject_faults(cfg);

  const auto r = solvers::solve(model, landscape, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, solvers::SolverFailure::non_finite);
  EXPECT_EQ(r.recovery_attempts, 1u);  // exactly one restart, then report
}

}  // namespace
}  // namespace qs
