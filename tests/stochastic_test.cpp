// Unit and statistical tests for the finite-population simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/site_process.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "stochastic/moran.hpp"
#include "stochastic/population.hpp"
#include "stochastic/sampling.hpp"
#include "stochastic/wright_fisher.hpp"
#include "support/contracts.hpp"

namespace qs::stochastic {
namespace {

TEST(Sampling, BinomialBoundaryCases) {
  Xoshiro256 rng(1);
  EXPECT_EQ(binomial_sample(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial_sample(rng, 100, 1.0), 100u);
  EXPECT_THROW(binomial_sample(rng, 10, 1.5), precondition_error);
}

TEST(Sampling, BinomialMomentsSmallNp) {
  // Exact inverse-CDF branch: mean and variance within 5 sigma.
  Xoshiro256 rng(2);
  const std::uint64_t n = 40;
  const double p = 0.1;
  const int reps = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double k = static_cast<double>(binomial_sample(rng, n, p));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / reps;
  const double var = sum_sq / reps - mean * mean;
  const double expected_mean = n * p;
  const double expected_var = n * p * (1 - p);
  EXPECT_NEAR(mean, expected_mean, 5.0 * std::sqrt(expected_var / reps));
  EXPECT_NEAR(var, expected_var, 0.15 * expected_var);
}

TEST(Sampling, BinomialMomentsLargeNp) {
  // Normal-approximation branch.
  Xoshiro256 rng(3);
  const std::uint64_t n = 100000;
  const double p = 0.3;
  const int reps = 5000;
  double sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto k = binomial_sample(rng, n, p);
    ASSERT_LE(k, n);
    sum += static_cast<double>(k);
  }
  const double mean = sum / reps;
  EXPECT_NEAR(mean, n * p, 5.0 * std::sqrt(n * p * (1 - p) / reps));
}

TEST(Sampling, MultinomialConservesTotal) {
  Xoshiro256 rng(4);
  std::vector<double> probs{0.5, 0.25, 0.125, 0.125};
  for (std::uint64_t n : {0ull, 1ull, 17ull, 100000ull}) {
    const auto counts = multinomial_sample(rng, n, probs);
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    EXPECT_EQ(total, n);
  }
}

TEST(Sampling, MultinomialMeansMatchProbabilities) {
  Xoshiro256 rng(5);
  std::vector<double> probs{0.6, 0.3, 0.1};
  const std::uint64_t n = 300000;
  const auto counts = multinomial_sample(rng, n, probs);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(n);
    const double tolerance = 5.0 * std::sqrt(expected);
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, tolerance) << i;
  }
}

TEST(Sampling, BinomialMirroredBranchesMatchMoments) {
  // p > 1/2 runs mirrored through both branches: small n*q hits the exact
  // inverse-CDF walk, large n*q the normal approximation.
  Xoshiro256 rng(21);
  struct Case {
    std::uint64_t n;
    double p;
    int reps;
  };
  for (const Case c : {Case{40, 0.9, 20000}, Case{100000, 0.7, 5000}}) {
    double sum = 0.0, sum_sq = 0.0;
    for (int r = 0; r < c.reps; ++r) {
      const auto k = binomial_sample(rng, c.n, c.p);
      ASSERT_LE(k, c.n);
      sum += static_cast<double>(k);
      sum_sq += static_cast<double>(k) * static_cast<double>(k);
    }
    const double mean = sum / c.reps;
    const double var = sum_sq / c.reps - mean * mean;
    const double expected_mean = static_cast<double>(c.n) * c.p;
    const double expected_var = static_cast<double>(c.n) * c.p * (1 - c.p);
    EXPECT_NEAR(mean, expected_mean, 5.0 * std::sqrt(expected_var / c.reps))
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, expected_var, 0.15 * expected_var)
        << "n=" << c.n << " p=" << c.p;
  }
}

TEST(Sampling, BinomialChiSquareAgainstExactPmf) {
  // Goodness of fit on the exact inverse-CDF branch: Bin(10, 0.3) against
  // the closed-form PMF.  11 cells, df = 10; chi^2 < 29.6 is the 0.1%
  // critical value — deterministic for the fixed seed.
  Xoshiro256 rng(22);
  const std::uint64_t n = 10;
  const double p = 0.3;
  const int reps = 50000;
  std::vector<double> observed(n + 1, 0.0);
  for (int r = 0; r < reps; ++r) ++observed[binomial_sample(rng, n, p)];

  std::vector<double> pmf(n + 1);
  pmf[0] = std::pow(1.0 - p, static_cast<double>(n));
  for (std::uint64_t k = 0; k < n; ++k) {
    pmf[k + 1] = pmf[k] * static_cast<double>(n - k) /
                 static_cast<double>(k + 1) * (p / (1.0 - p));
  }
  double chi_sq = 0.0;
  for (std::uint64_t k = 0; k <= n; ++k) {
    const double expected = pmf[k] * reps;
    chi_sq += (observed[k] - expected) * (observed[k] - expected) / expected;
  }
  EXPECT_LT(chi_sq, 29.6) << "chi^2 = " << chi_sq;
}

TEST(Sampling, MultinomialChiSquareAgainstProbabilities) {
  // One large multinomial draw is itself the chi-square statistic's input:
  // 4 cells, df = 3; 16.3 is the 0.1% critical value.
  Xoshiro256 rng(23);
  std::vector<double> probs{0.5, 0.25, 0.125, 0.125};
  const std::uint64_t n = 200000;
  const auto counts = multinomial_sample(rng, n, probs);
  double chi_sq = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(n);
    const double d = static_cast<double>(counts[i]) - expected;
    chi_sq += d * d / expected;
  }
  EXPECT_LT(chi_sq, 16.3) << "chi^2 = " << chi_sq;
}

TEST(Sampling, MultinomialZeroProbabilityTailNeverReceivesMass) {
  // Regression: the conditional-binomial loop used to dump the
  // floating-point remainder on counts.back() even when the final
  // categories carry zero probability — mass leaked into species the
  // expected-offspring distribution said were unreachable.  The remainder
  // must land on the last *positive*-probability category.
  Xoshiro256 rng(24);
  for (int rep = 0; rep < 2000; ++rep) {
    const std::size_t head = 1 + static_cast<std::size_t>(rng() % 6);
    const std::size_t tail = 1 + static_cast<std::size_t>(rng() % 3);
    std::vector<double> probs(head + tail, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < head; ++i) {
      probs[i] = rng.uniform(1e-6, 1.0);
      total += probs[i];
    }
    for (std::size_t i = 0; i < head; ++i) probs[i] /= total;

    const std::uint64_t n = 1 + rng() % 10000;
    const auto counts = multinomial_sample(rng, n, probs);
    std::uint64_t drawn = 0;
    for (auto c : counts) drawn += c;
    ASSERT_EQ(drawn, n);
    for (std::size_t i = head; i < probs.size(); ++i) {
      ASSERT_EQ(counts[i], 0u) << "rep " << rep << ": zero-probability "
                               << "category " << i << " received mass";
    }
  }
}

TEST(Sampling, MultinomialSingleAndInteriorPositiveCategory) {
  Xoshiro256 rng(25);
  std::vector<double> single{1.0};
  EXPECT_EQ(multinomial_sample(rng, 42, single), std::vector<std::uint64_t>{42});

  std::vector<double> interior{0.0, 1.0, 0.0};
  const auto counts = multinomial_sample(rng, 1000, interior);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1000u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Sampling, MultinomialSampleIntoReusesBuffer) {
  Xoshiro256 rng(26);
  std::vector<double> probs{0.25, 0.75};
  std::vector<std::uint64_t> counts{7, 7};  // stale values must be cleared
  multinomial_sample_into(rng, 100, probs, counts);
  EXPECT_EQ(counts[0] + counts[1], 100u);
  std::vector<std::uint64_t> wrong_size(3, 0);
  EXPECT_THROW(multinomial_sample_into(rng, 100, probs, wrong_size),
               precondition_error);
}

TEST(Sampling, MultinomialRejectsBadInput) {
  Xoshiro256 rng(6);
  std::vector<double> not_normalised{0.5, 0.4};
  EXPECT_THROW(multinomial_sample(rng, 10, not_normalised), precondition_error);
  std::vector<double> negative{1.2, -0.2};
  EXPECT_THROW(multinomial_sample(rng, 10, negative), precondition_error);
}

TEST(Sampling, CategoricalRespectsWeights) {
  Xoshiro256 rng(7);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  const int reps = 40000;
  for (int r = 0; r < reps; ++r) ++hits[categorical_sample(rng, weights)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / reps, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / reps, 0.75, 0.02);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(categorical_sample(rng, zeros), precondition_error);
}

TEST(Sampling, CategoricalNeverReturnsZeroWeightIndex) {
  // Regression: the linear-scan fall-through used to return the final
  // index even when its weight is zero.  Every returned index must carry
  // positive weight, including under zero tails and interior zeros.
  Xoshiro256 rng(27);
  std::vector<double> tail{1.0, 0.0};
  for (int r = 0; r < 20000; ++r) EXPECT_EQ(categorical_sample(rng, tail), 0u);

  std::vector<double> interior{0.0, 2.0, 0.0, 0.0};
  for (int r = 0; r < 1000; ++r) EXPECT_EQ(categorical_sample(rng, interior), 1u);

  for (int rep = 0; rep < 2000; ++rep) {
    std::vector<double> weights(6, 0.0);
    for (double& w : weights) {
      if (rng.uniform() < 0.5) w = rng.uniform(1e-6, 1.0);
    }
    weights[1 + rng() % 4] = rng.uniform(1e-6, 1.0);  // >= 1 positive weight
    weights.back() = 0.0;
    const std::size_t idx = categorical_sample(rng, weights);
    ASSERT_GT(weights[idx], 0.0) << "rep " << rep;
  }
}

TEST(Sampling, SanitizeClampsThenNormalizes) {
  // The fast mutation product leaves O(eps) negative dust on near-zero
  // entries.  Clamping AFTER normalising re-introduces a sum error of twice
  // the clamped mass; with enough dust that trips the samplers'
  // |sum - 1| < 1e-6 precondition.  sanitize_distribution clamps first.
  Xoshiro256 rng(28);
  std::vector<double> dusty{0.6, -2e-3, 0.4};

  // The old order: normalise by the 1-norm, then clamp.
  std::vector<double> old_order = dusty;
  double norm = 0.0;
  for (double v : old_order) norm += std::abs(v);
  for (double& v : old_order) v /= norm;
  for (double& v : old_order) v = std::max(v, 0.0);
  EXPECT_THROW(multinomial_sample(rng, 100, old_order), precondition_error);

  // The fixed order: clamp, then renormalise — exactly sampler-ready.
  std::vector<double> fixed = dusty;
  sanitize_distribution(fixed);
  double sum = 0.0;
  for (double v : fixed) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const auto counts = multinomial_sample(rng, 100, fixed);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 100u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(Sampling, SanitizeHandlesNonFiniteAndRejectsEmptyMass) {
  std::vector<double> v{-0.0, 0.5, std::nan(""), 0.5};
  sanitize_distribution(v);
  EXPECT_EQ(v[0], 0.0);
  EXPECT_NEAR(v[1], 0.5, 1e-15);
  EXPECT_EQ(v[2], 0.0);
  EXPECT_NEAR(v[3], 0.5, 1e-15);

  std::vector<double> no_mass{-1.0, 0.0, -0.0};
  EXPECT_THROW(sanitize_distribution(no_mass), precondition_error);
  std::vector<double> infinite{1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(sanitize_distribution(infinite), precondition_error);
}

TEST(Population, FactoriesAndInvariants) {
  const auto mono = Population::monomorphic(6, 1000);
  EXPECT_EQ(mono.size(), 1000u);
  EXPECT_EQ(mono.counts()[0], 1000u);
  EXPECT_EQ(mono.occupied_species(), 1u);

  const auto uni = Population::uniform(6, 1000);
  EXPECT_EQ(uni.size(), 1000u);
  EXPECT_EQ(uni.occupied_species(), 64u);
  std::uint64_t total = 0;
  for (auto c : uni.counts()) total += c;
  EXPECT_EQ(total, 1000u);

  const auto freqs = uni.frequencies();
  double sum = 0.0;
  for (double f : freqs) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_THROW(Population(30, 1), precondition_error);
}

TEST(WrightFisher, ExpectedOffspringIsTheDeterministicMap) {
  // E[next frequencies] = Q F x / |..|: the deterministic quasispecies map.
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  WrightFisher wf(model, landscape, 1);

  auto pop = Population::uniform(nu, 6400);
  const auto pi = wf.expected_offspring(pop);
  // Manual computation.
  std::vector<double> manual(64);
  const auto x = pop.frequencies();
  for (std::size_t i = 0; i < 64; ++i) manual[i] = landscape.value(i) * x[i];
  model.apply(manual);
  linalg::normalize1(manual);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(pi[i], manual[i], 1e-12);
}

TEST(WrightFisher, ExpectedOffspringIsSamplerReady) {
  // Regression: expected_offspring used to normalise BEFORE clamping the
  // fast product's negative rounding dust, so the returned vector could
  // drift past the multinomial sampler's |sum - 1| < 1e-6 precondition.
  // Clamp-then-renormalise must hand the sampler an exactly valid
  // distribution for every population it sees.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.004);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  WrightFisher wf(model, landscape, 16);
  Xoshiro256 rng(17);

  auto pop = Population::uniform(nu, 4000);
  for (int g = 0; g < 10; ++g) {
    const auto pi = wf.expected_offspring(pop);
    double sum = 0.0;
    for (double v : pi) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-12);
    // The actual contract: the sampler accepts it without renormalisation.
    multinomial_sample_into(rng, pop.size(), pi, pop.counts());
    pop.refresh_size();
    ASSERT_EQ(pop.size(), 4000u);
  }
}

TEST(WrightFisher, StepConservesPopulationSize) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  WrightFisher wf(model, landscape, 2);
  auto pop = Population::monomorphic(nu, 5000);
  for (int g = 0; g < 20; ++g) {
    wf.step(pop);
    ASSERT_EQ(pop.size(), 5000u);
  }
}

TEST(WrightFisher, DeterministicBySeed) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  WrightFisher a(model, landscape, 99);
  WrightFisher b(model, landscape, 99);
  auto pa = Population::monomorphic(nu, 1000);
  auto pb = Population::monomorphic(nu, 1000);
  for (int g = 0; g < 10; ++g) {
    a.step(pa);
    b.step(pb);
  }
  for (std::size_t i = 0; i < pa.counts().size(); ++i) {
    ASSERT_EQ(pa.counts()[i], pb.counts()[i]);
  }
}

TEST(WrightFisher, LargePopulationApproachesQuasispecies) {
  // Infinite-population limit: time-averaged frequencies of a large
  // population approximate the dominant eigenvector of W.
  const unsigned nu = 6;
  const double p = 0.02;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  const core::FmmpOperator op(model, landscape);
  const auto eigen = solvers::power_iteration(op, solvers::landscape_start(landscape));
  ASSERT_TRUE(eigen.converged);

  WrightFisher wf(model, landscape, 11);
  auto pop = Population::monomorphic(nu, 200000);
  const auto average = wf.run(pop, 400, 200);

  // Sampling noise per class ~ 1/sqrt(N_pop * window); compare class sums
  // (coarser, statistically stable).
  const auto sim_classes = analysis::class_concentrations(nu, average);
  const auto det_classes = analysis::class_concentrations(nu, eigen.eigenvector);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(sim_classes[k], det_classes[k], 0.02) << "k=" << k;
  }
}

TEST(WrightFisher, MutationFreeLimitFixatesOnTheFittest) {
  // Without mutation pressure (p -> 0+), selection fixes the master.
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 1e-12);
  const auto landscape = core::Landscape::single_peak(nu, 3.0, 1.0);
  WrightFisher wf(model, landscape, 12);
  auto pop = Population::uniform(nu, 2000);
  wf.run(pop, 200);
  EXPECT_GT(pop.counts()[0], 1990u);
}

TEST(Moran, EventConservesPopulation) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  Moran moran(model, landscape, 13);
  auto pop = Population::monomorphic(nu, 500);
  for (int e = 0; e < 1000; ++e) {
    moran.event(pop);
  }
  pop.refresh_size();
  EXPECT_EQ(pop.size(), 500u);
}

TEST(Moran, AgreesWithWrightFisherOnClassSums) {
  const unsigned nu = 5;
  const double p = 0.03;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  Moran moran(model, landscape, 14);
  auto pop_m = Population::monomorphic(nu, 3000);
  // Burn in, then time average over events.
  moran.run(pop_m, 3000 * 50);
  std::vector<double> avg(32, 0.0);
  const int samples = 200;
  for (int s = 0; s < samples; ++s) {
    moran.run(pop_m, 3000);  // one generation between samples
    const auto x = pop_m.frequencies();
    for (std::size_t i = 0; i < 32; ++i) avg[i] += x[i] / samples;
  }

  WrightFisher wf(model, landscape, 15);
  auto pop_w = Population::monomorphic(nu, 3000);
  const auto wf_avg = wf.run(pop_w, 400, 300);

  const auto cm = analysis::class_concentrations(nu, avg);
  const auto cw = analysis::class_concentrations(nu, wf_avg);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(cm[k], cw[k], 0.05) << "k=" << k;
  }
}

TEST(Moran, RejectsGroupedModel) {
  const auto grouped = core::MutationModel::grouped(
      {core::coupled_single_flip_group(2, 0.2)});
  const auto landscape = core::Landscape::flat(2, 1.0);
  EXPECT_THROW(Moran(grouped, landscape, 1), precondition_error);
}

}  // namespace
}  // namespace qs::stochastic
