// core::RequestQueue: admission control, batch-key coalescing, deadline
// expiry, drain — plus the multi-threaded stress the TSAN preset runs.
#include "core/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/timer.hpp"

namespace qs::core {
namespace {

using Queue = RequestQueue<int>;

constexpr std::uint64_t kShortWait = 1000000;  // 1 ms in ns

TEST(RequestQueue, AcceptsUntilCapacityThenShedsWithOverload) {
  Queue queue(2);
  EXPECT_EQ(queue.push(1, 0), Admission::accepted);
  EXPECT_EQ(queue.push(2, 0), Admission::accepted);
  EXPECT_EQ(queue.push(3, 0), Admission::rejected_overload);
  EXPECT_EQ(queue.depth(), 2u);
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected_overload, 1u);
}

TEST(RequestQueue, PopBatchCoalescesByHeadKeyWithoutReordering) {
  Queue queue(8);
  // Keys interleaved: a a b a b.  The first pop must return the three a's
  // (head key) and leave the b's in order.
  ASSERT_EQ(queue.push(10, 7), Admission::accepted);
  ASSERT_EQ(queue.push(11, 7), Admission::accepted);
  ASSERT_EQ(queue.push(20, 9), Admission::accepted);
  ASSERT_EQ(queue.push(12, 7), Admission::accepted);
  ASSERT_EQ(queue.push(21, 9), Admission::accepted);

  auto batch = queue.pop_batch(8, kShortWait);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].value, 10);
  EXPECT_EQ(batch[1].value, 11);
  EXPECT_EQ(batch[2].value, 12);
  for (const auto& entry : batch) EXPECT_EQ(entry.batch_key, 7u);

  batch = queue.pop_batch(8, kShortWait);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].value, 20);
  EXPECT_EQ(batch[1].value, 21);
}

TEST(RequestQueue, PopBatchRespectsWidthCap) {
  Queue queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(queue.push(i, 1), Admission::accepted);
  EXPECT_EQ(queue.pop_batch(3, kShortWait).size(), 3u);
  EXPECT_EQ(queue.pop_batch(3, kShortWait).size(), 2u);
}

TEST(RequestQueue, ExpiredEntriesRouteToCallbackNotToConsumers) {
  Queue queue(8);
  const std::uint64_t past = monotonic_ns() - 1;
  ASSERT_EQ(queue.push(1, 0, past), Admission::accepted);
  ASSERT_EQ(queue.push(2, 0), Admission::accepted);

  std::vector<int> expired;
  auto batch = queue.pop_batch(8, kShortWait,
                               [&](Queue::Entry&& e) { expired.push_back(e.value); });
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].value, 2);
  EXPECT_EQ(queue.stats().expired, 1u);
}

TEST(RequestQueue, EnqueueTimestampEnablesQueueWaitMetric) {
  Queue queue(2);
  const std::uint64_t before = monotonic_ns();
  ASSERT_EQ(queue.push(1, 0), Admission::accepted);
  auto batch = queue.pop_batch(1, kShortWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_GE(batch[0].enqueued_ns, before);
  EXPECT_LE(batch[0].enqueued_ns, monotonic_ns());
}

TEST(RequestQueue, CloseRejectsPushesAndDrainsRemaining) {
  Queue queue(4);
  ASSERT_EQ(queue.push(1, 0), Admission::accepted);
  queue.close();
  EXPECT_EQ(queue.push(2, 0), Admission::rejected_closed);
  EXPECT_TRUE(queue.closed());
  auto batch = queue.pop_batch(4, kShortWait);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].value, 1);
  // Closed and drained: pops return empty immediately, never hang.
  EXPECT_TRUE(queue.pop_batch(4, kShortWait).empty());
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  Queue queue(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    // 10 s wait: only the close() below can end this promptly.
    (void)queue.pop_batch(4, 10ull * 1000000000ull);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

// The TSAN stress: many producers, many consumers, every entry accounted
// for exactly once across popped/expired/shed.  Runs in qs_tsan_tests where
// ThreadSanitizer checks the locking discipline and in qs_tests as a plain
// race-free accounting check.
TEST(RequestQueueStress, ConcurrentProducersAndConsumersAccountForEveryEntry) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;

  Queue queue(64);
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<std::uint64_t> expired{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        // A few batch keys so coalescing paths run; every 16th entry gets
        // an already-passed deadline so expiry sweeps run concurrently too.
        const std::uint64_t key = static_cast<std::uint64_t>(i % 3);
        const std::uint64_t deadline = (i % 16 == 0) ? monotonic_ns() - 1 : 0;
        switch (queue.push(t * kPerProducer + i, key, deadline)) {
          case Admission::accepted: ++accepted; break;
          case Admission::rejected_overload: ++shed; break;
          case Admission::rejected_closed: ++shed; break;
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&] {
      for (;;) {
        auto batch = queue.pop_batch(8, kShortWait,
                                     [&](Queue::Entry&&) { ++expired; });
        consumed += batch.size();
        if (batch.empty() && queue.closed()) return;
      }
    });
  }

  for (auto& p : producers) p.join();
  queue.close();
  for (auto& c : consumers) c.join();

  EXPECT_EQ(accepted + shed, kProducers * kPerProducer);
  EXPECT_EQ(consumed + expired, accepted);
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.popped, consumed);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace qs::core
