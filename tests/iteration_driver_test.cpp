// Unit tests for the shared iteration scaffolding (solvers/iteration_driver).
//
// The solver-level tests exercise the driver end to end; these pin down the
// contract of each primitive in isolation: the observe verdicts (tolerance,
// stall window, stall_accept), the NaN/Inf guards, the checkpoint cadence
// and failure accounting, verbatim restore, and restore_trace's kind and
// health checks.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/binary_io.hpp"
#include "solvers/iteration_driver.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

using Verdict = IterationDriver::Verdict;

TEST(IterationDriverTest, ObserveConvergesAtTheTolerance) {
  IterationOptions options;
  options.tolerance = 1e-8;
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  EXPECT_EQ(driver.observe(1, 1e-7, out), Verdict::proceed);
  EXPECT_FALSE(out.converged);
  EXPECT_EQ(driver.observe(2, 1e-8, out), Verdict::converged);
  EXPECT_TRUE(out.converged);
}

TEST(IterationDriverTest, ObserveFiresTheResidualHook) {
  IterationOptions options;
  options.tolerance = 0.0;
  std::vector<std::pair<unsigned, double>> seen;
  options.on_residual = [&](unsigned it, double res) { seen.emplace_back(it, res); };
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  driver.observe(3, 0.5, out);
  driver.observe(4, 0.25, out);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<unsigned, double>{3, 0.5}));
  EXPECT_EQ(seen[1], (std::pair<unsigned, double>{4, 0.25}));
}

TEST(IterationDriverTest, StallWindowFiresAndStallAcceptDecidesConvergence) {
  IterationOptions options;
  options.tolerance = 0.0;  // never converge on tolerance
  options.stall_window = 3;
  options.stall_accept = 1e-2;
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  // The first full window only establishes the reference best (it always
  // counts as progress against the initial infinity); a second window with a
  // flat residual then fires the stall.
  for (unsigned it = 1; it <= 5; ++it) {
    EXPECT_EQ(driver.observe(it, 1e-3, out), Verdict::proceed) << it;
  }
  EXPECT_EQ(driver.observe(6, 1e-3, out), Verdict::stalled);
  EXPECT_TRUE(out.stalled);
  // The floor sits below stall_accept, so the stalled run still counts as
  // converged.
  EXPECT_TRUE(out.converged);
}

TEST(IterationDriverTest, StallAboveStallAcceptIsNotConverged) {
  IterationOptions options;
  options.tolerance = 0.0;
  options.stall_window = 2;
  options.stall_accept = 1e-9;
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  EXPECT_EQ(driver.observe(1, 0.5, out), Verdict::proceed);
  EXPECT_EQ(driver.observe(2, 0.5, out), Verdict::proceed);  // reference window
  EXPECT_EQ(driver.observe(3, 0.5, out), Verdict::proceed);
  EXPECT_EQ(driver.observe(4, 0.5, out), Verdict::stalled);
  EXPECT_TRUE(out.stalled);
  EXPECT_FALSE(out.converged);
}

TEST(IterationDriverTest, ProgressResetsTheStallWindow) {
  IterationOptions options;
  options.tolerance = 0.0;
  options.stall_window = 2;
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  // Each window ends with the best residual improved by more than 5 %, so
  // the accounting resets instead of stalling.
  EXPECT_EQ(driver.observe(1, 1e-1, out), Verdict::proceed);
  EXPECT_EQ(driver.observe(2, 1e-2, out), Verdict::proceed);
  EXPECT_EQ(driver.observe(3, 1e-3, out), Verdict::proceed);
  EXPECT_EQ(driver.observe(4, 1e-4, out), Verdict::proceed);
  EXPECT_FALSE(out.stalled);
}

TEST(IterationDriverTest, GuardStampsAStructuredFailure) {
  IterationOptions options;
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;

  EXPECT_TRUE(driver.guard({1.0, 2.0}, out));
  EXPECT_EQ(out.failure, SolverFailure::none);

  out.converged = true;
  EXPECT_FALSE(driver.guard({1.0, std::nan("")}, out));
  EXPECT_EQ(out.failure, SolverFailure::non_finite);
  EXPECT_FALSE(out.converged);

  IterationResult out2;
  const std::vector<double> poisoned = {
      0.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(driver.guard(std::span<const double>(poisoned), out2));
  EXPECT_EQ(out2.failure, SolverFailure::non_finite);
}

TEST(IterationDriverTest, CheckpointCadenceAndPayloadThroughTheSink) {
  IterationOptions options;
  options.checkpoint_every = 3;
  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };
  IterationDriver driver(options, io::SolverKind::lanczos);
  ASSERT_TRUE(driver.checkpointing());

  IterationResult out;
  out.eigenvalue = 2.5;
  out.residual = 0.5;  // the caller stamps eigenvalue/residual, not observe
  driver.observe(1, 0.5, out);
  const std::vector<double> iterate = {0.25, 0.75};
  for (unsigned it = 1; it <= 7; ++it) {
    driver.maybe_checkpoint(it, out, iterate, /*matvec_count=*/it * 10,
                            /*aux=*/1.5);
  }

  ASSERT_EQ(checkpoints.size(), 2u);  // iterations 3 and 6
  const io::SolverCheckpoint& ck = checkpoints.front();
  EXPECT_EQ(ck.iteration, 3u);
  EXPECT_EQ(checkpoints.back().iteration, 6u);
  EXPECT_EQ(ck.solver_kind, io::SolverKind::lanczos);
  EXPECT_EQ(ck.eigenvalue, 2.5);
  EXPECT_EQ(ck.residual, 0.5);
  EXPECT_EQ(ck.best_residual, 0.5);
  EXPECT_EQ(ck.matvec_count, 30u);
  EXPECT_EQ(ck.aux, 1.5);
  EXPECT_EQ(ck.eigenvector, iterate);
}

TEST(IterationDriverTest, TimeCadenceAloneDrivesCheckpointsAndResetsOnWrite) {
  IterationOptions options;
  options.checkpoint_every = 0;  // pure wall-clock cadence
  options.checkpoint_every_seconds = 0.005;
  unsigned writes = 0;
  options.checkpoint_sink = [&](const io::SolverCheckpoint&) { ++writes; };
  IterationDriver driver(options, io::SolverKind::power);
  ASSERT_TRUE(driver.checkpointing());

  IterationResult out;
  const std::vector<double> iterate = {1.0};
  driver.maybe_checkpoint(1, out, iterate);
  EXPECT_EQ(writes, 0u);  // interval has not elapsed yet
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  driver.maybe_checkpoint(2, out, iterate);
  EXPECT_EQ(writes, 1u);
  driver.maybe_checkpoint(3, out, iterate);  // the write reset the clock
  EXPECT_EQ(writes, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  driver.maybe_checkpoint(4, out, iterate);
  EXPECT_EQ(writes, 2u);
}

TEST(IterationDriverTest, TimeAndIterationCadencesAreAUnion) {
  // A far-away time cadence must not suppress the iteration cadence …
  IterationOptions options;
  options.checkpoint_every = 3;
  options.checkpoint_every_seconds = 3600.0;
  unsigned writes = 0;
  options.checkpoint_sink = [&](const io::SolverCheckpoint&) { ++writes; };
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;
  const std::vector<double> iterate = {1.0};
  for (unsigned it = 1; it <= 7; ++it) driver.maybe_checkpoint(it, out, iterate);
  EXPECT_EQ(writes, 2u);  // iterations 3 and 6, exactly as without the clock

  // … and an elapsed time cadence fires between iteration-cadence marks.
  IterationOptions both;
  both.checkpoint_every = 1000000;
  both.checkpoint_every_seconds = 0.005;
  unsigned timed_writes = 0;
  both.checkpoint_sink = [&](const io::SolverCheckpoint&) { ++timed_writes; };
  IterationDriver timed(both, io::SolverKind::power);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timed.maybe_checkpoint(2, out, iterate);  // not a multiple of 1000000
  EXPECT_EQ(timed_writes, 1u);
}

TEST(IterationDriverTest, NegativeSecondsCadenceIsRejected) {
  IterationOptions options;
  options.checkpoint_every_seconds = -1.0;
  EXPECT_THROW(IterationDriver(options, io::SolverKind::power),
               precondition_error);
}

TEST(IterationDriverTest, NoPathAndNoSinkMeansNoCheckpointing) {
  IterationOptions options;
  options.checkpoint_every = 1;  // cadence alone is not enough
  IterationDriver driver(options, io::SolverKind::power);
  EXPECT_FALSE(driver.checkpointing());
}

TEST(IterationDriverTest, AThrowingSinkIsCountedNotFatal) {
  IterationOptions options;
  options.checkpoint_every = 1;
  options.checkpoint_sink = [](const io::SolverCheckpoint&) {
    throw std::runtime_error("disk full");
  };
  IterationDriver driver(options, io::SolverKind::power);
  IterationResult out;
  const std::vector<double> iterate = {1.0};

  EXPECT_NO_THROW(driver.write_checkpoint(1, out, iterate));
  EXPECT_NO_THROW(driver.maybe_checkpoint(2, out, iterate));
  EXPECT_EQ(out.checkpoint_failures, 2u);
  EXPECT_EQ(out.failure, SolverFailure::none);
}

TEST(IterationDriverTest, RestoreContinuesTheStallAccountingVerbatim) {
  IterationOptions options;
  options.tolerance = 0.0;
  options.stall_window = 3;
  options.stall_accept = 1e-2;
  std::vector<io::SolverCheckpoint> checkpoints;
  options.checkpoint_sink = [&](const io::SolverCheckpoint& ck) {
    checkpoints.push_back(ck);
  };

  // One full flat window establishes the reference best, then two more flat
  // checks leave the first driver one check away from stalling; the
  // checkpoint carries exactly that state.
  IterationDriver first(options, io::SolverKind::power);
  IterationResult out;
  for (unsigned it = 1; it <= 5; ++it) first.observe(it, 1e-3, out);
  const std::vector<double> iterate = {1.0};
  first.write_checkpoint(5, out, iterate);
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints.front().checks_without_progress, 2u);
  EXPECT_EQ(checkpoints.front().window_start_best, 1e-3);

  // A restored driver stalls on its very next flat check — exactly where
  // the uninterrupted run would have.
  IterationDriver second(options, io::SolverKind::power);
  second.restore(checkpoints.front());
  IterationResult out2;
  EXPECT_EQ(second.observe(6, 1e-3, out2), Verdict::stalled);
  EXPECT_TRUE(out2.stalled);

  // A fresh driver without the restored state needs its full window again.
  IterationDriver fresh(options, io::SolverKind::power);
  IterationResult out3;
  EXPECT_EQ(fresh.observe(6, 1e-3, out3), Verdict::proceed);
}

TEST(IterationDriverTest, CheckpointPathRoundTripsThroughBinaryIo) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("qs_iteration_driver_test_" + std::to_string(::getpid()) + ".ck");

  IterationOptions options;
  options.checkpoint_every = 1;
  options.checkpoint_path = path;
  IterationDriver driver(options, io::SolverKind::arnoldi);
  ASSERT_TRUE(driver.checkpointing());

  IterationResult out;
  out.eigenvalue = 3.25;
  out.residual = 0.125;
  driver.observe(5, 0.125, out);
  const std::vector<double> iterate = {0.5, 0.25, 0.125};
  driver.maybe_checkpoint(5, out, iterate, /*matvec_count=*/42, /*aux=*/-1.0);

  const io::SolverCheckpoint loaded = io::load_checkpoint(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.iteration, 5u);
  EXPECT_EQ(loaded.solver_kind, io::SolverKind::arnoldi);
  EXPECT_EQ(loaded.eigenvalue, 3.25);
  EXPECT_EQ(loaded.residual, 0.125);
  EXPECT_EQ(loaded.matvec_count, 42u);
  EXPECT_EQ(loaded.aux, -1.0);
  EXPECT_EQ(loaded.eigenvector, iterate);
}

TEST(IterationDriverTest, ShouldCheckHonoursCadenceAndTheFinalIteration) {
  IterationOptions options;
  options.residual_check_every = 4;
  IterationDriver driver(options, io::SolverKind::power);

  EXPECT_FALSE(driver.should_check(1, 10));
  EXPECT_TRUE(driver.should_check(4, 10));
  EXPECT_FALSE(driver.should_check(9, 10));
  EXPECT_TRUE(driver.should_check(10, 10));  // last iteration always checks
}

TEST(IterationDriverTest, ZeroResidualCadenceIsRejected) {
  IterationOptions options;
  options.residual_check_every = 0;
  EXPECT_THROW(IterationDriver(options, io::SolverKind::power),
               precondition_error);
}

TEST(IterationDriverTest, RestoreTraceRefusesAMismatchedKind) {
  io::SolverCheckpoint ck;
  ck.iteration = 7;
  ck.solver_kind = io::SolverKind::arnoldi;
  ck.eigenvector = {1.0, 2.0};

  IterationTrace trace;
  IterationResult out;
  try {
    restore_trace(ck, io::SolverKind::lanczos, trace, out);
    FAIL() << "restore_trace accepted a checkpoint from another solver";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("arnoldi"), std::string::npos) << what;
    EXPECT_NE(what.find("lanczos"), std::string::npos) << what;
  }
}

TEST(IterationDriverTest, UnspecifiedKindIsThePowerIterationOnly) {
  io::SolverCheckpoint ck;  // v2 file: kind defaults to unspecified
  ck.iteration = 1;
  ck.eigenvector = {1.0};

  IterationTrace trace;
  IterationResult out;
  EXPECT_TRUE(restore_trace(ck, io::SolverKind::power, trace, out));
  EXPECT_THROW(restore_trace(ck, io::SolverKind::block_power, trace, out),
               precondition_error);
}

TEST(IterationDriverTest, RestoreTraceTakesTheCheckpointVerbatim) {
  io::SolverCheckpoint ck;
  ck.iteration = 9;
  ck.solver_kind = io::SolverKind::shift_invert;
  ck.eigenvalue = 4.5;
  ck.residual = 1e-5;
  ck.matvec_count = 123;
  ck.aux = 2.5;
  ck.eigenvector = {0.1, 0.2, 0.3};

  IterationTrace trace;
  IterationResult out;
  ASSERT_TRUE(restore_trace(ck, io::SolverKind::shift_invert, trace, out));
  EXPECT_EQ(trace.start_iteration, 9u);
  EXPECT_EQ(trace.eigenvalue, 4.5);
  EXPECT_EQ(trace.residual, 1e-5);
  EXPECT_EQ(trace.matvec_count, 123u);
  EXPECT_EQ(trace.aux, 2.5);
  EXPECT_EQ(trace.iterate, ck.eigenvector);
}

TEST(IterationDriverTest, RestoreTraceRefusesAPoisonedIterate) {
  io::SolverCheckpoint ck;
  ck.iteration = 2;
  ck.solver_kind = io::SolverKind::power;
  ck.eigenvector = {1.0, std::nan(""), 3.0};

  IterationTrace trace;
  IterationResult out;
  EXPECT_FALSE(restore_trace(ck, io::SolverKind::power, trace, out));
  EXPECT_EQ(out.failure, SolverFailure::non_finite);
  EXPECT_FALSE(out.converged);
}

}  // namespace
}  // namespace qs::solvers
