// Unit tests for the small dense eigensolvers: Jacobi, Hessenberg QR,
// power iteration and inverse iteration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "linalg/hessenberg_qr.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/small_power.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::linalg {
namespace {

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  DenseMatrix m(n, n);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m(i, j) = rng.uniform(-1.0, 1.0);
      m(j, i) = m(i, j);
    }
  }
  return m;
}

TEST(Jacobi, DiagonalMatrixEigenvaluesSortedDescending) {
  DenseMatrix d(3, 3);
  d(0, 0) = 1.0; d(1, 1) = 5.0; d(2, 2) = 3.0;
  const auto e = jacobi_eigen(d);
  EXPECT_DOUBLE_EQ(e.values[0], 5.0);
  EXPECT_DOUBLE_EQ(e.values[1], 3.0);
  EXPECT_DOUBLE_EQ(e.values[2], 1.0);
}

TEST(Jacobi, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0; a(1, 0) = 1.0; a(1, 1) = 2.0;
  const auto e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-14);
  EXPECT_NEAR(e.values[1], 1.0, 1e-14);
  // Eigenvector of 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(e.vectors(0, 0), e.vectors(1, 0), 1e-14);
}

TEST(Jacobi, ReconstructsMatrix) {
  const DenseMatrix a = random_symmetric(8, 3);
  const auto e = jacobi_eigen(a);
  // A = V diag(w) V^T.
  DenseMatrix vd(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) vd(i, j) = e.vectors(i, j) * e.values[j];
  }
  const DenseMatrix rec = vd.multiply(e.vectors.transposed());
  EXPECT_LT(rec.max_abs_distance(a), 1e-12);
}

TEST(Jacobi, EigenvectorsOrthonormal) {
  const DenseMatrix a = random_symmetric(7, 9);
  const auto e = jacobi_eigen(a);
  const DenseMatrix vtv = e.vectors.transposed().multiply(e.vectors);
  EXPECT_LT(vtv.max_abs_distance(DenseMatrix::identity(7)), 1e-12);
}

TEST(Jacobi, RejectsNonSymmetric) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;
  EXPECT_THROW(jacobi_eigen(a), qs::precondition_error);
}

TEST(HessenbergQr, PreservesSpectrumOfDiagonal) {
  DenseMatrix d(4, 4);
  d(0, 0) = 4.0; d(1, 1) = -1.0; d(2, 2) = 2.0; d(3, 3) = 0.5;
  auto vals = eigenvalues(d);
  std::vector<double> reals;
  for (auto z : vals) {
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
    reals.push_back(z.real());
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_NEAR(reals[0], -1.0, 1e-12);
  EXPECT_NEAR(reals[1], 0.5, 1e-12);
  EXPECT_NEAR(reals[2], 2.0, 1e-12);
  EXPECT_NEAR(reals[3], 4.0, 1e-12);
}

TEST(HessenbergQr, FindsComplexPairOfRotation) {
  // 90-degree rotation has eigenvalues +-i.
  DenseMatrix r(2, 2);
  r(0, 0) = 0.0; r(0, 1) = -1.0;
  r(1, 0) = 1.0; r(1, 1) = 0.0;
  auto vals = eigenvalues(r);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_NEAR(std::abs(vals[0].imag()), 1.0, 1e-12);
  EXPECT_NEAR(vals[0].real(), 0.0, 1e-12);
}

TEST(HessenbergQr, MatchesJacobiOnSymmetric) {
  const DenseMatrix a = random_symmetric(6, 21);
  const auto jac = jacobi_eigen(a);
  auto qr = eigenvalues(a);
  std::vector<double> qr_reals;
  for (auto z : qr) {
    EXPECT_NEAR(z.imag(), 0.0, 1e-9);
    qr_reals.push_back(z.real());
  }
  std::sort(qr_reals.begin(), qr_reals.end(), std::greater<>());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(qr_reals[i], jac.values[i], 1e-10);
  }
}

TEST(HessenbergQr, TraceAndDeterminantInvariants) {
  const std::size_t n = 7;
  DenseMatrix a(n, n);
  Xoshiro256 rng(31);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    trace += a(i, i);
  }
  auto vals = eigenvalues(a);
  std::complex<double> sum = 0.0;
  std::complex<double> prod = 1.0;
  for (auto z : vals) {
    sum += z;
    prod *= z;
  }
  EXPECT_NEAR(sum.real(), trace, 1e-10);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-10);
  EXPECT_NEAR(prod.real(), LuFactorization(a).determinant(), 1e-9);
}

TEST(HessenbergQr, DominantRealEigenvalueOfPositiveMatrix) {
  // Positive matrices have a real dominant (Perron) eigenvalue.
  DenseMatrix a(3, 3);
  Xoshiro256 rng(17);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(0.1, 1.0);
  }
  const double lambda = dominant_real_eigenvalue(a);
  // Must dominate every row sum lower bound / be below max row sum.
  double min_row = 1e300, max_row = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 3; ++j) s += a(i, j);
    min_row = std::min(min_row, s);
    max_row = std::max(max_row, s);
  }
  EXPECT_GE(lambda, min_row - 1e-12);
  EXPECT_LE(lambda, max_row + 1e-12);
}

TEST(Hessenberg, FormIsUpperHessenberg) {
  DenseMatrix a(6, 6);
  Xoshiro256 rng(5);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  const DenseMatrix h = to_hessenberg(a);
  for (std::size_t i = 2; i < 6; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_EQ(h(i, j), 0.0);
  }
}

TEST(SmallPower, FindsDominantPairOfSymmetric) {
  const DenseMatrix a = random_symmetric(6, 77);
  // Shift to make it positive definite (power iteration needs a dominant
  // eigenvalue of maximal modulus).
  DenseMatrix spd = a;
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 10.0;
  const auto jac = jacobi_eigen(spd);
  const auto pi = power_iteration(spd);
  EXPECT_TRUE(pi.converged);
  EXPECT_NEAR(pi.value, jac.values[0], 1e-10);
}

TEST(SmallPower, ShiftAcceleratesConvergence) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0; a(1, 1) = 0.9;  // slow ratio 0.9
  SmallSolveOptions plain;
  plain.tolerance = 1e-12;
  const auto slow = power_iteration(a, {}, plain);
  SmallSolveOptions shifted = plain;
  shifted.shift = 0.8;  // ratio becomes 0.1/0.2 = 0.5
  const auto fast = power_iteration(a, {}, shifted);
  EXPECT_TRUE(slow.converged);
  EXPECT_TRUE(fast.converged);
  EXPECT_LT(fast.iterations, slow.iterations);
  EXPECT_NEAR(fast.value, slow.value, 1e-10);
}

TEST(InverseIteration, RefinesEigenpair) {
  const DenseMatrix a = random_symmetric(5, 13);
  const auto jac = jacobi_eigen(a);
  // Perturbed eigenvalue estimate; inverse iteration should lock on.
  const auto r = inverse_iteration(a, jac.values[0] + 1e-4);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, jac.values[0], 1e-10);
  EXPECT_LT(r.iterations, 20u);
}

TEST(SmallPower, RejectsBadInputs) {
  DenseMatrix rect(2, 3);
  EXPECT_THROW(power_iteration(rect), qs::precondition_error);
  DenseMatrix a(2, 2);
  std::vector<double> wrong_start{1.0, 2.0, 3.0};
  EXPECT_THROW(power_iteration(a, wrong_start), qs::precondition_error);
}

}  // namespace
}  // namespace qs::linalg
