// Tests for the power iteration's stagnation (numerical floor) handling.
#include <gtest/gtest.h>

#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "solvers/power_iteration.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(Stall, SinglePeakFloorsAboveStrictToleranceButConverges) {
  // The single-peak landscape at nu = 16 floors near 1e-12, above a strict
  // 1e-14 tolerance; the stall detector must stop the run quickly and
  // accept it under the default stall_accept.
  const unsigned nu = 16;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const core::FmmpOperator op(model, landscape);

  PowerOptions opts;
  opts.tolerance = 1e-14;  // below the floor
  opts.shift = core::conservative_shift(model, landscape);
  const auto r = power_iteration(op, landscape_start(landscape), opts);
  EXPECT_TRUE(r.stalled);
  EXPECT_TRUE(r.converged);          // floor ~1e-12 <= stall_accept 1e-9
  EXPECT_LT(r.residual, 1e-10);
  EXPECT_LT(r.iterations, 5000u);    // must not spin to max_iterations
}

TEST(Stall, StrictAcceptMakesStallingAFailure) {
  const unsigned nu = 14;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const core::FmmpOperator op(model, landscape);

  PowerOptions opts;
  opts.tolerance = 1e-15;
  opts.stall_accept = 1e-15;  // floor ~5e-13 > accept -> honest failure
  const auto r = power_iteration(op, landscape_start(landscape), opts);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.converged);
}

TEST(Stall, DisabledWindowSpinsToMaxIterations) {
  const unsigned nu = 12;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const core::FmmpOperator op(model, landscape);

  PowerOptions opts;
  opts.tolerance = 1e-15;
  opts.stall_window = 0;  // disabled
  opts.max_iterations = 3000;
  const auto r = power_iteration(op, landscape_start(landscape), opts);
  EXPECT_FALSE(r.stalled);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3000u);
}

TEST(Stall, CleanConvergenceDoesNotReportStall) {
  // Random landscapes reach 1e-13 comfortably: no stall flag.
  const unsigned nu = 12;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const core::FmmpOperator op(model, landscape);
  const auto r = power_iteration(op, landscape_start(landscape));
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.stalled);
}

TEST(Stall, SlowButConvergingRunsAreNotCutPrematurely) {
  // A landscape with a modest gap: convergence takes many iterations but
  // makes steady >5 %-per-window progress, so the stall detector must let
  // it finish.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.005);
  // Two nearby peaks -> smallish gap, but still a real one.
  auto values = std::vector<double>(sequence_count(nu), 1.0);
  values[0] = 2.0;
  values[3] = 1.9;
  const auto landscape = core::Landscape::from_values(nu, std::move(values));
  const core::FmmpOperator op(model, landscape);

  PowerOptions opts;
  opts.tolerance = 1e-11;
  const auto r = power_iteration(op, landscape_start(landscape), opts);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.stalled);
  EXPECT_GT(r.iterations, 150u);  // genuinely slow...
}

}  // namespace
}  // namespace qs::solvers
