// Golden-trajectory tests for the engine-routed default solve.
//
// PR "engine-routed default solves" changed what a bare solve(model,
// landscape) runs: with no engine configured the facade's planned operator
// now routes through parallel::serial_engine() — band spans, the blocked
// kernel, and the single-vector SIMD microkernels — instead of the classic
// per-level serial loops.  The routing is only legal because the banded
// kernel is BIT-IDENTICAL to the classic path, so these tests pin the
// before/after behaviour at the strongest possible level: the complete
// residual stream, the eigenvalue, and the concentration vector of a
// default facade solve must equal a power iteration on a bare classic
// FmmpOperator EXACTLY (ASSERT_EQ on doubles), shift handling included.
#include <vector>

#include <gtest/gtest.h>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/spectral.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/rng.hpp"
#include "transforms/sv_microkernel.hpp"

namespace qs::solvers {
namespace {

struct Trajectory {
  std::vector<unsigned> iterations;
  std::vector<double> residuals;
};

/// The "before" behaviour: the classic serial FmmpOperator (no engine, no
/// banding) driven by the same power iteration the facade uses, with the
/// same start vector and the same conservative shift rule.
Trajectory classic_reference(const core::MutationModel& model,
                             const core::Landscape& landscape,
                             PowerResult& out) {
  const core::FmmpOperator classic(model, landscape);
  Trajectory t;
  PowerOptions popts;
  popts.on_residual = [&t](unsigned it, double res) {
    t.iterations.push_back(it);
    t.residuals.push_back(res);
  };
  if (model.symmetric() && model.kind() != core::MutationKind::grouped) {
    popts.shift = core::conservative_shift(model, landscape);
  }
  out = power_iteration(classic, landscape_start(landscape), popts);
  return t;
}

void expect_same_trajectory(const Trajectory& expected, const Trajectory& actual) {
  ASSERT_EQ(expected.iterations.size(), actual.iterations.size());
  for (std::size_t i = 0; i < expected.iterations.size(); ++i) {
    ASSERT_EQ(expected.iterations[i], actual.iterations[i]) << "check " << i;
    // Bitwise: the routed banded path must not perturb a single residual.
    ASSERT_EQ(expected.residuals[i], actual.residuals[i])
        << "residual at iteration " << expected.iterations[i];
  }
}

TEST(GoldenTrajectory, DefaultFacadeSolveMatchesClassicOperatorBitForBit) {
  // The default-options facade call (shifted symmetric iteration) against
  // the pre-routing classic path, on both a structured and a random
  // landscape.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscapes = {core::Landscape::single_peak(nu, 2.0, 1.0),
                           core::Landscape::random(nu, 5.0, 1.0, 11)};
  for (const auto& landscape : landscapes) {
    PowerResult reference;
    const Trajectory expected = classic_reference(model, landscape, reference);
    ASSERT_TRUE(reference.converged);

    Trajectory actual;
    SolveOptions options;
    options.on_residual = [&actual](unsigned it, double res) {
      actual.iterations.push_back(it);
      actual.residuals.push_back(res);
    };
    const auto result = solve(model, landscape, options);
    ASSERT_TRUE(result.converged);

    expect_same_trajectory(expected, actual);
    ASSERT_EQ(reference.eigenvalue, result.eigenvalue);
    ASSERT_EQ(reference.iterations, result.iterations);
    ASSERT_EQ(reference.eigenvector.size(), result.concentrations.size());
    for (std::size_t i = 0; i < reference.eigenvector.size(); ++i) {
      ASSERT_EQ(reference.eigenvector[i], result.concentrations[i])
          << "concentration " << i;
    }
  }
}

TEST(GoldenTrajectory, AsymmetricModelUnshiftedSolveMatchesClassic) {
  // Per-site asymmetric factors: the facade cannot shift (model not
  // symmetric), so this pins the plain unshifted trajectory through the
  // routed path.
  const unsigned nu = 9;
  std::vector<transforms::Factor2> sites;
  Xoshiro256 rng(3);
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(transforms::Factor2::asymmetric(rng.uniform(0.001, 0.1),
                                                    rng.uniform(0.001, 0.1)));
  }
  const auto model = core::MutationModel::per_site(sites);
  const auto landscape = core::Landscape::random(nu, 4.0, 1.0, 19);

  PowerResult reference;
  const Trajectory expected = classic_reference(model, landscape, reference);
  ASSERT_TRUE(reference.converged);

  Trajectory actual;
  SolveOptions options;
  options.on_residual = [&actual](unsigned it, double res) {
    actual.iterations.push_back(it);
    actual.residuals.push_back(res);
  };
  const auto result = solve(model, landscape, options);
  ASSERT_TRUE(result.converged);
  expect_same_trajectory(expected, actual);
  ASSERT_EQ(reference.eigenvalue, result.eigenvalue);
}

TEST(GoldenTrajectory, ResidualStreamInvariantAcrossSvKernelTiers) {
  // The end-to-end form of the microkernel bit-identity contract: forcing
  // any single-vector kernel tier (including the autovec fallback) through
  // the facade produces the IDENTICAL residual stream.  A user switching
  // plans between machines reproduces their trajectories exactly.
  const unsigned nu = 11;
  const auto model = core::MutationModel::uniform(nu, 0.015);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  Trajectory reference;
  double reference_eigenvalue = 0.0;
  for (transforms::SvKernel tier :
       {transforms::SvKernel::autovec, transforms::SvKernel::automatic,
        transforms::SvKernel::avx2, transforms::SvKernel::avx512}) {
    Trajectory t;
    SolveOptions options;
    options.plan.sv_kernel = tier;
    options.on_residual = [&t](unsigned it, double res) {
      t.iterations.push_back(it);
      t.residuals.push_back(res);
    };
    const auto result = solve(model, landscape, options);
    ASSERT_TRUE(result.converged) << to_string(tier);
    if (reference.iterations.empty()) {
      reference = t;
      reference_eigenvalue = result.eigenvalue;
    } else {
      SCOPED_TRACE(to_string(tier));
      expect_same_trajectory(reference, t);
      ASSERT_EQ(reference_eigenvalue, result.eigenvalue);
    }
  }
}

TEST(GoldenTrajectory, UnroutedConfigurationsStillSolveCorrectly) {
  // Configurations the routing rule must leave alone — descending level
  // order and grouped models — keep converging to the same eigenpair (to
  // tolerance, not bitwise: they legitimately run different kernels).
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto reference = solve(model, landscape);
  ASSERT_TRUE(reference.converged);

  SolveOptions descending;
  descending.level_order = transforms::LevelOrder::descending;
  const auto r = solve(model, landscape, descending);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(reference.eigenvalue, r.eigenvalue, 1e-10 * reference.eigenvalue);

  std::vector<linalg::DenseMatrix> groups;
  for (unsigned g = 0; g < 4; ++g) {
    linalg::DenseMatrix f(4, 4);
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t row = 0; row < 4; ++row) {
        f(row, c) = row == c ? 0.94 : 0.02;
      }
    }
    groups.push_back(std::move(f));
  }
  const auto grouped = core::MutationModel::grouped(groups);
  const auto gr = solve(grouped, landscape);
  EXPECT_TRUE(gr.converged);
}

}  // namespace
}  // namespace qs::solvers
