// Unit tests for the implicit mutation matrices.
#include "core/mutation_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/explicit_q.hpp"
#include "core/site_process.hpp"
#include "support/binomial.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::core {
namespace {

TEST(MutationModelUniform, EntriesMatchEquationTwo) {
  // Q_{i,j} = p^{d_H} (1-p)^{nu - d_H}.
  const unsigned nu = 6;
  const double p = 0.07;
  const auto model = MutationModel::uniform(nu, p);
  for (seq_t i = 0; i < 64; i += 5) {
    for (seq_t j = 0; j < 64; j += 3) {
      const unsigned d = hamming_distance(i, j);
      const double expected = std::pow(p, d) * std::pow(1.0 - p, nu - d);
      EXPECT_NEAR(model.entry(i, j), expected, 1e-15);
    }
  }
}

TEST(MutationModelUniform, ClassValues) {
  const auto model = MutationModel::uniform(5, 0.1);
  EXPECT_NEAR(model.class_value(0), std::pow(0.9, 5), 1e-15);
  EXPECT_NEAR(model.class_value(5), std::pow(0.1, 5), 1e-15);
  EXPECT_NEAR(model.class_value(2), 0.01 * std::pow(0.9, 3), 1e-15);
}

TEST(MutationModelUniform, DenseQIsSymmetricColumnStochastic) {
  const auto model = MutationModel::uniform(7, 0.04);
  const auto q = build_q_dense(model);
  EXPECT_TRUE(q.is_symmetric(1e-15));
  EXPECT_LT(q.max_column_sum_deviation(), 1e-12);
}

TEST(MutationModelUniform, ApplyMatchesDense) {
  const unsigned nu = 8;
  const auto model = MutationModel::uniform(nu, 0.02);
  const auto q = build_q_dense(model);
  const std::size_t n = 256;
  std::vector<double> v(n), expected(n);
  Xoshiro256 rng(1);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  q.multiply(v, expected);
  model.apply(v);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], expected[i], 1e-13);
}

TEST(MutationModelUniform, EngineApplyMatchesSerial) {
  const unsigned nu = 10;
  const auto model = MutationModel::uniform(nu, 0.05);
  const std::size_t n = 1024;
  std::vector<double> serial(n), engine_serial(n), engine_omp(n);
  Xoshiro256 rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    serial[i] = engine_serial[i] = engine_omp[i] = rng.uniform(0.0, 1.0);
  }
  model.apply(serial);
  model.apply(engine_serial, parallel::serial_engine());
  model.apply(engine_omp, parallel::parallel_engine());
  for (std::size_t i = 0; i < n; ++i) {
    // Algorithm 2 performs the identical arithmetic, so results are
    // bit-identical to the serial butterfly.
    EXPECT_DOUBLE_EQ(serial[i], engine_serial[i]);
    EXPECT_DOUBLE_EQ(serial[i], engine_omp[i]);
  }
}

TEST(MutationModelUniform, RejectsInvalidParameters) {
  EXPECT_THROW(MutationModel::uniform(0, 0.1), precondition_error);
  EXPECT_THROW(MutationModel::uniform(1001, 0.1), precondition_error);
  EXPECT_THROW(MutationModel::uniform(5, 0.0), precondition_error);
  EXPECT_THROW(MutationModel::uniform(5, -0.1), precondition_error);
  EXPECT_THROW(MutationModel::uniform(5, 0.51), precondition_error);
}

TEST(MutationModelUniform, LargeChainsConstructibleButNotIndexable) {
  // Models beyond kMaxChainLength exist (the Kronecker solvers slice them),
  // but any operation that would index the 2^nu space must refuse.
  const auto model = MutationModel::uniform(100, 0.01);
  EXPECT_EQ(model.nu(), 100u);
  EXPECT_THROW(model.dimension(), precondition_error);
}

TEST(MutationModelUniform, WalshEigenvaluesArePowersOfOneMinusTwoP) {
  const unsigned nu = 6;
  const double p = 0.12;
  const auto model = MutationModel::uniform(nu, p);
  for (seq_t w = 0; w < 64; ++w) {
    EXPECT_NEAR(model.walsh_eigenvalue(w),
                std::pow(1.0 - 2.0 * p, hamming_weight(w)), 1e-15);
  }
}

TEST(MutationModelPerSite, ReducesToUniformWhenRatesEqual) {
  const unsigned nu = 7;
  const double p = 0.08;
  const auto uniform_model = MutationModel::uniform(nu, p);
  const auto per_site =
      MutationModel::per_site(std::vector<transforms::Factor2>(nu, uniform_site(p)));
  EXPECT_TRUE(per_site.symmetric());
  for (seq_t i = 0; i < 128; i += 11) {
    for (seq_t j = 0; j < 128; j += 7) {
      EXPECT_NEAR(per_site.entry(i, j), uniform_model.entry(i, j), 1e-15);
    }
  }
}

TEST(MutationModelPerSite, AsymmetricModelIsNotSymmetricButStochastic) {
  std::vector<transforms::Factor2> sites{asymmetric_site(0.2, 0.05),
                                         asymmetric_site(0.1, 0.1),
                                         asymmetric_site(0.0, 0.3)};
  const auto model = MutationModel::per_site(sites);
  EXPECT_FALSE(model.symmetric());
  const auto q = build_q_dense(model);
  EXPECT_LT(q.max_column_sum_deviation(), 1e-12);
  EXPECT_FALSE(q.is_symmetric(1e-6));
}

TEST(MutationModelPerSite, ApplyMatchesDense) {
  std::vector<transforms::Factor2> sites;
  Xoshiro256 rng(9);
  for (unsigned k = 0; k < 6; ++k) {
    sites.push_back(asymmetric_site(rng.uniform(0.0, 0.4), rng.uniform(0.0, 0.4)));
  }
  const auto model = MutationModel::per_site(sites);
  const auto q = build_q_dense(model);
  const std::size_t n = 64;
  std::vector<double> v(n), expected(n);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  q.multiply(v, expected);
  model.apply(v);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], expected[i], 1e-13);
}

TEST(MutationModelPerSite, TransposedApplyMatchesDenseTranspose) {
  std::vector<transforms::Factor2> sites{asymmetric_site(0.25, 0.1),
                                         asymmetric_site(0.05, 0.4)};
  const auto model = MutationModel::per_site(sites);
  const auto qt = build_q_dense(model).transposed();
  std::vector<double> v{0.1, 0.4, 0.3, 0.2};
  std::vector<double> expected(4);
  qt.multiply(v, expected);
  model.apply_transposed(v);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(v[i], expected[i], 1e-14);
}

TEST(MutationModelPerSite, RejectsNonStochasticFactor) {
  transforms::Factor2 bad{0.5, 0.5, 0.2, 0.5};  // column 0 sums to 0.7
  EXPECT_THROW(MutationModel::per_site({bad}), precondition_error);
}

TEST(MutationModelGrouped, MatchesDenseKronecker) {
  const auto g1 = coupled_single_flip_group(2, 0.3);
  const auto g2 = coupled_single_flip_group(3, 0.2);
  const auto model = MutationModel::grouped({g1, g2});
  EXPECT_EQ(model.nu(), 5u);
  EXPECT_EQ(model.dimension(), 32u);

  const auto q = build_q_dense(model);
  EXPECT_LT(q.max_column_sum_deviation(), 1e-12);

  std::vector<double> v(32), expected(32);
  Xoshiro256 rng(10);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  q.multiply(v, expected);
  model.apply(v);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(v[i], expected[i], 1e-13);
}

TEST(MutationModelGrouped, EngineApplyMatchesSerial) {
  const auto model = MutationModel::grouped(
      {coupled_single_flip_group(2, 0.25), coupled_single_flip_group(2, 0.15)});
  std::vector<double> serial(16), via_engine(16);
  Xoshiro256 rng(11);
  for (std::size_t i = 0; i < 16; ++i) serial[i] = via_engine[i] = rng.uniform(0.0, 1.0);
  model.apply(serial);
  model.apply(via_engine, parallel::parallel_engine());
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(serial[i], via_engine[i], 1e-15);
}

TEST(MutationModelGrouped, OneBitGroupsEqualPerSite) {
  // A grouped model whose groups are all single sites must agree with the
  // per-site model built from the same 2x2 blocks.
  const double p01 = 0.2, p10 = 0.05;
  linalg::DenseMatrix block(2, 2);
  block(0, 0) = 1.0 - p01; block(0, 1) = p10;
  block(1, 0) = p01;       block(1, 1) = 1.0 - p10;
  const auto grouped = MutationModel::grouped({block, block});
  const auto per_site = MutationModel::per_site(
      {asymmetric_site(p01, p10), asymmetric_site(p01, p10)});
  for (seq_t i = 0; i < 4; ++i) {
    for (seq_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(grouped.entry(i, j), per_site.entry(i, j), 1e-15);
    }
  }
}

TEST(MutationModelGrouped, AccessorsEnforceKind) {
  const auto grouped = MutationModel::grouped({coupled_single_flip_group(2, 0.3)});
  EXPECT_THROW(grouped.site_factors(), precondition_error);
  EXPECT_THROW(grouped.error_rate(), precondition_error);
  EXPECT_THROW(grouped.walsh_eigenvalue(0), precondition_error);
  const auto uniform = MutationModel::uniform(3, 0.1);
  EXPECT_THROW(uniform.group_product(), precondition_error);
  EXPECT_NO_THROW(uniform.site_factors());
}

TEST(MutationModel, ApplyRejectsWrongSize) {
  const auto model = MutationModel::uniform(4, 0.1);
  std::vector<double> v(8);
  EXPECT_THROW(model.apply(v), precondition_error);
  EXPECT_THROW(model.apply(v, parallel::serial_engine()), precondition_error);
  EXPECT_THROW(model.apply_transposed(v), precondition_error);
}

TEST(MutationModel, MassPreservation) {
  // Column stochasticity means Q preserves total probability mass.
  const auto model = MutationModel::uniform(9, 0.13);
  std::vector<double> v(512);
  Xoshiro256 rng(14);
  double mass = 0.0;
  for (double& x : v) {
    x = rng.uniform(0.0, 1.0);
    mass += x;
  }
  model.apply(v);
  double after = 0.0;
  for (double x : v) after += x;
  EXPECT_NEAR(after, mass, 1e-12 * mass);
}

}  // namespace
}  // namespace qs::core
