// Wire format: frame framing, request/reply round trips, bounds-checked
// decoding, content hashes, retry/backoff schedule — all over in-memory
// streams, with the transport fault injectors exercised against the frame
// reader.
#include <gtest/gtest.h>

#include <cstring>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "testing/fault_injection.hpp"

namespace qs::service {
namespace {

SolveRequest sample_request() {
  SolveRequest request;
  request.nu = 10;
  request.landscape = LandscapeKind::single_peak;
  request.param0 = 12.5;
  request.param1 = 1.25;
  request.seed = 42;
  request.p = 0.0125;
  request.tolerance = 1e-11;
  request.max_iterations = 123456;
  request.deadline_ms = 1500;
  return request;
}

SolveReply sample_reply() {
  SolveReply reply;
  reply.status = StatusCode::ok;
  reply.eigenvalue = 9.876543210123;
  reply.residual = 3.14e-12;
  reply.iterations = 271828;
  reply.class_concentrations = {0.5, 0.25, 0.125, 0.125};
  reply.message = "diagnostic";
  reply.cache_hit = true;
  reply.queue_wait_ms = 1.75;
  reply.batch_width = 8;
  reply.deadline_slack_ms = -4.5;
  return reply;
}

TEST(Protocol, RequestRoundTripsBitExactly) {
  const SolveRequest request = sample_request();
  const SolveRequest decoded = decode_request(encode(request));
  EXPECT_EQ(decoded.nu, request.nu);
  EXPECT_EQ(decoded.landscape, request.landscape);
  EXPECT_EQ(std::memcmp(&decoded.param0, &request.param0, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&decoded.param1, &request.param1, sizeof(double)), 0);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(std::memcmp(&decoded.p, &request.p, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&decoded.tolerance, &request.tolerance, sizeof(double)), 0);
  EXPECT_EQ(decoded.max_iterations, request.max_iterations);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
}

TEST(Protocol, ReplyRoundTripsBitExactly) {
  const SolveReply reply = sample_reply();
  const SolveReply decoded = decode_reply(encode(reply));
  EXPECT_EQ(decoded.status, reply.status);
  EXPECT_EQ(std::memcmp(&decoded.eigenvalue, &reply.eigenvalue, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&decoded.residual, &reply.residual, sizeof(double)), 0);
  EXPECT_EQ(decoded.iterations, reply.iterations);
  ASSERT_EQ(decoded.class_concentrations.size(), reply.class_concentrations.size());
  EXPECT_EQ(std::memcmp(decoded.class_concentrations.data(),
                        reply.class_concentrations.data(),
                        reply.class_concentrations.size() * sizeof(double)),
            0);
  EXPECT_EQ(decoded.message, reply.message);
  EXPECT_EQ(decoded.cache_hit, reply.cache_hit);
  EXPECT_EQ(decoded.batch_width, reply.batch_width);
}

TEST(Protocol, TruncatedPayloadThrowsStructuredError) {
  std::vector<std::uint8_t> payload = encode(sample_request());
  payload.resize(payload.size() / 2);
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> payload = encode(sample_request());
  payload.push_back(0);
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, ReplyWithAbsurdVectorLengthIsRejectedBeforeAllocating) {
  // Corrupt the class_concentrations count (the u64 right after the
  // message) to a near-2^64 value: the decoder must reject it against the
  // remaining byte count, not allocate.  The trace-id u64 tail sits after
  // the vector, so step over it when locating the count.
  SolveReply reply = sample_reply();
  reply.message.clear();
  std::vector<std::uint8_t> payload = encode(reply);
  const std::size_t count_at =
      payload.size() - sizeof(std::uint64_t) -
      reply.class_concentrations.size() * sizeof(double) - 8;
  const std::uint64_t absurd = ~0ull;
  std::memcpy(payload.data() + count_at, &absurd, sizeof(absurd));
  EXPECT_THROW(decode_reply(payload), ProtocolError);
}

TEST(Protocol, TraceTailRoundTripsOnRequestsAndReplies) {
  SolveRequest request = sample_request();
  request.trace_id = 0xABCDEF0123456789ull;
  request.client_send_ns = 0x1122334455667788ull;
  const SolveRequest decoded = decode_request(encode(request));
  EXPECT_EQ(decoded.trace_id, request.trace_id);
  EXPECT_EQ(decoded.client_send_ns, request.client_send_ns);

  SolveReply reply = sample_reply();
  reply.trace_id = 0xFEDCBA9876543210ull;
  EXPECT_EQ(decode_reply(encode(reply)).trace_id, reply.trace_id);
}

TEST(Protocol, TailLessV1PayloadsDecodeWithTraceFieldsZero) {
  // A frame from a pre-telemetry peer ends where the v1 body ends; the
  // decoder must treat the absent tail as untraced, not as truncation.
  SolveRequest request = sample_request();
  request.trace_id = 7;  // encoded, then stripped below
  request.client_send_ns = 9;
  std::vector<std::uint8_t> payload = encode(request);
  payload.resize(payload.size() - 2 * sizeof(std::uint64_t));
  const SolveRequest decoded = decode_request(payload);
  EXPECT_EQ(decoded.trace_id, 0u);
  EXPECT_EQ(decoded.client_send_ns, 0u);
  EXPECT_EQ(decoded.nu, request.nu);  // v1 body intact

  SolveReply reply = sample_reply();
  reply.trace_id = 7;
  std::vector<std::uint8_t> reply_payload = encode(reply);
  reply_payload.resize(reply_payload.size() - sizeof(std::uint64_t));
  const SolveReply decoded_reply = decode_reply(reply_payload);
  EXPECT_EQ(decoded_reply.trace_id, 0u);
  EXPECT_EQ(decoded_reply.iterations, reply.iterations);
}

TEST(Protocol, TraceFieldsNeverChangeContentHashes) {
  // Tracing is an annotation, not content: a traced request must hit the
  // cache entry its untraced twin stored, and coalesce into its batches.
  const SolveRequest plain = sample_request();
  SolveRequest traced = plain;
  traced.trace_id = 0xDEADBEEFull;
  traced.client_send_ns = 123456789;
  EXPECT_EQ(scenario_key(plain), scenario_key(traced));
  EXPECT_EQ(scenario_fingerprint(plain), scenario_fingerprint(traced));
  EXPECT_EQ(batch_key(plain), batch_key(traced));
}

TEST(Protocol, ScenarioKeyIgnoresDeadlineButSeesEveryAnswerField) {
  const SolveRequest base = sample_request();
  SolveRequest other = base;
  other.deadline_ms = 99999;  // scheduling, not content
  EXPECT_EQ(scenario_key(base), scenario_key(other));

  other = base;
  other.p = 0.013;
  EXPECT_NE(scenario_key(base), scenario_key(other));
  other = base;
  other.param1 = 1.26;
  EXPECT_NE(scenario_key(base), scenario_key(other));
  other = base;
  other.tolerance = 1e-10;
  EXPECT_NE(scenario_key(base), scenario_key(other));

  // Seed is content only for the random landscape.
  other = base;
  other.seed = 777;
  EXPECT_EQ(scenario_key(base), scenario_key(other));
  SolveRequest random_base = base;
  random_base.landscape = LandscapeKind::random;
  random_base.param0 = 10.0;
  random_base.param1 = 2.0;
  SolveRequest random_other = random_base;
  random_other.seed = 777;
  EXPECT_NE(scenario_key(random_base), scenario_key(random_other));
}

TEST(Protocol, BatchKeyGroupsByMutationModelOnly) {
  const SolveRequest base = sample_request();
  SolveRequest other = base;
  other.param0 = 99.0;  // different landscape, same (nu, p)
  other.landscape = LandscapeKind::linear;
  EXPECT_EQ(batch_key(base), batch_key(other));
  other = base;
  other.p = 0.02;
  EXPECT_NE(batch_key(base), batch_key(other));
  other = base;
  other.nu = 11;
  EXPECT_NE(batch_key(base), batch_key(other));
}

TEST(Protocol, ValidateCatchesBadScenarios) {
  EXPECT_TRUE(validate(sample_request()).empty());
  SolveRequest bad = sample_request();
  bad.p = 0.0;
  EXPECT_FALSE(validate(bad).empty());
  bad = sample_request();
  bad.nu = 0;
  EXPECT_FALSE(validate(bad).empty());
  bad = sample_request();
  bad.tolerance = -1.0;
  EXPECT_FALSE(validate(bad).empty());
  bad = sample_request();
  bad.landscape = LandscapeKind::random;
  bad.param0 = 1.0;
  bad.param1 = 0.9;  // sigma >= c/2
  EXPECT_FALSE(validate(bad).empty());
}

TEST(Frames, RoundTripOverMemoryStreams) {
  testing::MemoryStream a;
  testing::MemoryStream b;
  a.wire_to(&b);
  b.wire_to(&a);

  Frame frame{FrameType::solve_request, encode(sample_request())};
  write_frame(a, frame);
  const Frame got = read_frame(b);
  EXPECT_EQ(got.type, FrameType::solve_request);
  EXPECT_EQ(got.payload, frame.payload);
}

TEST(Frames, StatsFramesCarryOpaqueTextPayloads) {
  testing::MemoryStream a;
  testing::MemoryStream b;
  a.wire_to(&b);
  b.wire_to(&a);

  write_frame(a, Frame{FrameType::stats_request, {}});
  EXPECT_EQ(read_frame(b).type, FrameType::stats_request);

  const std::string text = "# stats\nqs_uptime_seconds 1.5\n";
  Frame reply{FrameType::stats_reply,
              std::vector<std::uint8_t>(text.begin(), text.end())};
  write_frame(a, reply);
  const Frame got = read_frame(b);
  EXPECT_EQ(got.type, FrameType::stats_reply);
  EXPECT_EQ(std::string(got.payload.begin(), got.payload.end()), text);
}

TEST(Frames, BadMagicAndOversizedLengthAreRejected) {
  testing::MemoryStream a;
  testing::MemoryStream b;
  a.wire_to(&b);
  b.wire_to(&a);

  struct {
    std::uint32_t magic, type;
    std::uint64_t length;
  } header{0xdeadbeef, 1, 0};
  a.write_all(&header, sizeof(header));
  EXPECT_THROW(read_frame(b), ProtocolError);

  header.magic = 0x51535256;
  header.length = kMaxFramePayload + 1;  // must be rejected BEFORE allocation
  a.write_all(&header, sizeof(header));
  EXPECT_THROW(read_frame(b), ProtocolError);
}

TEST(Frames, CorruptedBytesOnTheWireFailStructurally) {
  auto reader = std::make_unique<testing::MemoryStream>();
  testing::MemoryStream writer;
  writer.wire_to(reader.get());
  write_frame(writer, Frame{FrameType::ping, {}});

  // Corrupt the first read (the frame header) — the magic check fires.
  testing::FaultInjectingStream::Config config;
  config.corrupt_at_read = 1;
  testing::FaultInjectingStream faulty(std::move(reader), config);
  EXPECT_THROW(read_frame(faulty), ProtocolError);
}

TEST(Frames, ShortReadSurfacesAsTransportError) {
  auto reader = std::make_unique<testing::MemoryStream>();
  testing::MemoryStream writer;
  writer.wire_to(reader.get());
  write_frame(writer, Frame{FrameType::solve_request, encode(sample_request())});

  testing::FaultInjectingStream::Config config;
  config.short_read_at = 2;  // header reads fine; the payload read tears
  testing::FaultInjectingStream faulty(std::move(reader), config);
  EXPECT_THROW(read_frame(faulty), TransportError);
}

TEST(Frames, DroppedAndStalledReadsKeepTheirErrorTypes) {
  auto reader = std::make_unique<testing::MemoryStream>();
  testing::MemoryStream writer;
  writer.wire_to(reader.get());
  write_frame(writer, Frame{FrameType::ping, {}});
  {
    testing::FaultInjectingStream::Config config;
    config.drop_at_read = 1;
    testing::FaultInjectingStream faulty(std::move(reader), config);
    EXPECT_THROW(read_frame(faulty), TransportError);
  }
  auto reader2 = std::make_unique<testing::MemoryStream>();
  writer.wire_to(reader2.get());
  write_frame(writer, Frame{FrameType::ping, {}});
  {
    testing::FaultInjectingStream::Config config;
    config.delay_at_read = 1;
    testing::FaultInjectingStream faulty(std::move(reader2), config);
    // A stall is a TimeoutError — retryably distinct from a dead peer.
    EXPECT_THROW(read_frame(faulty), TimeoutError);
  }
}

TEST(Backoff, ScheduleIsBoundedDeterministicAndJittered) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.max_delay_ms = 400;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;

  std::uint64_t state = 7;
  std::uint64_t state_copy = 7;
  for (unsigned attempt = 1; attempt <= 6; ++attempt) {
    const std::uint64_t d = backoff_delay_ms(policy, state, attempt);
    const std::uint64_t nominal =
        std::min<std::uint64_t>(400, 100ull << (attempt - 1));
    EXPECT_LE(d, nominal);
    EXPECT_GE(d, nominal / 2);  // jitter shrinks by at most 50%
    // Same seed, same attempt: identical draw (reproducible tests).
    EXPECT_EQ(d, backoff_delay_ms(policy, state_copy, attempt));
  }
}

TEST(Backoff, RetryableCoversExactlyTheNeverStartedCodes) {
  EXPECT_TRUE(retryable(StatusCode::rejected_overload));
  EXPECT_TRUE(retryable(StatusCode::shutting_down));
  EXPECT_FALSE(retryable(StatusCode::ok));
  EXPECT_FALSE(retryable(StatusCode::bad_request));
  EXPECT_FALSE(retryable(StatusCode::solver_failure));
  EXPECT_FALSE(retryable(StatusCode::deadline_exceeded));
  EXPECT_FALSE(retryable(StatusCode::cancelled));
  EXPECT_FALSE(retryable(StatusCode::internal_error));
}

}  // namespace
}  // namespace qs::service
