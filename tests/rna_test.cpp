// Unit tests for the four-letter RNA alphabet extension.
#include <gtest/gtest.h>

#include <cmath>

#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "linalg/vector_ops.hpp"
#include "rna/alphabet.hpp"
#include "rna/rna_model.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "support/contracts.hpp"

namespace qs::rna {
namespace {

TEST(Alphabet, CharRoundTrip) {
  for (char c : {'A', 'C', 'G', 'U'}) {
    EXPECT_EQ(to_char(from_char(c)), c);
  }
  EXPECT_EQ(from_char('a'), Nucleotide::A);
  EXPECT_EQ(from_char('T'), Nucleotide::U);  // DNA input tolerated
  EXPECT_THROW(from_char('X'), precondition_error);
}

TEST(Alphabet, EncodeDecodeRoundTrip) {
  for (const char* s : {"A", "ACGU", "GGGGGGGG", "AUCGAUCGAUCG"}) {
    EXPECT_EQ(decode(encode(s), static_cast<unsigned>(std::string(s).size())), s);
  }
  EXPECT_EQ(encode("A"), 0u);          // master sequence is all-A
  EXPECT_EQ(encode("C"), 1u);
  EXPECT_EQ(encode("G"), 2u);
  EXPECT_EQ(encode("U"), 3u);
  EXPECT_EQ(encode("AC"), 4u);         // base 1 in bits 2..3
  EXPECT_THROW(encode(""), precondition_error);
}

TEST(Alphabet, BaseAtAndDistance) {
  const seq_t s = encode("AGCU");
  EXPECT_EQ(base_at(s, 0), Nucleotide::A);
  EXPECT_EQ(base_at(s, 1), Nucleotide::G);
  EXPECT_EQ(base_at(s, 2), Nucleotide::C);
  EXPECT_EQ(base_at(s, 3), Nucleotide::U);

  EXPECT_EQ(base_hamming_distance(encode("ACGU"), encode("ACGU"), 4), 0u);
  EXPECT_EQ(base_hamming_distance(encode("ACGU"), encode("UCGA"), 4), 2u);
  EXPECT_EQ(base_hamming_distance(encode("AAAA"), encode("CGUC"), 4), 4u);
  // Base distance != bit distance: A (00) -> U (11) is one base change but
  // two bit flips.
  EXPECT_EQ(base_hamming_distance(encode("A"), encode("U"), 1), 1u);
  EXPECT_EQ(hamming_distance(encode("A"), encode("U")), 2u);
}

TEST(Substitution, JukesCantorProperties) {
  const auto jc = jukes_cantor(0.03);
  EXPECT_LT(jc.max_column_sum_deviation(), 1e-15);
  EXPECT_TRUE(jc.is_symmetric(0.0));
  EXPECT_DOUBLE_EQ(jc(0, 0), 0.97);
  EXPECT_DOUBLE_EQ(jc(1, 0), 0.01);
  EXPECT_THROW(jukes_cantor(0.8), precondition_error);
  EXPECT_THROW(jukes_cantor(0.0), precondition_error);
}

TEST(Substitution, KimuraProperties) {
  const double alpha = 0.02, beta = 0.005;
  const auto k2p = kimura(alpha, beta);
  EXPECT_LT(k2p.max_column_sum_deviation(), 1e-15);
  EXPECT_TRUE(k2p.is_symmetric(0.0));
  // Transitions: A<->G and C<->U.
  const auto a = static_cast<std::size_t>(Nucleotide::A);
  const auto c = static_cast<std::size_t>(Nucleotide::C);
  const auto g = static_cast<std::size_t>(Nucleotide::G);
  const auto u = static_cast<std::size_t>(Nucleotide::U);
  EXPECT_DOUBLE_EQ(k2p(g, a), alpha);
  EXPECT_DOUBLE_EQ(k2p(u, c), alpha);
  EXPECT_DOUBLE_EQ(k2p(c, a), beta);
  EXPECT_DOUBLE_EQ(k2p(u, a), beta);
  EXPECT_THROW(kimura(0.6, 0.3), precondition_error);
}

TEST(RnaModel, KimuraWithEqualRatesIsJukesCantor) {
  const auto jc = jukes_cantor(0.03);
  const auto k2p = kimura(0.01, 0.01);
  EXPECT_LT(jc.max_abs_distance(k2p), 1e-15);
}

TEST(RnaModel, UniformModelEntriesFactorOverBases) {
  const unsigned bases = 3;
  const auto model = uniform_rna_model(bases, jukes_cantor(0.06));
  EXPECT_EQ(model.nu(), 6u);
  // Probability of any specific single-base change = mu/3 * (1-mu)^2.
  const double mu = 0.06;
  const seq_t from = encode("AAA");
  const seq_t to = encode("GAA");
  EXPECT_NEAR(model.entry(to, from), (mu / 3.0) * (1 - mu) * (1 - mu), 1e-15);
  // Two changes.
  EXPECT_NEAR(model.entry(encode("GCA"), from),
              (mu / 3.0) * (mu / 3.0) * (1 - mu), 1e-15);
}

TEST(RnaModel, QuasispeciesOnSinglePeakMatchesDenseReference) {
  const unsigned bases = 3;  // 64 species
  const auto model = uniform_rna_model(bases, kimura(0.02, 0.008));
  const auto landscape = rna_single_peak("ACG", 2.0, 1.0);

  const auto fast = solvers::solve(model, landscape);
  ASSERT_TRUE(fast.converged);

  solvers::SolveOptions dense_opts;
  dense_opts.matvec = solvers::MatvecKind::smvp;
  const auto dense = solvers::solve(model, landscape, dense_opts);
  ASSERT_TRUE(dense.converged);

  EXPECT_NEAR(fast.eigenvalue, dense.eigenvalue, 1e-10);
  EXPECT_LT(linalg::max_abs_diff(fast.concentrations, dense.concentrations), 1e-10);
  // The master RNA sequence dominates.
  const seq_t master = encode("ACG");
  for (seq_t s = 0; s < 64; ++s) {
    if (s != master) EXPECT_GT(fast.concentrations[master], fast.concentrations[s]);
  }
}

TEST(RnaModel, BaseClassConcentrationsPartitionUnity) {
  const unsigned bases = 4;
  const auto model = uniform_rna_model(bases, jukes_cantor(0.05));
  const auto landscape = rna_single_peak("AUGC", 3.0, 1.0);
  const auto result = solvers::solve(model, landscape);
  ASSERT_TRUE(result.converged);

  const auto classes =
      base_class_concentrations(bases, result.concentrations, encode("AUGC"));
  ASSERT_EQ(classes.size(), 5u);
  double total = 0.0;
  for (double c : classes) {
    EXPECT_GE(c, 0.0);
    total += c;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Monotone decay of per-class totals away from the master at small mu.
  EXPECT_GT(classes[0], classes[2]);
}

TEST(RnaModel, ErrorThresholdExistsForRnaSinglePeak) {
  // Sweep the Jukes-Cantor rate: ordered at small mu, uniform at large mu.
  const unsigned bases = 4;
  const auto landscape = rna_single_peak("AAAA", 5.0, 1.0);
  const seq_t master = 0;

  const auto low = solvers::solve(uniform_rna_model(bases, jukes_cantor(0.01)),
                                  landscape);
  ASSERT_TRUE(low.converged);
  EXPECT_GT(low.concentrations[master], 0.3);

  const auto high = solvers::solve(uniform_rna_model(bases, jukes_cantor(0.7)),
                                   landscape);
  ASSERT_TRUE(high.converged);
  // Near mu = 3/4 every sequence approaches 1/256.
  EXPECT_LT(high.concentrations[master], 3.0 / 256.0);
}

TEST(RnaModel, PerBaseHotspotShiftsMassOffTheHotspot) {
  const unsigned bases = 3;
  std::vector<linalg::DenseMatrix> subs(bases, jukes_cantor(0.01));
  subs[1] = jukes_cantor(0.3);  // mutational hotspot at base 1
  const auto model = per_base_rna_model(subs);
  const auto landscape = rna_single_peak("AAA", 2.0, 1.0);
  const auto result = solvers::solve(model, landscape);
  ASSERT_TRUE(result.converged);

  // Mutants at the hotspot base must carry more mass than mutants at the
  // quiet bases.
  const double hot = result.concentrations[encode("ACA")];
  const double quiet = result.concentrations[encode("CAA")];
  EXPECT_GT(hot, 3.0 * quiet);
}

TEST(RnaModel, RejectsBadInput) {
  EXPECT_THROW(uniform_rna_model(0, jukes_cantor(0.1)), precondition_error);
  EXPECT_THROW(uniform_rna_model(3, linalg::DenseMatrix(3, 3)), precondition_error);
  EXPECT_THROW(rna_single_peak("ACGT...bad!", 2.0, 1.0), precondition_error);
  EXPECT_THROW(rna_base_class_landscape("ACG", {1.0, 1.0}), precondition_error);
}

}  // namespace
}  // namespace qs::rna
