// Property-based sweeps over the extension modules: RNA alphabet, Krylov
// solvers, distributed decomposition, and the stochastic samplers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "distributed/distributed_solver.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/krylov.hpp"
#include "linalg/vector_ops.hpp"
#include "rna/alphabet.hpp"
#include "rna/rna_model.hpp"
#include "stochastic/sampling.hpp"
#include "support/rng.hpp"

namespace qs {
namespace {

class RnaLengthProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RnaLengthProperty, EncodeIsABijection) {
  const unsigned bases = GetParam();
  Xoshiro256 rng(bases);
  std::set<seq_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    for (unsigned b = 0; b < bases; ++b) {
      s += rna::to_char(static_cast<rna::Nucleotide>(rng.uniform_index(4)));
    }
    const seq_t index = rna::encode(s);
    EXPECT_EQ(rna::decode(index, bases), s);
    seen.insert(index);
    EXPECT_LT(index, sequence_count(2 * bases));
  }
  EXPECT_GT(seen.size(), 1u);
}

TEST_P(RnaLengthProperty, BaseDistanceBounds) {
  // 0 <= d_base <= bases, and bit distance / 2 <= d_base <= bit distance.
  const unsigned bases = GetParam();
  Xoshiro256 rng(bases + 100);
  const seq_t n = sequence_count(2 * bases);
  for (int trial = 0; trial < 300; ++trial) {
    const seq_t a = rng.uniform_index(n);
    const seq_t b = rng.uniform_index(n);
    const unsigned d = rna::base_hamming_distance(a, b, bases);
    const unsigned bits = hamming_distance(a, b);
    EXPECT_LE(d, bases);
    EXPECT_LE(d, bits);
    EXPECT_GE(2 * d, bits);
    EXPECT_EQ(d, rna::base_hamming_distance(b, a, bases));
    EXPECT_EQ(rna::base_hamming_distance(a, a, bases), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RnaLengthProperty, ::testing::Values(1u, 3u, 6u),
                         [](const auto& info) {
                           return "bases" + std::to_string(info.param);
                         });

class RnaRateProperty : public ::testing::TestWithParam<double> {};

TEST_P(RnaRateProperty, JukesCantorSpectrumIsKnown) {
  // JC factor eigenvalues: 1 (once) and 1 - 4mu/3 (three times); the grouped
  // Q's spectrum is all products of per-base factor eigenvalues.
  const double mu = GetParam();
  const auto model = rna::uniform_rna_model(2, rna::jukes_cantor(mu));
  const auto q = core::build_q_dense(model);
  const auto eigen = linalg::jacobi_eigen(q);
  const double beta = 1.0 - 4.0 * mu / 3.0;
  // Expected eigenvalues: 1 (x1), beta (x6), beta^2 (x9).
  int ones = 0, betas = 0, beta2s = 0;
  for (double lambda : eigen.values) {
    if (std::abs(lambda - 1.0) < 1e-10) ++ones;
    else if (std::abs(lambda - beta) < 1e-10) ++betas;
    else if (std::abs(lambda - beta * beta) < 1e-10) ++beta2s;
  }
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(betas, 6);
  EXPECT_EQ(beta2s, 9);
}

INSTANTIATE_TEST_SUITE_P(Rates, RnaRateProperty, ::testing::Values(0.01, 0.1, 0.3),
                         [](const auto& info) {
                           return "mu" + std::to_string(static_cast<int>(
                                             info.param * 100));
                         });

class KrylovSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KrylovSizeProperty, CgSolvesRandomSpdToTolerance) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  linalg::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      a(j, i) = a(i, j);
    }
    a(i, i) += static_cast<double>(n);
  }
  std::vector<double> b(n), x(n, 0.0), r(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto result = linalg::conjugate_gradient(
      [&](std::span<const double> in, std::span<double> out) { a.multiply(in, out); },
      b, x);
  ASSERT_TRUE(result.converged);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] -= b[i];
  EXPECT_LT(linalg::norm2(r) / linalg::norm2(b), 1e-10);
  // CG terminates within n iterations in exact arithmetic; allow slack.
  EXPECT_LE(result.iterations, static_cast<unsigned>(2 * n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KrylovSizeProperty,
                         ::testing::Values(std::size_t{2}, std::size_t{17},
                                           std::size_t{64}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

struct DistConfig {
  unsigned nu;
  unsigned ranks;
  double p;
};

class DistributedProperty : public ::testing::TestWithParam<DistConfig> {};

TEST_P(DistributedProperty, BlockedButterflyIsExact) {
  const auto [nu, ranks, p] = GetParam();
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu * ranks);
  const distributed::BlockLayout layout(nu, ranks);

  std::vector<double> x(sequence_count(nu));
  Xoshiro256 rng(nu + ranks);
  for (double& v : x) v = rng.uniform(0.0, 1.0);

  std::vector<double> expected(x.size());
  core::FmmpOperator(model, landscape).apply(x, expected);

  auto dv = distributed::DistributedVector::scatter(layout, x);
  distributed::TrafficStats stats;
  distributed::distributed_apply_w(model, landscape, dv, stats);
  const auto result = dv.gather();
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_DOUBLE_EQ(result[i], expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistributedProperty,
    ::testing::Values(DistConfig{6, 2, 0.1}, DistConfig{8, 8, 0.01},
                      DistConfig{9, 16, 0.05}, DistConfig{11, 4, 0.2},
                      DistConfig{12, 32, 0.02}),
    [](const auto& info) {
      return "nu" + std::to_string(info.param.nu) + "_ranks" +
             std::to_string(info.param.ranks);
    });

class BinomialProperty : public ::testing::TestWithParam<double> {};

TEST_P(BinomialProperty, SamplesStayInRangeAndMatchMean) {
  const double p = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  for (std::uint64_t n : {1ull, 7ull, 100ull, 5000ull}) {
    double sum = 0.0;
    const int reps = 4000;
    for (int r = 0; r < reps; ++r) {
      const auto k = stochastic::binomial_sample(rng, n, p);
      ASSERT_LE(k, n);
      sum += static_cast<double>(k);
    }
    const double mean = sum / reps;
    const double expected = static_cast<double>(n) * p;
    const double sigma = std::sqrt(std::max(expected * (1 - p), 1e-12) / reps);
    EXPECT_NEAR(mean, expected, 6.0 * sigma + 1e-9) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, BinomialProperty,
                         ::testing::Values(0.001, 0.2, 0.5, 0.8, 0.999),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 1000));
                         });

}  // namespace
}  // namespace qs
