// Cross-validation of the three mat-vec operators (Fmmp, Xmvp, Smvp) and
// the problem formulations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fmmp.hpp"
#include "core/smvp.hpp"
#include "core/xmvp.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::core {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  return v;
}

struct FormulationCase {
  Formulation formulation;
  const char* name;
};

class OperatorAgreement : public ::testing::TestWithParam<FormulationCase> {};

TEST_P(OperatorAgreement, FmmpEqualsSmvpEqualsFullXmvp) {
  const unsigned nu = 9;
  const std::size_t n = 512;
  const auto model = MutationModel::uniform(nu, 0.03);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 99);
  const Formulation f = GetParam().formulation;

  const FmmpOperator fmmp(model, landscape, f);
  const XmvpOperator xmvp(model, landscape, nu, f);
  const SmvpOperator smvp(model, landscape, f);

  const auto x = random_vector(n, 5);
  std::vector<double> y_fmmp(n), y_xmvp(n), y_smvp(n);
  fmmp.apply(x, y_fmmp);
  xmvp.apply(x, y_xmvp);
  smvp.apply(x, y_smvp);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_fmmp[i], y_smvp[i], 1e-12) << GetParam().name;
    EXPECT_NEAR(y_xmvp[i], y_smvp[i], 1e-12) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulations, OperatorAgreement,
    ::testing::Values(FormulationCase{Formulation::right, "right"},
                      FormulationCase{Formulation::symmetric, "symmetric"},
                      FormulationCase{Formulation::left, "left"}),
    [](const auto& info) { return info.param.name; });

TEST(XmvpOperator, TruncationErrorDecreasesWithRadius) {
  const unsigned nu = 10;
  const std::size_t n = 1024;
  const auto model = MutationModel::uniform(nu, 0.01);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 7);
  const auto x = random_vector(n, 8);

  std::vector<double> exact(n);
  FmmpOperator(model, landscape).apply(x, exact);

  double prev_err = 1e300;
  for (unsigned d : {1u, 3u, 5u, 8u, nu}) {
    const XmvpOperator xmvp(model, landscape, d);
    std::vector<double> y(n);
    xmvp.apply(x, y);
    const double err = linalg::max_abs_diff(y, exact);
    EXPECT_LE(err, prev_err * (1.0 + 1e-12)) << "d=" << d;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-12);  // d = nu is exact
}

TEST(XmvpOperator, DmaxFiveIsAccurateAtSmallP) {
  // The paper reports ~1e-10 approximation error for d_max = 5 at p = 0.01.
  const unsigned nu = 12;
  const auto model = MutationModel::uniform(nu, 0.01);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 21);
  const auto x = random_vector(std::size_t{1} << nu, 3);

  std::vector<double> exact(x.size()), approx(x.size());
  FmmpOperator(model, landscape).apply(x, exact);
  XmvpOperator(model, landscape, 5).apply(x, approx);
  EXPECT_LT(linalg::max_abs_diff(exact, approx), 1e-8);
  EXPECT_GT(linalg::max_abs_diff(exact, approx), 0.0);  // genuinely truncated
}

TEST(XmvpOperator, PatternCountIsBinomialPrefixSum) {
  const unsigned nu = 10;
  const auto model = MutationModel::uniform(nu, 0.05);
  const auto landscape = Landscape::flat(nu, 1.0);
  // sum_{k<=2} C(10,k) = 1 + 10 + 45.
  EXPECT_EQ(XmvpOperator(model, landscape, 2).pattern_count(), 56u);
  EXPECT_EQ(XmvpOperator(model, landscape, 0).pattern_count(), 1u);
  EXPECT_EQ(XmvpOperator(model, landscape, nu).pattern_count(), 1024u);
}

TEST(XmvpOperator, EngineApplyMatchesSerial) {
  const unsigned nu = 8;
  const auto model = MutationModel::uniform(nu, 0.02);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 31);
  const auto x = random_vector(256, 4);
  std::vector<double> serial(256), parallel_out(256);
  XmvpOperator(model, landscape, 3).apply(x, serial);
  XmvpOperator xp(model, landscape, 3, Formulation::right,
                  &parallel::parallel_engine());
  xp.apply(x, parallel_out);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_NEAR(serial[i], parallel_out[i], 1e-13);
  }
}

TEST(FmmpOperator, EngineApplyMatchesSerial) {
  const unsigned nu = 11;
  const auto model = MutationModel::uniform(nu, 0.04);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 41);
  const auto x = random_vector(std::size_t{1} << nu, 6);
  std::vector<double> serial(x.size()), engine_out(x.size());
  FmmpOperator(model, landscape).apply(x, serial);
  FmmpOperator with_engine(model, landscape, Formulation::right,
                           &parallel::parallel_engine());
  with_engine.apply(x, engine_out);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], engine_out[i]);
  }
}

TEST(FmmpOperator, LevelOrdersAgree) {
  const unsigned nu = 9;
  const auto model = MutationModel::uniform(nu, 0.02);
  const auto landscape = Landscape::random(nu, 5.0, 1.0, 51);
  const auto x = random_vector(512, 9);
  std::vector<double> asc(512), desc(512);
  FmmpOperator(model, landscape, Formulation::right, nullptr,
               transforms::LevelOrder::ascending)
      .apply(x, asc);
  FmmpOperator(model, landscape, Formulation::right, nullptr,
               transforms::LevelOrder::descending)
      .apply(x, desc);
  for (std::size_t i = 0; i < 512; ++i) EXPECT_NEAR(asc[i], desc[i], 1e-13);
}

TEST(FmmpOperator, WorksForPerSiteAndGroupedModels) {
  // Section 2.2: generalized mutation at the same cost. Validate against
  // the dense assembly.
  Xoshiro256 rng(61);
  std::vector<transforms::Factor2> sites;
  for (unsigned k = 0; k < 6; ++k) {
    sites.push_back(
        transforms::Factor2::asymmetric(rng.uniform(0.0, 0.3), rng.uniform(0.0, 0.3)));
  }
  const auto model = MutationModel::per_site(sites);
  const auto landscape = Landscape::random(6, 5.0, 1.0, 62);
  const FmmpOperator fmmp(model, landscape);
  const SmvpOperator smvp(model, landscape);
  const auto x = random_vector(64, 10);
  std::vector<double> y1(64), y2(64);
  fmmp.apply(x, y1);
  smvp.apply(x, y2);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(FmmpOperator, SymmetricFormulationRejectsAsymmetricModel) {
  const auto model = MutationModel::per_site(
      {transforms::Factor2::asymmetric(0.3, 0.1),
       transforms::Factor2::asymmetric(0.2, 0.2)});
  const auto landscape = Landscape::flat(2, 1.0);
  EXPECT_THROW(FmmpOperator(model, landscape, Formulation::symmetric),
               precondition_error);
}

TEST(XmvpOperator, RejectsNonUniformModelAndBadRadius) {
  const auto per_site = MutationModel::per_site(
      {transforms::Factor2::uniform(0.1), transforms::Factor2::uniform(0.2)});
  const auto landscape = Landscape::flat(2, 1.0);
  EXPECT_THROW(XmvpOperator(per_site, landscape, 1), precondition_error);
  const auto uniform = MutationModel::uniform(2, 0.1);
  EXPECT_THROW(XmvpOperator(uniform, landscape, 3), precondition_error);
}

TEST(Operators, ApplyRejectsAliasingAndWrongSize) {
  const auto model = MutationModel::uniform(4, 0.1);
  const auto landscape = Landscape::flat(4, 1.0);
  const FmmpOperator op(model, landscape);
  std::vector<double> x(16, 1.0);
  EXPECT_THROW(op.apply(x, x), precondition_error);
  std::vector<double> y(8);
  EXPECT_THROW(op.apply(x, y), precondition_error);
}

TEST(ConvertEigenvector, RoundTripsBetweenFormulations) {
  const auto landscape = Landscape::random(6, 5.0, 1.0, 77);
  auto x = random_vector(64, 11);
  linalg::normalize1(x);
  const auto original = x;
  convert_eigenvector(Formulation::right, Formulation::symmetric, landscape, x);
  convert_eigenvector(Formulation::symmetric, Formulation::left, landscape, x);
  convert_eigenvector(Formulation::left, Formulation::right, landscape, x);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(x[i], original[i], 1e-13);
}

TEST(ConvertEigenvector, MatchesPaperRelations) {
  // x_R = F^{-1} x_L componentwise (then both normalised).
  const auto landscape = Landscape::random(5, 5.0, 1.0, 78);
  auto x_left = random_vector(32, 12);
  linalg::normalize1(x_left);
  auto x_right = x_left;
  convert_eigenvector(Formulation::left, Formulation::right, landscape, x_right);
  std::vector<double> manual(32);
  for (std::size_t i = 0; i < 32; ++i) manual[i] = x_left[i] / landscape.value(i);
  linalg::normalize1(manual);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_NEAR(x_right[i], manual[i], 1e-14);
}

TEST(Operators, NamesAreInformative) {
  const auto model = MutationModel::uniform(4, 0.1);
  const auto landscape = Landscape::flat(4, 1.0);
  EXPECT_EQ(FmmpOperator(model, landscape).name(), "Fmmp");
  EXPECT_EQ(XmvpOperator(model, landscape, 2).name(), "Xmvp(2)");
  EXPECT_EQ(SmvpOperator(model, landscape).name(), "Smvp");
}

}  // namespace
}  // namespace qs::core
