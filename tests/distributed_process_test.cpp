// Multi-process transport tests: run_multiprocess / SocketExchange.
//
// These tests fork real child processes (one per non-zero rank) connected by
// AF_UNIX socketpairs, so they exercise the actual wire path: header framing,
// segmented pipelining, binomial gather/scatter, and the death-of-a-peer
// error paths.  The calling process is rank 0, so all gtest assertions below
// run in the parent; child ranks communicate their health only through the
// transport itself (a child that misbehaves surfaces as ExchangeError here).
//
// NOTE: keep this file out of the TSan suite — fork() from an instrumented
// multi-threaded runner is not a supported TSan configuration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "distributed/distributed_solver.hpp"
#include "distributed/exchange.hpp"
#include "distributed/reduction.hpp"
#include "support/rng.hpp"

namespace qs::distributed {
namespace {

TEST(MultiProcess, SendrecvSwapsBlocksOverTheWire) {
  run_multiprocess(2, [](Exchange& ex) {
    std::vector<double> mine(1000, static_cast<double>(ex.rank()) + 0.5);
    std::vector<double> theirs(1000, -1.0);
    ex.sendrecv(ex.rank() ^ 1u, mine, theirs, 7);
    const double expected = static_cast<double>(ex.rank() ^ 1u) + 0.5;
    for (double v : theirs) {
      if (v != expected) throw ExchangeError("wrong payload received");
    }
    if (ex.rank() == 0) {
      EXPECT_EQ(ex.stats().messages, 1u);
      EXPECT_EQ(ex.stats().doubles_moved, 1000u);
    }
  });
}

TEST(MultiProcess, OverlappedSendrecvDeliversEverySegmentInOrder) {
  // A block larger than one pipeline segment, so the overlapped path
  // actually splits it; the callback must cover [0, n) exactly, ascending.
  run_multiprocess(2, [](Exchange& ex) {
    const std::size_t n = 3 * 4096 + 123;  // 3 full segments plus a tail
    std::vector<double> mine(n, static_cast<double>(ex.rank()));
    std::vector<double> theirs(n, -1.0);
    std::size_t covered = 0;
    ex.sendrecv_overlapped(ex.rank() ^ 1u, mine, theirs, 9,
                           [&](std::size_t begin, std::size_t end) {
                             if (begin != covered || end <= begin) {
                               throw ExchangeError("segment order violated");
                             }
                             covered = end;
                           });
    if (covered != n) throw ExchangeError("segments did not cover the block");
    const double expected = static_cast<double>(ex.rank() ^ 1u);
    for (double v : theirs) {
      if (v != expected) throw ExchangeError("wrong payload received");
    }
    if (ex.rank() == 0) {
      // The pipelined path attributes SOME of the wall time to overlap
      // (combine ran while a later segment was in flight).
      EXPECT_GT(ex.stats().exchange_ns + ex.stats().overlap_ns, 0u);
    }
  });
}

TEST(MultiProcess, AllreduceMatchesTheTreeOnEveryRank) {
  const std::vector<double> partials = {0.1, -0.7, 1.3, 0.04};
  const double expected = tree_sum(partials);
  run_multiprocess(4, [&](Exchange& ex) {
    const double got = ex.allreduce_sum(partials[ex.rank()], 2);
    // Exact-bits check on every rank; a child that disagrees aborts the run.
    if (got != expected) throw ExchangeError("allreduce bits diverged");
    if (ex.rank() == 0) {
      EXPECT_EQ(got, expected);
    }
  });
}

TEST(MultiProcess, GatherScatterRoundTripAcrossFourProcesses) {
  const std::size_t block = 300;
  run_multiprocess(4, [&](Exchange& ex) {
    std::vector<double> image;
    if (ex.rank() == 0) {
      image.resize(4 * block);
      Xoshiro256 rng(5);
      for (double& v : image) v = rng.uniform(-1.0, 1.0);
    }
    std::vector<double> mine(block, 0.0);
    ex.scatter_from_root(mine, image, 1);
    std::vector<double> back(ex.rank() == 0 ? 4 * block : 0, 0.0);
    ex.gather_to_root(mine, back, 2);
    if (ex.rank() == 0) {
      EXPECT_EQ(back, image);
    }
  });
}

TEST(MultiProcess, TagMismatchIsAStructuredErrorNotCorruption) {
  EXPECT_THROW(run_multiprocess(
                   2,
                   [](Exchange& ex) {
                     std::vector<double> buf(16, 1.0);
                     std::vector<double> got(16);
                     // The two ranks disagree on the tag: the header check
                     // must fail on both sides.
                     ex.sendrecv(ex.rank() ^ 1u, buf, got,
                                 ex.rank() == 0 ? 3 : 4);
                   },
                   5000),
               ExchangeError);
}

TEST(MultiProcess, ARankDyingMidExchangeSurfacesPromptlyWithoutAHang) {
  // Rank 1 dies (hard _exit, no unwinding) before its half of the swap;
  // rank 0's poll-gated read must fail fast — EOF on the socket, not a
  // 30-second timeout — and the child must be reaped.
  EXPECT_THROW(run_multiprocess(
                   2,
                   [](Exchange& ex) {
                     if (ex.rank() == 1) _exit(7);
                     std::vector<double> buf(4096, 1.0);
                     std::vector<double> got(4096);
                     ex.sendrecv(1, buf, got, 1);
                   },
                   5000),
               ExchangeError);
}

// ---------------------------------------------------------------------------
// Full solves over the process transport.
// ---------------------------------------------------------------------------

TEST(MultiProcessSolve, BitIdenticalToTheLockstepTransport) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 19);
  DistributedPowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);

  opts.exchange = ExchangeKind::lockstep;
  const auto lockstep = distributed_power_iteration(model, landscape, 4, opts);
  ASSERT_TRUE(lockstep.converged);

  opts.exchange = ExchangeKind::process;
  const auto process = distributed_power_iteration(model, landscape, 4, opts);
  ASSERT_TRUE(process.converged);

  EXPECT_EQ(process.eigenvalue, lockstep.eigenvalue);  // exact bits
  EXPECT_EQ(process.iterations, lockstep.iterations);
  EXPECT_EQ(process.residual, lockstep.residual);
  ASSERT_EQ(process.eigenvector.size(), lockstep.eigenvector.size());
  for (std::size_t i = 0; i < process.eigenvector.size(); ++i) {
    ASSERT_EQ(process.eigenvector[i], lockstep.eigenvector[i]) << "i=" << i;
  }
  EXPECT_EQ(process.rank_count, 4u);
  EXPECT_GT(process.traffic.messages, 0u);
  EXPECT_GT(process.traffic.bytes_moved(), 0u);
}

TEST(MultiProcessSolve, BlocksEntryNeverMaterialisesTheFullLandscape) {
  // The blocks entry point hands each rank only its own fitness block; with
  // gather_eigenvector=false nothing of size 2^nu is ever allocated in any
  // single rank (this is the capacity configuration the bench scales up).
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 4.0, 1.0, 43);

  DistributedPowerOptions opts;
  opts.exchange = ExchangeKind::process;
  opts.gather_eigenvector = false;
  const auto dist = distributed_power_iteration_blocks(
      model, 4,
      [&landscape](const BlockLayout& layout, unsigned rank) {
        const auto v = landscape.values().subspan(layout.block_begin(rank),
                                                  layout.block_size());
        return std::vector<double>(v.begin(), v.end());
      },
      opts);
  ASSERT_TRUE(dist.converged);
  EXPECT_EQ(dist.eigenvector.size(), (std::size_t{1} << nu) / 4);

  // Same spectrum as the lockstep full-gather run, to rounding.
  const auto reference = distributed_power_iteration(model, landscape, 4);
  EXPECT_EQ(dist.eigenvalue, reference.eigenvalue);
  EXPECT_EQ(dist.iterations, reference.iterations);
}

TEST(MultiProcessSolve, ARankDyingMidSolveIsAStructuredError) {
  // Rank 2's fitness callback hard-exits while the others are already
  // entering the first collective: the solve must fail with ExchangeError
  // (a named transport failure), not hang or return garbage.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 47);
  DistributedPowerOptions opts;
  opts.exchange = ExchangeKind::process;
  opts.exchange_timeout_ms = 5000;
  EXPECT_THROW(
      (void)distributed_power_iteration_blocks(
          model, 4,
          [&landscape](const BlockLayout& layout, unsigned rank) {
            if (rank == 2) _exit(7);
            const auto v = landscape.values().subspan(layout.block_begin(rank),
                                                      layout.block_size());
            return std::vector<double>(v.begin(), v.end());
          },
          opts),
      ExchangeError);
}

TEST(MultiProcessSolve, CooperativeCancellationCrossesTheProcessBoundary) {
  // The stop flag lives in rank 0 (the parent): the control-word allreduce
  // must carry the vote to the children so every process agrees to stop at
  // the same iteration and the group shuts down cleanly.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 53);

  std::atomic<bool> stop{false};
  std::atomic<unsigned> checks{0};
  DistributedPowerOptions opts;
  opts.exchange = ExchangeKind::process;
  opts.tolerance = 0.0;
  opts.stall_window = 0;
  opts.max_iterations = 200;
  opts.on_residual = [&](unsigned, double) {
    if (++checks >= 2) stop.store(true);
  };
  opts.should_stop = [&stop] { return stop.load(); };

  const auto dist = distributed_power_iteration(model, landscape, 4, opts);
  EXPECT_EQ(dist.failure, solvers::SolverFailure::cancelled);
  EXPECT_FALSE(dist.converged);
  EXPECT_LT(dist.iterations, 200u);
  EXPECT_GT(dist.traffic.messages, 0u);
}

}  // namespace
}  // namespace qs::distributed
