// Unit tests for the sequence-space bit utilities.
#include "support/bits.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qs {
namespace {

TEST(Bits, SequenceCount) {
  EXPECT_EQ(sequence_count(0), 1u);
  EXPECT_EQ(sequence_count(1), 2u);
  EXPECT_EQ(sequence_count(10), 1024u);
  EXPECT_EQ(sequence_count(20), 1048576u);
}

TEST(Bits, HammingWeight) {
  EXPECT_EQ(hamming_weight(0), 0u);
  EXPECT_EQ(hamming_weight(0b1011), 3u);
  EXPECT_EQ(hamming_weight(~seq_t{0}), 64u);
}

TEST(Bits, HammingDistanceIsXorWeight) {
  EXPECT_EQ(hamming_distance(0b1100, 0b1010), 2u);
  EXPECT_EQ(hamming_distance(7, 7), 0u);
  EXPECT_EQ(hamming_distance(0, 0b11111), 5u);
}

TEST(Bits, HammingDistanceSymmetry) {
  for (seq_t i = 0; i < 64; ++i) {
    for (seq_t j = 0; j < 64; ++j) {
      EXPECT_EQ(hamming_distance(i, j), hamming_distance(j, i));
    }
  }
}

TEST(Bits, HammingDistanceTriangleInequality) {
  for (seq_t i = 0; i < 32; ++i) {
    for (seq_t j = 0; j < 32; ++j) {
      for (seq_t k = 0; k < 32; ++k) {
        EXPECT_LE(hamming_distance(i, k),
                  hamming_distance(i, j) + hamming_distance(j, k));
      }
    }
  }
}

TEST(Bits, GrayCodeNeighborsDifferInOneBit) {
  // The defining property the paper's footnote 2 relies on.
  for (seq_t i = 0; i + 1 < 1024; ++i) {
    EXPECT_EQ(hamming_distance(gray_code(i), gray_code(i + 1)), 1u);
  }
}

TEST(Bits, GrayCodeIsBijectiveAndInvertible) {
  std::set<seq_t> seen;
  for (seq_t i = 0; i < 4096; ++i) {
    const seq_t g = gray_code(i);
    EXPECT_TRUE(seen.insert(g).second);
    EXPECT_EQ(gray_decode(g), i);
  }
}

TEST(Bits, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1023));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(1024), 10u);
}

TEST(FixedWeightMasks, EnumeratesAllCombinations) {
  // C(6, k) masks for each k, all distinct, all of the right weight.
  const unsigned nu = 6;
  const unsigned expected[] = {1, 6, 15, 20, 15, 6, 1};
  for (unsigned k = 0; k <= nu; ++k) {
    std::set<seq_t> seen;
    FixedWeightMasks(nu, k).for_each([&](seq_t m) {
      EXPECT_EQ(hamming_weight(m), k);
      EXPECT_LT(m, sequence_count(nu));
      EXPECT_TRUE(seen.insert(m).second);
    });
    EXPECT_EQ(seen.size(), expected[k]);
  }
}

TEST(FixedWeightMasks, ZeroWeightIsJustZero) {
  const auto masks = FixedWeightMasks(10, 0).to_vector();
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], 0u);
}

TEST(FixedWeightMasks, FullWeightIsAllOnes) {
  const auto masks = FixedWeightMasks(10, 10).to_vector();
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], sequence_count(10) - 1);
}

TEST(FixedWeightMasks, IncreasingOrder) {
  const auto masks = FixedWeightMasks(12, 4).to_vector();
  for (std::size_t i = 1; i < masks.size(); ++i) {
    EXPECT_LT(masks[i - 1], masks[i]);
  }
}

TEST(FixedWeightMasks, RejectsBadArguments) {
  EXPECT_THROW(FixedWeightMasks(5, 6), precondition_error);
  EXPECT_THROW(FixedWeightMasks(63, 1), precondition_error);
}

}  // namespace
}  // namespace qs
