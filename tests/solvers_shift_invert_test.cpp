// Unit tests for the shift-and-invert eigensolvers on W = Q F and the
// restarted Lanczos solver.
#include <gtest/gtest.h>

#include <cmath>

#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/shift_invert.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::solvers {
namespace {

struct Problem {
  core::MutationModel model;
  core::Landscape landscape;
};

Problem make_problem(unsigned nu, double p, std::uint64_t seed) {
  return {core::MutationModel::uniform(nu, p),
          core::Landscape::random(nu, 5.0, 1.0, seed)};
}

TEST(SolveShiftedW, MatchesDenseSolve) {
  const auto [model, landscape] = make_problem(7, 0.03, 1);
  const double mu = 0.7;  // inside the spectrum -> MINRES path
  const std::size_t n = 128;

  std::vector<double> b(n), x(n, 0.0);
  Xoshiro256 rng(2);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const auto r = solve_shifted_symmetric_w(model, landscape, mu, b, x, {1e-12, 5000});
  ASSERT_TRUE(r.converged);

  // Dense check: (W_S - mu I) x == b.
  auto w = core::build_w_dense(model, landscape, core::Formulation::symmetric);
  std::vector<double> check(n);
  w.multiply(x, check);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(check[i] - mu * x[i], b[i], 1e-8);
  }
}

TEST(SolveShiftedW, CgPathWithQPreconditioner) {
  const auto [model, landscape] = make_problem(8, 0.02, 3);
  const double mu = 0.0;  // W_S positive definite -> CG path
  const std::size_t n = 256;
  std::vector<double> b(n), x_pre(n, 0.0), x_plain(n, 0.0);
  Xoshiro256 rng(4);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const auto with_pre = solve_shifted_symmetric_w(model, landscape, mu, b, x_pre,
                                                  {1e-12, 5000}, true);
  const auto without = solve_shifted_symmetric_w(model, landscape, mu, b, x_plain,
                                                 {1e-12, 5000}, false);
  ASSERT_TRUE(with_pre.converged);
  ASSERT_TRUE(without.converged);
  EXPECT_LT(linalg::max_abs_diff(x_pre, x_plain), 1e-7);
  // The exact mutation-part preconditioner must help (and never hurt).
  EXPECT_LE(with_pre.iterations, without.iterations);
}

TEST(InverseIterationW, FindsDominantPairWithShiftAboveSpectrum) {
  const auto [model, landscape] = make_problem(8, 0.02, 5);
  // lambda_0 <= f_max; shifting just above it targets the dominant pair.
  const double mu = landscape.max_fitness() * 1.0001;
  const auto r = inverse_iteration_w(model, landscape, mu);
  ASSERT_TRUE(r.converged);

  const core::FmmpOperator op(model, landscape);
  const auto reference = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(reference.converged);
  EXPECT_NEAR(r.eigenvalue, reference.eigenvalue, 1e-9);
  EXPECT_LT(linalg::max_abs_diff(r.concentrations, reference.eigenvector), 1e-8);
  // Shift-invert converges in far fewer outer steps than the power method
  // takes iterations.
  EXPECT_LT(r.outer_iterations, 40u);
}

TEST(RayleighQuotientIterationW, CubicallyFastFromLandscapeStart) {
  const auto [model, landscape] = make_problem(9, 0.01, 7);
  const auto r = rayleigh_quotient_iteration_w(model, landscape);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.outer_iterations, 8u);

  const core::FmmpOperator op(model, landscape);
  const auto reference = power_iteration(op, landscape_start(landscape));
  EXPECT_NEAR(r.eigenvalue, reference.eigenvalue, 1e-9);
  EXPECT_LT(linalg::max_abs_diff(r.concentrations, reference.eigenvector), 1e-8);
}

TEST(SmallestEigenpairW, ValidatesPaperLowerBound) {
  // Section 3: lambda_min >= (1-2p)^nu f_min. Compute lambda_min exactly
  // and compare with both the bound and the dense spectrum.
  const auto [model, landscape] = make_problem(6, 0.05, 9);
  const auto r = smallest_eigenpair_w(model, landscape);
  ASSERT_TRUE(r.converged);

  const auto w = core::build_w_dense(model, landscape, core::Formulation::symmetric);
  const auto dense = linalg::jacobi_eigen(w);
  EXPECT_NEAR(r.eigenvalue, dense.values.back(), 1e-9);
  EXPECT_GE(r.eigenvalue, core::conservative_shift(model, landscape) - 1e-12);
}

TEST(ShiftInvertW, RejectsUnsupportedModels) {
  const auto asym = core::MutationModel::per_site(
      {transforms::Factor2::asymmetric(0.3, 0.1),
       transforms::Factor2::asymmetric(0.1, 0.1)});
  const auto landscape = core::Landscape::flat(2, 1.0);
  EXPECT_THROW(inverse_iteration_w(asym, landscape, 1.0), precondition_error);
}

TEST(Lanczos, MatchesPowerIterationOnRandomLandscape) {
  const auto [model, landscape] = make_problem(10, 0.01, 11);
  const auto lan = lanczos_dominant_w(model, landscape);
  ASSERT_TRUE(lan.converged);

  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(pi.converged);
  EXPECT_NEAR(lan.eigenvalue, pi.eigenvalue, 1e-9);
  EXPECT_LT(linalg::max_abs_diff(lan.concentrations, pi.eigenvector), 1e-8);
}

TEST(Lanczos, ConvergesInFewerMatvecsThanPowerIteration) {
  // The Krylov subspace beats the single-vector iteration in products —
  // the storage-vs-speed trade-off the paper describes in Section 3.
  const auto [model, landscape] = make_problem(10, 0.05, 13);
  const auto lan = lanczos_dominant_w(model, landscape);
  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(lan.converged);
  ASSERT_TRUE(pi.converged);
  EXPECT_LT(lan.matvec_count, pi.iterations);
}

TEST(Lanczos, SmallBasisWithRestartsStillConverges) {
  const auto [model, landscape] = make_problem(8, 0.03, 15);
  LanczosOptions opts;
  opts.basis_size = 4;  // tiny memory footprint -> relies on restarting
  const auto r = lanczos_dominant_w(model, landscape, {}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.restarts, 1u);

  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  EXPECT_NEAR(r.eigenvalue, pi.eigenvalue, 1e-9);
}

TEST(Lanczos, ConcentrationsArePositiveAndNormalised) {
  const auto [model, landscape] = make_problem(9, 0.02, 17);
  const auto r = lanczos_dominant_w(model, landscape);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::norm1(std::span<const double>(r.concentrations)), 1.0, 1e-12);
  for (double v : r.concentrations) EXPECT_GT(v, 0.0);
}

TEST(Lanczos, RejectsBadArguments) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  LanczosOptions bad;
  bad.basis_size = 1;
  EXPECT_THROW(lanczos_dominant_w(model, landscape, {}, bad), precondition_error);
  std::vector<double> wrong(8, 1.0);
  EXPECT_THROW(lanczos_dominant_w(model, landscape, wrong), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
