// Block subspace iteration, plan autotuning, and landscape-family solves:
// Ritz pairs must agree with the dense spectrum and with the one-at-a-time
// deflation baseline on the paper's landscapes, the autotuner must return a
// valid measured plan (default included), and the batched family solve must
// reproduce the per-landscape facade results.
#include "solvers/block_power.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/sweep.hpp"
#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "parallel/engine.hpp"
#include "solvers/deflation.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "transforms/plan_autotune.hpp"

namespace qs::solvers {
namespace {

TEST(BlockPower, TopPairsMatchDenseSpectrumOnRandomLandscape) {
  const unsigned nu = 6;
  const std::size_t n = std::size_t{1} << nu;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric);

  // Dense reference spectrum of W_sym via columns of the operator.
  linalg::DenseMatrix w(n, n);
  std::vector<double> e(n, 0.0), col(n);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    op.apply(e, col);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) w(i, j) = col[i];
  }
  const auto dense = linalg::jacobi_eigen(w);

  BlockPowerOptions opts;
  opts.k = 4;
  opts.tolerance = 1e-11;
  const auto r = block_power_iteration(op, opts);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.eigenvalues.size(), 4u);
  for (unsigned j = 0; j < opts.k; ++j) {
    EXPECT_NEAR(r.eigenvalues[j], dense.values[j],
                1e-9 * std::abs(dense.values[j]))
        << "pair " << j;
    // Eigenvector agreement up to sign: |<v_block, v_dense>| ~ 1.
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += r.eigenvectors[j][i] * dense.vectors(i, j);
    }
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-7) << "pair " << j;
  }
}

TEST(BlockPower, AgreesWithDeflationGapOnPaperLandscapes) {
  const unsigned nu = 8;
  const auto landscapes = {core::Landscape::single_peak(nu, 2.0, 1.0),
                           core::Landscape::random(nu, 5.0, 1.0, 3)};
  for (const auto& landscape : landscapes) {
    const auto model = core::MutationModel::uniform(nu, 0.01);
    const SpectralGap gap = spectral_gap(model, landscape);

    BlockPowerOptions opts;
    opts.k = 2;
    opts.tolerance = 1e-11;
    const auto r = top_k_spectrum(model, landscape, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.eigenvalues[0], gap.lambda0, 1e-8 * gap.lambda0);
    EXPECT_NEAR(r.eigenvalues[1], gap.lambda1, 1e-7 * gap.lambda0);
  }
}

TEST(BlockPower, DominantPairMatchesFacadeSolveAcrossBackends) {
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.015);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto facade = solve(model, landscape);
  ASSERT_TRUE(facade.converged);

  for (parallel::Backend kind : {parallel::Backend::serial,
                                 parallel::Backend::openmp,
                                 parallel::Backend::thread_pool}) {
    const auto engine = parallel::make_engine(kind);
    BlockPowerOptions opts;
    opts.k = 2;
    opts.tolerance = 1e-11;
    opts.engine = engine.get();
    const auto r = top_k_spectrum(model, landscape, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.eigenvalues[0], facade.eigenvalue, 1e-9 * facade.eigenvalue);
    // top_k_spectrum reports right-formulation concentrations; compare to
    // the facade's concentration vector entrywise.
    ASSERT_EQ(r.eigenvectors[0].size(), facade.concentrations.size());
    for (std::size_t i = 0; i < facade.concentrations.size(); ++i) {
      EXPECT_NEAR(r.eigenvectors[0][i], facade.concentrations[i], 1e-8)
          << "entry " << i;
    }
  }
}

TEST(BlockPower, GuardColumnsAcceleratedWidthStillCorrect) {
  // Explicit wide block (guard columns beyond k) converges to the same pairs.
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::linear(nu, 2.0, 1.0);
  BlockPowerOptions narrow, wide;
  narrow.k = wide.k = 2;
  narrow.tolerance = wide.tolerance = 1e-11;
  wide.block = 8;
  const auto a = top_k_spectrum(model, landscape, narrow);
  const auto b = top_k_spectrum(model, landscape, wide);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.eigenvalues[0], b.eigenvalues[0], 1e-9 * a.eigenvalues[0]);
  EXPECT_NEAR(a.eigenvalues[1], b.eigenvalues[1], 1e-8 * a.eigenvalues[0]);
}

TEST(PlanAutotune, HeuristicPlanIsAlwaysValid) {
  const auto caches = transforms::detect_cache_hierarchy();
  for (std::size_t m : {1ul, 4ul, 8ul}) {
    const auto plan = transforms::cache_heuristic_plan(caches, m);
    EXPECT_GT(plan.tile_log2, plan.chunk_log2);
    EXPECT_GE(plan.tile_log2, 4u);
    EXPECT_LE(plan.tile_log2, 20u);
  }
  // Undetected hierarchy falls back to the defaults.
  const auto fallback = transforms::cache_heuristic_plan(transforms::CacheHierarchy{});
  EXPECT_EQ(fallback.tile_log2, transforms::BlockedPlan{}.tile_log2);
  EXPECT_EQ(fallback.chunk_log2, transforms::BlockedPlan{}.chunk_log2);
}

TEST(PlanAutotune, ReportMeasuresDefaultFirstAndPicksNoSlowerPlan) {
  const auto report = transforms::autotune_blocked_plan(
      12, parallel::serial_engine(), 1, 1);
  ASSERT_GE(report.timings.size(), 2u);
  const transforms::BlockedPlan def{};
  EXPECT_EQ(report.timings.front().plan.tile_log2, def.tile_log2);
  EXPECT_EQ(report.timings.front().plan.chunk_log2, def.chunk_log2);
  // The chosen plan's measured time is <= the default's measured time.
  // Match on the full plan identity: the stage-2 microkernel sweep re-lists
  // the winning tile/chunk with different sv_kernel/sv_max_radix settings.
  double best_seconds = -1.0;
  for (const auto& t : report.timings) {
    if (t.plan.tile_log2 == report.best.tile_log2 &&
        t.plan.chunk_log2 == report.best.chunk_log2 &&
        t.plan.sv_kernel == report.best.sv_kernel &&
        t.plan.sv_max_radix == report.best.sv_max_radix) {
      best_seconds = t.seconds;
    }
    EXPECT_GT(t.seconds, 0.0);
  }
  ASSERT_GE(best_seconds, 0.0) << "best plan not among the measured candidates";
  EXPECT_LE(best_seconds, report.timings.front().seconds);
}

TEST(PlanAutotune, TunedPlanSolvesToTheSameEigenpair) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto report = transforms::autotune_blocked_plan(
      nu, parallel::serial_engine(), 1, 1);
  SolveOptions defaults, tuned;
  tuned.plan = report.best;
  const auto a = solve(model, landscape, defaults);
  const auto b = solve(model, landscape, tuned);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.eigenvalue, b.eigenvalue, 1e-12 * a.eigenvalue);
}

TEST(LandscapeFamily, BatchedSolveMatchesPerLandscapeFacade) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const std::vector<core::Landscape> family = {
      core::Landscape::single_peak(nu, 2.0, 1.0),
      core::Landscape::linear(nu, 2.0, 1.0),
      core::Landscape::random(nu, 5.0, 1.0, 17)};

  analysis::FamilyOptions fopts;
  fopts.tolerance = 1e-12;
  const auto batched = analysis::sweep_landscape_family(model, family, fopts);
  ASSERT_TRUE(batched.converged);
  ASSERT_EQ(batched.eigenvalues.size(), family.size());

  for (std::size_t j = 0; j < family.size(); ++j) {
    SolveOptions opts;
    opts.use_shift = false;
    const auto single = solve(model, family[j], opts);
    ASSERT_TRUE(single.converged);
    EXPECT_NEAR(batched.eigenvalues[j], single.eigenvalue,
                1e-9 * single.eigenvalue)
        << "landscape " << j;
    for (std::size_t i = 0; i < single.concentrations.size(); ++i) {
      EXPECT_NEAR(batched.eigenvectors[j][i], single.concentrations[i], 1e-8)
          << "landscape " << j << " entry " << i;
    }
  }
}

TEST(LandscapeFamily, GroupedModelAndBackendsAgree) {
  // The family path also covers grouped Q (scaling sweeps + banded grouped
  // kernel) and every backend.
  const unsigned nu = 6;
  std::vector<linalg::DenseMatrix> groups;
  for (unsigned g = 0; g < 3; ++g) {
    linalg::DenseMatrix f(4, 4);
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t r = 0; r < 4; ++r) f(r, c) = r == c ? 0.91 : 0.03;
    }
    groups.push_back(std::move(f));
  }
  const auto model = core::MutationModel::grouped(groups);
  ASSERT_EQ(model.nu(), nu);
  const std::vector<core::Landscape> family = {
      core::Landscape::single_peak(nu, 3.0, 1.0),
      core::Landscape::random(nu, 5.0, 1.0, 29)};

  std::vector<double> reference;
  for (parallel::Backend kind : {parallel::Backend::serial,
                                 parallel::Backend::openmp,
                                 parallel::Backend::thread_pool}) {
    const auto engine = parallel::make_engine(kind);
    analysis::FamilyOptions fopts;
    fopts.tolerance = 1e-12;
    fopts.engine = engine.get();
    const auto r = analysis::sweep_landscape_family(model, family, fopts);
    ASSERT_TRUE(r.converged);
    if (reference.empty()) {
      reference = r.eigenvalues;
      // Cross-check against the facade on the same grouped model.
      for (std::size_t j = 0; j < family.size(); ++j) {
        SolveOptions opts;
        const auto single = solve(model, family[j], opts);
        ASSERT_TRUE(single.converged);
        EXPECT_NEAR(r.eigenvalues[j], single.eigenvalue,
                    1e-9 * single.eigenvalue);
      }
    } else {
      for (std::size_t j = 0; j < reference.size(); ++j) {
        EXPECT_NEAR(r.eigenvalues[j], reference[j], 1e-10 * reference[j]);
      }
    }
  }
}

}  // namespace
}  // namespace qs::solvers
