// SolverService + SocketServer: correct answers, cache round trips
// bit-identical to fresh solves, admission control under load, deadlines,
// cancellation, worker faults — and in every failure case, a structured
// reply with the daemon still serving afterwards.
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>

#include "service/client.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "stochastic/ensemble.hpp"
#include "testing/fault_injection.hpp"

namespace qs::service {
namespace {

namespace fs = std::filesystem;

SolveRequest quick_request(double peak = 8.0) {
  SolveRequest request;
  request.nu = 6;
  request.landscape = LandscapeKind::single_peak;
  request.param0 = peak;
  request.param1 = 1.0;
  request.p = 0.02;
  request.tolerance = 1e-10;
  request.max_iterations = 100000;
  return request;
}

/// Blocks every worker until release() — makes queue states deterministic.
class WorkerGate {
 public:
  std::function<void()> hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(SolverService, AnswersMatchTheDirectFacadeSolve) {
  SolverService service;
  const SolveReply reply = service.solve(quick_request());
  ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;
  EXPECT_FALSE(reply.cache_hit);
  EXPECT_LE(reply.residual, 1e-10);
  ASSERT_EQ(reply.class_concentrations.size(), 7u);

  // Cross-check against the facade: same model, same landscape, same
  // formulation — eigenvalue and class concentrations must agree to
  // solver tolerance.
  const auto direct = solvers::solve(core::MutationModel::uniform(6, 0.02),
                                     core::Landscape::single_peak(6, 8.0, 1.0));
  ASSERT_TRUE(direct.converged);
  EXPECT_NEAR(reply.eigenvalue, direct.eigenvalue, 1e-8);
  for (std::size_t k = 0; k < reply.class_concentrations.size(); ++k) {
    EXPECT_NEAR(reply.class_concentrations[k], direct.class_concentrations[k], 1e-7);
  }
}

TEST(SolverService, CachedReplyIsBitIdenticalToTheFreshSolve) {
  SolverService service;
  const SolveRequest request = quick_request();
  const SolveReply fresh = service.solve(request);
  ASSERT_EQ(fresh.status, StatusCode::ok);
  ASSERT_FALSE(fresh.cache_hit);

  const SolveReply cached = service.solve(request);
  ASSERT_EQ(cached.status, StatusCode::ok);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(std::memcmp(&cached.eigenvalue, &fresh.eigenvalue, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&cached.residual, &fresh.residual, sizeof(double)), 0);
  EXPECT_EQ(cached.iterations, fresh.iterations);
  ASSERT_EQ(cached.class_concentrations.size(), fresh.class_concentrations.size());
  EXPECT_EQ(std::memcmp(cached.class_concentrations.data(),
                        fresh.class_concentrations.data(),
                        fresh.class_concentrations.size() * sizeof(double)),
            0);
  EXPECT_EQ(service.cache_stats().hits, 1u);
}

TEST(SolverService, DiskCacheSurvivesServiceRestartBitIdentically) {
  const fs::path dir = fs::temp_directory_path() /
                       ("qs_service_cache_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  const SolveRequest request = quick_request();
  SolveReply fresh;
  {
    ServiceConfig config;
    config.cache_dir = dir;
    SolverService service(config);
    fresh = service.solve(request);
    ASSERT_EQ(fresh.status, StatusCode::ok);
  }
  {
    ServiceConfig config;
    config.cache_dir = dir;
    SolverService service(config);
    const SolveReply cached = service.solve(request);
    ASSERT_EQ(cached.status, StatusCode::ok);
    EXPECT_TRUE(cached.cache_hit);
    EXPECT_EQ(std::memcmp(&cached.eigenvalue, &fresh.eigenvalue, sizeof(double)), 0);
    ASSERT_EQ(cached.class_concentrations.size(), fresh.class_concentrations.size());
    EXPECT_EQ(std::memcmp(cached.class_concentrations.data(),
                          fresh.class_concentrations.data(),
                          fresh.class_concentrations.size() * sizeof(double)),
              0);
  }
  fs::remove_all(dir);
}

TEST(SolverService, CoalescesCompatibleRequestsIntoOnePanelBatch) {
  WorkerGate gate;
  ServiceConfig config;
  config.before_batch_hook = gate.hook();
  config.max_batch = 8;
  SolverService service(config);

  // Occupy the single worker with a request from a DIFFERENT (nu, p)
  // batch: it blocks at the gate holding its own batch, so the four
  // compatible requests below are all queued before the worker can pop
  // again — without this the worker could grab the first one as a
  // width-1 batch before the rest arrive.
  SolveRequest blocker = quick_request(3.0);
  blocker.nu = 5;
  auto occupied = service.submit(blocker);
  while (service.queue_stats().popped < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Four scenarios sharing (nu, p) but with distinct landscapes: queued
  // behind the gate, they coalesce into one panel batch of width 4.
  std::vector<std::future<SolveReply>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(quick_request(6.0 + i)));
  }
  gate.release();
  EXPECT_EQ(occupied.get().status, StatusCode::ok);
  for (auto& future : futures) {
    const SolveReply reply = future.get();
    ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;
    EXPECT_EQ(reply.batch_width, 4u);
    EXPECT_FALSE(reply.cache_hit);
  }
  EXPECT_EQ(service.queue_stats().batches, 2u);  // blocker + the coalesced 4
}

TEST(SolverService, IdenticalScenariosDedupeToOneAnswer) {
  WorkerGate gate;
  ServiceConfig config;
  config.before_batch_hook = gate.hook();
  SolverService service(config);

  auto f1 = service.submit(quick_request());
  auto f2 = service.submit(quick_request());
  gate.release();
  const SolveReply r1 = f1.get();
  const SolveReply r2 = f2.get();
  ASSERT_EQ(r1.status, StatusCode::ok);
  ASSERT_EQ(r2.status, StatusCode::ok);
  // One panel column answered both: bit-identical.
  EXPECT_EQ(std::memcmp(&r1.eigenvalue, &r2.eigenvalue, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(r1.class_concentrations.data(),
                        r2.class_concentrations.data(),
                        r1.class_concentrations.size() * sizeof(double)),
            0);
}

TEST(SolverService, OverloadShedsWithStructuredRejection) {
  WorkerGate gate;
  ServiceConfig config;
  config.queue_capacity = 2;
  config.before_batch_hook = gate.hook();
  SolverService service(config);

  // First request occupies the worker (blocked at the gate)...
  auto running = service.submit(quick_request(3.0));
  while (service.queue_stats().popped < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...two more fill the queue; the fourth must shed immediately.
  auto q1 = service.submit(quick_request(4.0));
  auto q2 = service.submit(quick_request(5.0));
  auto shed = service.submit(quick_request(6.0));
  const SolveReply rejected = shed.get();
  EXPECT_EQ(rejected.status, StatusCode::rejected_overload);
  EXPECT_FALSE(rejected.message.empty());

  // The daemon is not wedged: release the gate and everything completes.
  gate.release();
  EXPECT_EQ(running.get().status, StatusCode::ok);
  EXPECT_EQ(q1.get().status, StatusCode::ok);
  EXPECT_EQ(q2.get().status, StatusCode::ok);
  EXPECT_EQ(service.queue_stats().rejected_overload, 1u);
}

TEST(SolverService, DeadlinePassedInQueueYieldsDeadlineExceeded) {
  WorkerGate gate;
  ServiceConfig config;
  config.before_batch_hook = gate.hook();
  SolverService service(config);

  auto blocker = service.submit(quick_request(3.0));
  while (service.queue_stats().popped < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SolveRequest urgent = quick_request(4.0);
  urgent.deadline_ms = 5;
  auto doomed = service.submit(urgent);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release();
  const SolveReply reply = doomed.get();
  EXPECT_EQ(reply.status, StatusCode::deadline_exceeded);
  EXPECT_LT(reply.deadline_slack_ms, 0.0);
  EXPECT_EQ(blocker.get().status, StatusCode::ok);

  // Still serving afterwards.
  EXPECT_EQ(service.solve(quick_request(7.0)).status, StatusCode::ok);
}

TEST(SolverService, ClientDisconnectCancelsTheWork) {
  WorkerGate gate;
  ServiceConfig config;
  config.before_batch_hook = gate.hook();
  SolverService service(config);

  auto alive = std::make_shared<std::atomic<bool>>(true);
  auto future = service.submit(quick_request(), alive);
  alive->store(false);  // client vanished while the request was queued
  gate.release();
  const SolveReply reply = future.get();
  EXPECT_EQ(reply.status, StatusCode::cancelled);
  EXPECT_EQ(service.solve(quick_request(9.0)).status, StatusCode::ok);
}

TEST(SolverService, BadRequestsAreRejectedWithoutTouchingAWorker) {
  SolverService service;
  SolveRequest bad = quick_request();
  bad.p = 0.9;
  const SolveReply reply = service.solve(bad);
  EXPECT_EQ(reply.status, StatusCode::bad_request);
  EXPECT_FALSE(reply.message.empty());
  EXPECT_EQ(service.queue_stats().accepted, 0u);
}

TEST(SolverService, WorkerThrowBecomesInternalErrorAndServiceSurvives) {
  std::atomic<bool> arm{true};
  ServiceConfig config;
  config.before_batch_hook = [&arm] {
    if (arm.exchange(false)) {
      throw testing::InjectedFault("injected worker fault");
    }
  };
  SolverService service(config);
  const SolveReply faulted = service.solve(quick_request());
  EXPECT_EQ(faulted.status, StatusCode::internal_error);
  EXPECT_NE(faulted.message.find("injected"), std::string::npos);

  // The worker survived the throw and the next request solves normally.
  const SolveReply ok = service.solve(quick_request(11.0));
  EXPECT_EQ(ok.status, StatusCode::ok) << ok.message;
}

TEST(SolverService, ShutdownDrainsQueuedRequestsWithStructuredReplies) {
  WorkerGate gate;
  ServiceConfig config;
  config.before_batch_hook = gate.hook();
  SolverService service(config);

  auto blocker = service.submit(quick_request(3.0));
  while (service.queue_stats().popped < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued = service.submit(quick_request(4.0));
  std::thread shutdown_thread([&] { service.shutdown(); });
  // shutdown() closes admission immediately; the gate then lets the blocked
  // worker observe stopping_ and drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto late = service.submit(quick_request(5.0));
  gate.release();
  shutdown_thread.join();

  EXPECT_EQ(late.get().status, StatusCode::shutting_down);
  const StatusCode queued_status = queued.get().status;
  EXPECT_TRUE(queued_status == StatusCode::shutting_down ||
              queued_status == StatusCode::ok);
  const StatusCode blocker_status = blocker.get().status;
  EXPECT_TRUE(blocker_status == StatusCode::shutting_down ||
              blocker_status == StatusCode::ok);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation in the solver layers the service rides on.
// ---------------------------------------------------------------------------

TEST(Cancellation, FacadeSolveAbortsAtAnIterationBoundary) {
  solvers::SolveOptions options;
  options.should_stop = [] { return true; };
  const auto result = solvers::solve(core::MutationModel::uniform(8, 0.01),
                                     core::Landscape::single_peak(8, 10.0, 1.0),
                                     options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.failure, solvers::SolverFailure::cancelled);
  // Cancellation is not an error the recovery rule retries.
  EXPECT_EQ(result.recovery_attempts, 0u);
}

TEST(Cancellation, ConvergedSolveIgnoresALateStopSignal) {
  // should_stop is polled AFTER the tolerance test: a solve that converges
  // on the same residual check it would have been cancelled at still
  // reports success.
  std::atomic<unsigned> polls{0};
  solvers::SolveOptions options;
  options.tolerance = 1e-2;  // converges almost immediately
  options.should_stop = [&polls] {
    polls.fetch_add(1);
    return true;
  };
  const auto result = solvers::solve(core::MutationModel::uniform(6, 0.01),
                                     core::Landscape::single_peak(6, 10.0, 1.0),
                                     options);
  if (result.converged) {
    EXPECT_EQ(result.failure, solvers::SolverFailure::none);
  } else {
    EXPECT_EQ(result.failure, solvers::SolverFailure::cancelled);
  }
}

TEST(Cancellation, EnsembleRunStopsAtAGenerationBoundary) {
  auto model = core::MutationModel::uniform(5, 0.02);
  const auto landscape = core::Landscape::single_peak(5, 5.0, 1.0);
  stochastic::EnsembleOptions options;
  options.replicas = 2;
  options.population_size = 200;
  stochastic::ReplicaEnsemble ensemble(model, landscape, options);
  std::atomic<std::uint64_t> generations{0};
  ensemble.run(1000, 0, true, [&generations] {
    return generations.fetch_add(1) >= 5;  // stop after ~5 generations
  });
  EXPECT_TRUE(ensemble.cancelled());
  EXPECT_LT(ensemble.generations_completed(), 1000u);
  // Partial statistics stay well formed (final-state frequencies).
  const auto stats = ensemble.statistics();
  ASSERT_EQ(stats.mean.size(), 32u);
  double sum = 0.0;
  for (double v : stats.mean) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Transport hardening: dead peers and timeout contracts.
// ---------------------------------------------------------------------------

TEST(FdStream, WriteToAVanishedPeerThrowsInsteadOfRaisingSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FdStream stream(fds[0], 1000);
  ::close(fds[1]);  // peer hangs up before we reply
  // Must surface as EPIPE -> TransportError; the default SIGPIPE
  // disposition would terminate this whole test binary instead.
  EXPECT_THROW(write_frame(stream, Frame{FrameType::pong, {}}), TransportError);
}

TEST(FdStream, ZeroTimeoutIsRejectedNotInfinite) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A zero timeout would mean an unbounded poll — one stalled peer could
  // pin a connection thread forever and hang server shutdown.
  EXPECT_THROW(FdStream(fds[0], 0), TransportError);  // ctor closed fds[0]
  FdStream stream(fds[1], 1000);
  EXPECT_THROW(stream.set_timeout_ms(0), TransportError);
  EXPECT_EQ(stream.timeout_ms(), 1000u);
}

// ---------------------------------------------------------------------------
// The daemon over a real AF_UNIX socket.
// ---------------------------------------------------------------------------

class SocketServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = fs::temp_directory_path() /
                   ("qs_serve_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter_++) + ".sock");
    config_.socket_path = socket_path_;
    config_.io_timeout_ms = 5000;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove(socket_path_, ec);
  }

  static inline int counter_ = 0;
  fs::path socket_path_;
  SocketServerConfig config_;
};

TEST_F(SocketServerTest, SolveRoundTripOverTheWire) {
  SocketServer server(config_);
  server.start();
  Client client(socket_path_);
  EXPECT_TRUE(client.ping());
  const SolveReply reply = client.solve(quick_request());
  ASSERT_EQ(reply.status, StatusCode::ok) << reply.message;
  EXPECT_GT(reply.eigenvalue, 1.0);
  ASSERT_EQ(reply.class_concentrations.size(), 7u);

  // Second identical request over the same connection: cache hit,
  // bit-identical payload.
  const SolveReply cached = client.solve(quick_request());
  ASSERT_EQ(cached.status, StatusCode::ok);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(std::memcmp(&cached.eigenvalue, &reply.eigenvalue, sizeof(double)), 0);
  server.stop();
}

TEST_F(SocketServerTest, MalformedRequestPayloadGetsBadRequestNotADrop) {
  SocketServer server(config_);
  server.start();

  // Hand-roll a well-framed but semantically garbage request payload.
  FdStream stream(
      [&] {
        Client probe(socket_path_);
        EXPECT_TRUE(probe.ping());  // daemon is up
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socket_path_.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                  0);
        return fd;
      }(),
      5000);
  Frame garbage{FrameType::solve_request, {1, 2, 3}};
  write_frame(stream, garbage);
  const Frame reply_frame = read_frame(stream);
  ASSERT_EQ(reply_frame.type, FrameType::solve_reply);
  const SolveReply reply = decode_reply(reply_frame.payload);
  EXPECT_EQ(reply.status, StatusCode::bad_request);

  // Daemon still serving after the garbage.
  Client client(socket_path_);
  EXPECT_EQ(client.solve(quick_request()).status, StatusCode::ok);
  server.stop();
}

TEST_F(SocketServerTest, RepliesToVanishedClientsNeverKillTheDaemon) {
  // The hostile pattern the SIGPIPE hardening exists for: clients that send
  // a request and close without reading the reply.  The pong and
  // bad-request replies have no liveness check at all, so many of these
  // writes land on a closed socket — each must fail only its own
  // connection thread (EPIPE -> TransportError), never the daemon.
  SocketServer server(config_);
  server.start();
  const auto connect_raw = [&] {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };
  for (int i = 0; i < 16; ++i) {
    {
      FdStream fire_and_forget(connect_raw(), 1000);
      write_frame(fire_and_forget, Frame{FrameType::ping, {}});
      // Destructor closes the socket with the pong unread.
    }
    {
      FdStream fire_and_forget(connect_raw(), 1000);
      write_frame(fire_and_forget,
                  Frame{FrameType::solve_request, {1, 2, 3}});  // bad request
    }
  }
  Client client(socket_path_);
  EXPECT_EQ(client.solve(quick_request()).status, StatusCode::ok);
  server.stop();
}

TEST_F(SocketServerTest, AbruptClientDisconnectLeavesTheDaemonServing) {
  SocketServer server(config_);
  server.start();
  {
    Client doomed(socket_path_);
    EXPECT_TRUE(doomed.ping());
    // Client object destructs here: fd closes with no goodbye.
  }
  Client client(socket_path_);
  EXPECT_EQ(client.solve(quick_request()).status, StatusCode::ok);
  EXPECT_GE(server.connections(), 2u);
  server.stop();
}

TEST_F(SocketServerTest, RetryRecoversAfterTheDaemonComesBack) {
  // No daemon yet: a plain solve throws, solve_with_retry reports the
  // transport failure as a structured outcome.
  Client client(socket_path_, 500);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 5;
  const ClientOutcome down = client.solve_with_retry(quick_request(), policy);
  EXPECT_EQ(down.attempts, 2u);
  EXPECT_FALSE(down.last_error.empty());
  EXPECT_EQ(down.reply.status, StatusCode::internal_error);

  // Daemon appears; the same client reconnects and succeeds first try.
  SocketServer server(config_);
  server.start();
  const ClientOutcome up = client.solve_with_retry(quick_request(), policy);
  EXPECT_EQ(up.reply.status, StatusCode::ok) << up.reply.message;
  EXPECT_EQ(up.attempts, 1u);
  EXPECT_TRUE(up.last_error.empty());
  server.stop();
}

TEST_F(SocketServerTest, GracefulStopAnswersInFlightAndRefusesNew) {
  SocketServer server(config_);
  server.start();
  Client client(socket_path_);
  EXPECT_EQ(client.solve(quick_request()).status, StatusCode::ok);
  server.stop();
  EXPECT_FALSE(server.running());
  // Socket is gone: a new connect fails cleanly.
  Client late(socket_path_);
  EXPECT_FALSE(late.ping());
}

}  // namespace
}  // namespace qs::service
