// Unit tests for the CSR substrate and the materialised truncated W.
#include <gtest/gtest.h>

#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "sparse/csr.hpp"
#include "sparse/sparse_w.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::sparse {
namespace {

TEST(Csr, KnownSmallMatrix) {
  // [[1, 0, 2], [0, 0, 0], [3, 4, 0]]
  CsrMatrix m(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m.nonzeros(), 4u);
  std::vector<double> x{1.0, 10.0, 100.0};
  std::vector<double> y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 201.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 43.0);
}

TEST(Csr, RoundTripsThroughDense) {
  Xoshiro256 rng(1);
  linalg::DenseMatrix dense(8, 6);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      dense(r, c) = (rng.uniform() < 0.3) ? rng.uniform(-1.0, 1.0) : 0.0;
    }
  }
  const auto csr = csr_from_dense(dense);
  EXPECT_LT(csr.to_dense().max_abs_distance(dense), 1e-15);

  std::vector<double> x(6), y_dense(8), y_csr(8);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  dense.multiply(x, y_dense);
  csr.multiply(x, y_csr);
  EXPECT_LT(linalg::max_abs_diff(y_dense, y_csr), 1e-14);
}

TEST(Csr, EngineMultiplyMatchesSerial) {
  Xoshiro256 rng(2);
  linalg::DenseMatrix dense(64, 64);
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 64; ++c) {
      dense(r, c) = (rng.uniform() < 0.2) ? rng.uniform(0.0, 1.0) : 0.0;
    }
  }
  const auto csr = csr_from_dense(dense);
  std::vector<double> x(64), serial(64), parallel_y(64);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  csr.multiply(x, serial);
  csr.multiply(x, parallel_y, parallel::parallel_engine());
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(serial[i], parallel_y[i]);
}

TEST(Csr, ThresholdDropsSmallEntries) {
  linalg::DenseMatrix dense(2, 2);
  dense(0, 0) = 1.0;
  dense(0, 1) = 1e-12;
  dense(1, 1) = 0.5;
  const auto csr = csr_from_dense(dense, 1e-10);
  EXPECT_EQ(csr.nonzeros(), 2u);
}

TEST(Csr, BuilderValidatesUsage) {
  CsrBuilder builder(2, 3);
  builder.push(0, 1.0);
  EXPECT_THROW(builder.push(0, 2.0), precondition_error);  // not ascending
  EXPECT_THROW(builder.push(3, 2.0), precondition_error);  // column range
  EXPECT_THROW(builder.build(), precondition_error);       // rows unfinished
  builder.finish_row();
  builder.finish_row();
  EXPECT_THROW(builder.finish_row(), precondition_error);
  const auto m = builder.build();
  EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(Csr, ConstructorValidatesInvariants) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0}), precondition_error);
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1, 1}, {0, 1}, {1.0, 2.0}), precondition_error);
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}), precondition_error);
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {5}, {1.0}), precondition_error);
}

TEST(SparseW, MatchesXmvpExactly) {
  // Same truncated product, two evaluation strategies.
  const unsigned nu = 9;
  const auto model = core::MutationModel::uniform(nu, 0.015);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const std::size_t n = 512;

  for (unsigned d : {1u, 3u, nu}) {
    const SparseWOperator sparse(model, landscape, d);
    const core::XmvpOperator xmvp(model, landscape, d);
    std::vector<double> x(n), y_sparse(n), y_xmvp(n);
    Xoshiro256 rng(d);
    for (double& v : x) v = rng.uniform(0.0, 1.0);
    sparse.apply(x, y_sparse);
    xmvp.apply(x, y_xmvp);
    EXPECT_LT(linalg::max_abs_diff(y_sparse, y_xmvp), 1e-13) << "d=" << d;
  }
}

TEST(SparseW, NonzeroCountIsBinomialSum) {
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::flat(nu, 1.0);
  const SparseWOperator sparse(model, landscape, 2);
  // nnz = N * (1 + C(10,1) + C(10,2)) = 1024 * 56.
  EXPECT_EQ(sparse.matrix().nonzeros(), 1024u * 56u);
  EXPECT_GT(sparse.matrix().memory_bytes(), 1024u * 56u * 8u);
}

TEST(SparseW, PowerIterationAgreesWithFmmp) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);

  const SparseWOperator sparse(model, landscape, nu);  // exact
  const auto sparse_result =
      solvers::power_iteration(sparse, solvers::landscape_start(landscape));
  ASSERT_TRUE(sparse_result.converged);

  const core::FmmpOperator fmmp(model, landscape);
  const auto fmmp_result =
      solvers::power_iteration(fmmp, solvers::landscape_start(landscape));
  EXPECT_NEAR(sparse_result.eigenvalue, fmmp_result.eigenvalue, 1e-11);
  EXPECT_LT(linalg::max_abs_diff(sparse_result.eigenvector, fmmp_result.eigenvector),
            1e-10);
}

TEST(SparseW, RejectsBadConfigurations) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  EXPECT_THROW(SparseWOperator(model, landscape, 5), precondition_error);
  const auto per_site = core::MutationModel::per_site(
      {transforms::Factor2::uniform(0.1), transforms::Factor2::uniform(0.1),
       transforms::Factor2::uniform(0.1), transforms::Factor2::uniform(0.1)});
  EXPECT_THROW(SparseWOperator(per_site, landscape, 2), precondition_error);
}

}  // namespace
}  // namespace qs::sparse
