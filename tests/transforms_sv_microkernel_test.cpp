// Bit-identity tests for the single-vector SIMD microkernels: every kernel
// tier (scalar, AVX2, AVX-512F) and every fused radix must reproduce the
// plain autovectorised banded loops EXACTLY — ASSERT_EQ on doubles, not
// ASSERT_NEAR.  This is the module's contract (see sv_microkernel.hpp): the
// single-vector kernel sits underneath every default solve, so switching
// tiers must not move a single bit of any residual trajectory.
#include "transforms/sv_microkernel.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "parallel/engine.hpp"
#include "support/rng.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"

namespace qs::transforms {
namespace {

std::vector<Factor2> asymmetric_factors(unsigned nu, std::uint64_t seed) {
  std::vector<Factor2> sites;
  sites.reserve(nu);
  Xoshiro256 rng(seed);
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(
        Factor2::asymmetric(rng.uniform(0.001, 0.4), rng.uniform(0.001, 0.4)));
  }
  return sites;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

std::vector<double> positive_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(0.5, 2.0);
  return v;
}

void expect_bitwise(const std::vector<double>& expected,
                    const std::vector<double>& actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << what << " index " << i;
  }
}

// The SIMD tables that actually compiled in and run on this CPU, with the
// scalar reference always first.
std::vector<const SvKernels*> available_tables() {
  std::vector<const SvKernels*> tables = {&scalar_sv_kernels()};
  if (const SvKernels* t = avx2_sv_kernels()) tables.push_back(t);
  if (const SvKernels* t = avx512_sv_kernels()) tables.push_back(t);
  return tables;
}

TEST(SvMicrokernel, SimdSpanKernelsBitwiseMatchScalarIncludingTails) {
  const SvKernels& scalar = scalar_sv_kernels();
  const Factor2 f = Factor2::asymmetric(0.013, 0.27);
  for (const SvKernels* table : available_tables()) {
    SCOPED_TRACE(table->name);
    for (std::size_t cnt :
         {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 9ul, 15ul, 16ul, 17ul, 64ul, 101ul}) {
      const auto lo0 = random_vector(cnt, cnt);
      const auto hi0 = random_vector(cnt, cnt + 1);
      const auto s = positive_vector(cnt, cnt + 2);

      auto lo_a = lo0, hi_a = hi0, lo_b = lo0, hi_b = hi0;
      scalar.butterfly_span(lo_a.data(), hi_a.data(), cnt, f);
      table->butterfly_span(lo_b.data(), hi_b.data(), cnt, f);
      expect_bitwise(lo_a, lo_b, "butterfly_span lo");
      expect_bitwise(hi_a, hi_b, "butterfly_span hi");

      std::vector<double> ya(cnt), yb(cnt);
      scalar.mul_span(ya.data(), lo0.data(), s.data(), cnt);
      table->mul_span(yb.data(), lo0.data(), s.data(), cnt);
      expect_bitwise(ya, yb, "mul_span");

      auto za = lo0, zb = lo0;
      scalar.mul_span_inplace(za.data(), s.data(), cnt);
      table->mul_span_inplace(zb.data(), s.data(), cnt);
      expect_bitwise(za, zb, "mul_span_inplace");
    }
  }
}

TEST(SvMicrokernel, FusedRadixKernelsBitwiseEqualPairComposition) {
  // Radix-4 and radix-8 fusions must equal the composition of plain pair
  // levels BIT FOR BIT: fusion only reorders independent pairs, and each
  // element still sees the identical m00*t1 + m01*t2 two-rounding sequence.
  const SvKernels& scalar = scalar_sv_kernels();
  const Factor2 f0 = Factor2::asymmetric(0.013, 0.27);
  const Factor2 f1 = Factor2::asymmetric(0.041, 0.18);
  const Factor2 f2 = Factor2::asymmetric(0.009, 0.33);
  for (const SvKernels* table : available_tables()) {
    SCOPED_TRACE(table->name);
    for (std::size_t cnt : {1ul, 3ul, 4ul, 5ul, 8ul, 13ul, 16ul, 64ul}) {
      // Radix-4: f0 on (r0,r1),(r2,r3) then f1 on (r0,r2),(r1,r3).
      auto quad_ref = random_vector(4 * cnt, cnt + 3);
      auto quad_act = quad_ref;
      {
        double* q = quad_ref.data();
        scalar.butterfly_span(q, q + cnt, cnt, f0);
        scalar.butterfly_span(q + 2 * cnt, q + 3 * cnt, cnt, f0);
        scalar.butterfly_span(q, q + 2 * cnt, cnt, f1);
        scalar.butterfly_span(q + cnt, q + 3 * cnt, cnt, f1);
      }
      {
        double* q = quad_act.data();
        table->butterfly_quad_span(q, q + cnt, q + 2 * cnt, q + 3 * cnt, cnt,
                                   f0, f1);
      }
      expect_bitwise(quad_ref, quad_act, "butterfly_quad_span");

      // Radix-8: three pairing rounds on eight spans spaced `cnt` apart.
      auto oct_ref = random_vector(8 * cnt, cnt + 4);
      auto oct_act = oct_ref;
      {
        double* q = oct_ref.data();
        for (std::size_t k = 0; k < 8; k += 2) {
          scalar.butterfly_span(q + k * cnt, q + (k + 1) * cnt, cnt, f0);
        }
        for (std::size_t k : {0ul, 1ul, 4ul, 5ul}) {
          scalar.butterfly_span(q + k * cnt, q + (k + 2) * cnt, cnt, f1);
        }
        for (std::size_t k = 0; k < 4; ++k) {
          scalar.butterfly_span(q + k * cnt, q + (k + 4) * cnt, cnt, f2);
        }
      }
      table->butterfly_oct_span(oct_act.data(), cnt, cnt, f0, f1, f2);
      expect_bitwise(oct_ref, oct_act, "butterfly_oct_span");
    }
  }
}

TEST(SvMicrokernel, BlockedApplyBitIdenticalAcrossTiersBackendsAndNu) {
  // The whole banded apply — every tier, every fused radix, every backend —
  // against the forced-autovec path.  This is the acceptance criterion of
  // the microkernel layer: identical banding, identical per-element math.
  const std::initializer_list<parallel::Backend> backends = {
      parallel::Backend::serial, parallel::Backend::openmp,
      parallel::Backend::thread_pool};
  const SvKernel tiers[] = {SvKernel::automatic, SvKernel::avx2,
                            SvKernel::avx512};
  for (unsigned nu : {4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u, 13u, 14u, 16u, 22u}) {
    const std::size_t n = std::size_t{1} << nu;
    const auto factors = asymmetric_factors(nu, 1000 + nu);
    const auto x = random_vector(n, 2000 + nu);

    BlockedPlan reference_plan;
    reference_plan.sv_kernel = SvKernel::autovec;
    std::vector<double> reference = x;
    apply_blocked_butterfly(reference, factors, parallel::serial_engine(),
                            reference_plan);

    for (parallel::Backend kind : backends) {
      const auto engine = parallel::make_engine(kind);
      for (SvKernel tier : tiers) {
        for (unsigned radix : {2u, 4u, 8u}) {
          BlockedPlan plan;
          plan.sv_kernel = tier;
          plan.sv_max_radix = radix;
          std::vector<double> v = x;
          apply_blocked_butterfly(v, factors, *engine, plan);
          SCOPED_TRACE(::testing::Message()
                       << "nu=" << nu << " tier=" << to_string(tier)
                       << " radix=" << radix << " backend="
                       << static_cast<int>(kind));
          expect_bitwise(reference, v, "apply_blocked_butterfly");
        }
      }
    }
  }
}

TEST(SvMicrokernel, FusedScalingsBitIdenticalAcrossTiers) {
  // The fused pre/post diagonal scalings ride inside the first/last band on
  // both the autovec and the microkernel paths; a plain element-wise product
  // is bitwise the same in scalar and SIMD, so the whole fused product must
  // be too — out-of-place and exactly-aliased in-place.
  const unsigned nu = 12;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 77);
  const auto x = random_vector(n, 78);
  const auto pre = positive_vector(n, 79);
  const auto post = positive_vector(n, 80);

  BlockedPlan reference_plan;
  reference_plan.sv_kernel = SvKernel::autovec;
  std::vector<double> reference(n);
  apply_blocked_butterfly_fused(x, reference, factors, pre, post,
                                parallel::serial_engine(), reference_plan);

  for (SvKernel tier : {SvKernel::automatic, SvKernel::avx2, SvKernel::avx512}) {
    BlockedPlan plan;
    plan.sv_kernel = tier;
    SCOPED_TRACE(to_string(tier));
    std::vector<double> y(n);
    apply_blocked_butterfly_fused(x, y, factors, pre, post,
                                  parallel::serial_engine(), plan);
    expect_bitwise(reference, y, "fused out-of-place");

    std::vector<double> in_place = x;
    apply_blocked_butterfly_fused(in_place, in_place, factors, pre, post,
                                  parallel::serial_engine(), plan);
    expect_bitwise(reference, in_place, "fused in-place");
  }
}

TEST(SvMicrokernel, PlanVariationsStayBitIdentical) {
  // Tile/chunk choices change the band partition and the L1 sub-tile
  // staging changes the sweep order inside a band; neither may change bits.
  const unsigned nu = 14;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 55);
  const auto x = random_vector(n, 56);

  BlockedPlan reference_plan;
  reference_plan.sv_kernel = SvKernel::autovec;
  std::vector<double> reference = x;
  apply_blocked_butterfly(reference, factors, parallel::serial_engine(),
                          reference_plan);

  for (const BlockedPlan base : {BlockedPlan{4, 2}, BlockedPlan{6, 3},
                                 BlockedPlan{10, 6}, BlockedPlan{14, 6},
                                 BlockedPlan{16, 8}}) {
    for (SvKernel tier : {SvKernel::automatic, SvKernel::autovec}) {
      BlockedPlan plan = base;
      plan.sv_kernel = tier;
      std::vector<double> v = x;
      apply_blocked_butterfly(v, factors, parallel::serial_engine(), plan);
      SCOPED_TRACE(::testing::Message() << "tile=" << base.tile_log2
                                        << " chunk=" << base.chunk_log2
                                        << " tier=" << to_string(tier));
      expect_bitwise(reference, v, "plan variation");
    }
  }
}

TEST(SvMicrokernel, BandBoundsMatchVectorBoundaries) {
  // The allocation-free BandBounds must agree with the std::vector form for
  // every nu and plan the apply paths can see.
  for (const BlockedPlan plan : {BlockedPlan{14, 6}, BlockedPlan{4, 2},
                                 BlockedPlan{20, 6}, BlockedPlan{8, 3}}) {
    for (unsigned nu = 0; nu <= 30; ++nu) {
      const auto expected = blocked_band_boundaries(nu, plan);
      const BandBounds bounds = blocked_band_bounds(nu, plan);
      ASSERT_EQ(expected.size(), bounds.count) << "nu " << nu;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i], bounds[i]) << "nu " << nu << " entry " << i;
      }
    }
  }
}

TEST(SvMicrokernel, ResolutionAndNamesAreConsistent) {
  // autovec always resolves to the plain loops.
  EXPECT_EQ(resolve_sv_kernels(SvKernel::autovec), nullptr);
  EXPECT_EQ(std::string_view(resolved_sv_kernel_name(SvKernel::autovec)),
            "autovec");

  // automatic resolves to the widest available table, or autovec.
  const SvKernels* best = best_sv_kernels();
  EXPECT_EQ(resolve_sv_kernels(SvKernel::automatic), best);
  if (const SvKernels* a512 = avx512_sv_kernels()) {
    EXPECT_EQ(best, a512);
    EXPECT_EQ(std::string_view(best->name), "avx512");
  } else if (const SvKernels* a2 = avx2_sv_kernels()) {
    EXPECT_EQ(best, a2);
    EXPECT_EQ(std::string_view(best->name), "avx2");
  } else {
    EXPECT_EQ(best, nullptr);
  }

  // An explicitly requested tier resolves to its table when available and
  // degrades to autovec (null) when not — plans stay portable across hosts.
  for (SvKernel tier : {SvKernel::avx2, SvKernel::avx512}) {
    const SvKernels* resolved = resolve_sv_kernels(tier);
    const char* name = resolved_sv_kernel_name(tier);
    if (resolved == nullptr) {
      EXPECT_EQ(std::string_view(name), "autovec") << to_string(tier);
    } else {
      EXPECT_EQ(std::string_view(name), std::string_view(resolved->name));
    }
  }

  EXPECT_EQ(std::string_view(to_string(SvKernel::automatic)), "automatic");
  EXPECT_EQ(std::string_view(to_string(SvKernel::autovec)), "autovec");
  EXPECT_EQ(std::string_view(to_string(SvKernel::avx2)), "avx2");
  EXPECT_EQ(std::string_view(to_string(SvKernel::avx512)), "avx512");
  EXPECT_EQ(std::string_view(scalar_sv_kernels().name), "scalar");
}

}  // namespace
}  // namespace qs::transforms
