// Unit tests for the Kronecker-landscape decoupling (Section 5.2).
#include "solvers/kronecker_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/site_process.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::solvers {
namespace {

core::KroneckerLandscape random_kron_landscape(std::vector<unsigned> bits,
                                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> factors;
  for (unsigned b : bits) {
    std::vector<double> f(std::size_t{1} << b);
    for (double& v : f) v = rng.uniform(0.5, 3.0);
    factors.push_back(std::move(f));
  }
  return core::KroneckerLandscape(std::move(factors));
}

TEST(KroneckerSolver, MatchesFullSolverOnCompatibleProblem) {
  // nu = 8 split as 3 + 2 + 3; uniform mutation decouples freely.
  const double p = 0.04;
  const auto landscape = random_kron_landscape({3, 2, 3}, 11);
  const auto model = core::MutationModel::uniform(8, p);

  const auto kron = solve_kronecker(model, landscape);

  const auto full_landscape = landscape.expand();
  const core::FmmpOperator op(model, full_landscape);
  PowerOptions opts;
  opts.shift = core::conservative_shift(model, full_landscape);
  const auto full = power_iteration(op, landscape_start(full_landscape), opts);
  ASSERT_TRUE(full.converged);

  EXPECT_NEAR(kron.eigenvalue(), full.eigenvalue, 1e-9 * full.eigenvalue);
  const auto expanded = kron.expand();
  EXPECT_LT(linalg::max_abs_diff(expanded, full.eigenvector), 1e-9);
}

TEST(KroneckerSolver, EigenvalueIsProductOfSubproblemEigenvalues) {
  const double p = 0.02;
  const auto landscape = random_kron_landscape({2, 3}, 21);
  const auto model = core::MutationModel::uniform(5, p);
  const auto kron = solve_kronecker(model, landscape);

  // Solve each factor independently and compare the product.
  double prod = 1.0;
  unsigned lo = 0;
  for (std::size_t g = 0; g < landscape.group_count(); ++g) {
    const unsigned bits = landscape.group_bits(g);
    const auto sub_model = core::MutationModel::uniform(bits, p);
    const auto sub_landscape =
        core::Landscape::from_values(bits, landscape.factors()[g]);
    const core::FmmpOperator op(sub_model, sub_landscape);
    const auto r = power_iteration(op, landscape_start(sub_landscape));
    ASSERT_TRUE(r.converged);
    prod *= r.eigenvalue;
    lo += bits;
  }
  EXPECT_NEAR(kron.eigenvalue(), prod, 1e-10 * prod);
}

TEST(KroneckerResult, ConcentrationQueriesMatchExpansion) {
  const auto landscape = random_kron_landscape({2, 2, 2}, 31);
  const auto model = core::MutationModel::uniform(6, 0.05);
  const auto kron = solve_kronecker(model, landscape);
  const auto full = kron.expand();
  for (seq_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(kron.concentration(i), full[i], 1e-14);
  }
}

TEST(KroneckerResult, ImplicitVectorIsNormalised) {
  const auto landscape = random_kron_landscape({3, 3}, 41);
  const auto model = core::MutationModel::uniform(6, 0.03);
  const auto kron = solve_kronecker(model, landscape);
  const auto full = kron.expand();
  EXPECT_NEAR(linalg::norm1(std::span<const double>(full)), 1.0, 1e-12);
}

TEST(KroneckerResult, ClassConcentrationsMatchExpansion) {
  const auto landscape = random_kron_landscape({2, 3, 2}, 51);
  const auto model = core::MutationModel::uniform(7, 0.06);
  const auto kron = solve_kronecker(model, landscape);

  const auto via_dp = kron.class_concentrations();
  const auto via_expand = analysis::class_concentrations(7, kron.expand());
  ASSERT_EQ(via_dp.size(), 8u);
  for (unsigned k = 0; k <= 7; ++k) {
    EXPECT_NEAR(via_dp[k], via_expand[k], 1e-12) << "k=" << k;
  }
}

TEST(KroneckerResult, ClassMinMaxMatchesExhaustiveScan) {
  const auto landscape = random_kron_landscape({2, 2, 3}, 61);
  const auto model = core::MutationModel::uniform(7, 0.04);
  const auto kron = solve_kronecker(model, landscape);

  const auto mm = kron.class_min_max();
  const auto full = kron.expand();
  for (unsigned k = 0; k <= 7; ++k) {
    double lo = 1e300, hi = -1e300;
    for (seq_t i = 0; i < 128; ++i) {
      if (hamming_weight(i) == k) {
        lo = std::min(lo, full[i]);
        hi = std::max(hi, full[i]);
      }
    }
    EXPECT_NEAR(mm[k].first, lo, 1e-14) << "k=" << k;
    EXPECT_NEAR(mm[k].second, hi, 1e-14) << "k=" << k;
  }
}

TEST(KroneckerSolver, PerSiteModelSlicesCorrectly) {
  // Per-site rates differ across groups; slicing must preserve positions.
  std::vector<transforms::Factor2> sites;
  Xoshiro256 rng(71);
  for (unsigned k = 0; k < 6; ++k) {
    sites.push_back(core::uniform_site(rng.uniform(0.01, 0.2)));
  }
  const auto model = core::MutationModel::per_site(sites);
  const auto landscape = random_kron_landscape({3, 3}, 72);
  const auto kron = solve_kronecker(model, landscape);

  const auto full_landscape = landscape.expand();
  const core::FmmpOperator op(model, full_landscape);
  const auto full = power_iteration(op, landscape_start(full_landscape));
  ASSERT_TRUE(full.converged);
  EXPECT_NEAR(kron.eigenvalue(), full.eigenvalue, 1e-9 * full.eigenvalue);
  EXPECT_LT(linalg::max_abs_diff(kron.expand(), full.eigenvector), 1e-9);
}

TEST(KroneckerSolver, HandlesChainLengthFortyImplicitly) {
  // 2^40 would be ~9 TB of storage; the decoupled solve is instant and all
  // queries stay implicit.
  std::vector<unsigned> bits(8, 5);  // nu = 40 as eight 5-bit groups
  const auto landscape = random_kron_landscape(bits, 81);
  const auto model = core::MutationModel::uniform(40, 0.01);
  const auto kron = solve_kronecker(model, landscape);
  EXPECT_TRUE(std::isfinite(kron.eigenvalue()));
  EXPECT_GT(kron.eigenvalue(), 0.0);
  EXPECT_GT(kron.concentration(0), 0.0);
  const auto classes = kron.class_concentrations();
  ASSERT_EQ(classes.size(), 41u);
  double s = 0.0;
  for (double c : classes) s += c;
  EXPECT_NEAR(s, 1.0, 1e-10);
  const auto mm = kron.class_min_max();
  for (unsigned k = 0; k <= 40; ++k) {
    EXPECT_LE(mm[k].first, mm[k].second);
    EXPECT_GT(mm[k].first, 0.0);  // Perron positivity
  }
}

TEST(KroneckerSolver, GroupedModelRequiresMatchingPartition) {
  const auto grouped = core::MutationModel::grouped(
      {core::coupled_single_flip_group(2, 0.2),
       core::coupled_single_flip_group(2, 0.3)});
  // Landscape partition 3+1 mismatches the model partition 2+2.
  const auto bad_landscape = random_kron_landscape({3, 1}, 91);
  EXPECT_THROW(solve_kronecker(grouped, bad_landscape), precondition_error);

  // Matching partition must work and agree with the full solver.
  const auto good_landscape = random_kron_landscape({2, 2}, 92);
  const auto kron = solve_kronecker(grouped, good_landscape);
  const auto full_landscape = good_landscape.expand();
  const core::FmmpOperator op(grouped, full_landscape);
  const auto full = power_iteration(op, landscape_start(full_landscape));
  ASSERT_TRUE(full.converged);
  EXPECT_NEAR(kron.eigenvalue(), full.eigenvalue, 1e-8 * full.eigenvalue);
}

TEST(KroneckerSolver, RejectsChainLengthMismatch) {
  const auto model = core::MutationModel::uniform(5, 0.1);
  const auto landscape = random_kron_landscape({2, 2}, 93);  // nu = 4
  EXPECT_THROW(solve_kronecker(model, landscape), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
