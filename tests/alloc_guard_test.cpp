// Zero-allocation guarantee for the solver hot path.
//
// With a PlannedOperator supplying the scratch workspace, the power
// iteration's steady-state loop — banded matvec, Rayleigh quotient,
// residual, shift, normalisation — must perform zero heap allocations per
// iteration on the serial backend.  The counting operator-new hooks in
// alloc_hooks.cpp (linked into this binary only) make that measurable: the
// test samples support::allocation_count() from the on_residual hook into a
// preallocated array (the hook itself must not allocate either) and asserts
// the counter is flat across the whole run after warm-up.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/planned_operator.hpp"
#include "obs/trace.hpp"
#include "solvers/arnoldi.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/power_iteration.hpp"
#include "support/alloc_counter.hpp"

namespace qs {
namespace {

TEST(AllocGuardTest, CountingHooksAreLinkedIntoThisBinary) {
  const std::uint64_t before = support::allocation_count();
  const std::vector<double> v(1024, 1.0);
  ASSERT_EQ(v.size(), 1024u);
  EXPECT_GT(support::allocation_count(), before)
      << "operator-new hooks are not linked; the zero-allocation test below "
         "would pass vacuously";
}

TEST(AllocGuardTest, PowerIterationHotPathPerformsZeroHeapAllocations) {
  const auto model = core::MutationModel::uniform(10, 0.01);
  const auto fitness = core::Landscape::random(10, 5.0, 1.0, 77);
  const core::PlannedOperator op(model, fitness);

  constexpr unsigned kIterations = 60;
  solvers::PowerOptions options;
  options.tolerance = 0.0;  // never converge: run all iterations
  options.stall_window = 0;
  options.max_iterations = kIterations;
  options.workspace = &op.workspace();

  // Fixed-size sample buffer: the hook itself must not allocate, or it
  // would trip the very counter it samples.
  std::array<std::uint64_t, kIterations + 1> samples{};
  options.on_residual = [&samples](unsigned it, double) {
    if (it < samples.size()) samples[it] = support::allocation_count();
  };

  const solvers::PowerResult result = solvers::power_iteration(op, {}, options);
  ASSERT_EQ(result.iterations, kIterations);
  ASSERT_EQ(result.failure, solvers::SolverFailure::none);

  // Iteration 1's sample is taken after the loop's one-time setup (start
  // vector, workspace growth); from then on the counter must not move.
  for (unsigned it = 2; it <= kIterations; ++it) {
    EXPECT_EQ(samples[it], samples[1]) << "allocation during iteration " << it;
  }
}

// The Krylov cycle bodies DO allocate (the small dense Ritz eigensolve per
// cycle), but the per-cycle count must be constant in steady state — and,
// critically for the observability layer, identical whether span tracing is
// runtime-enabled or not.  Sampling happens in the on_residual hook (called
// once per cycle), writing into a preallocated buffer.
constexpr unsigned kKrylovCycles = 8;

std::vector<std::uint64_t> lanczos_cycle_samples(bool tracing_on) {
  obs::set_enabled(tracing_on && obs::compiled_in());
  const auto model = core::MutationModel::uniform(8, 0.01);
  const auto fitness = core::Landscape::random(8, 5.0, 1.0, 11);
  solvers::LanczosOptions options;
  options.tolerance = 0.0;  // never converge: run all cycles
  options.max_restarts = kKrylovCycles - 1;
  options.basis_size = 6;
  std::vector<std::uint64_t> samples(kKrylovCycles + 2, 0);
  options.on_residual = [&samples](unsigned it, double) {
    if (it < samples.size()) samples[it] = support::allocation_count();
  };
  const auto result = solvers::lanczos_dominant_w(model, fitness, {}, options);
  obs::set_enabled(false);
  EXPECT_EQ(result.failure, solvers::SolverFailure::none);
  EXPECT_EQ(result.restarts, kKrylovCycles - 1);
  return samples;
}

std::vector<std::uint64_t> arnoldi_cycle_samples(bool tracing_on) {
  obs::set_enabled(tracing_on && obs::compiled_in());
  const auto model = core::MutationModel::uniform(8, 0.01);
  const auto fitness = core::Landscape::random(8, 5.0, 1.0, 13);
  solvers::ArnoldiOptions options;
  options.tolerance = 0.0;
  options.max_restarts = kKrylovCycles - 1;
  options.basis_size = 6;
  std::vector<std::uint64_t> samples(kKrylovCycles + 2, 0);
  options.on_residual = [&samples](unsigned it, double) {
    if (it < samples.size()) samples[it] = support::allocation_count();
  };
  const auto result = solvers::arnoldi_dominant_w(model, fitness, {}, options);
  obs::set_enabled(false);
  EXPECT_EQ(result.failure, solvers::SolverFailure::none);
  EXPECT_EQ(result.restarts, kKrylovCycles - 1);
  return samples;
}

/// Steady-state per-cycle allocation delta: cycles 3+ must all cost the
/// same number of allocations (earlier cycles grow the basis pool and, with
/// tracing on, the thread's span ring — one-time effects by design).
std::uint64_t steady_delta(const std::vector<std::uint64_t>& samples) {
  const std::uint64_t delta = samples[4] - samples[3];
  for (unsigned it = 4; it < kKrylovCycles; ++it) {
    EXPECT_EQ(samples[it + 1] - samples[it], delta)
        << "allocation count changed at cycle " << it;
  }
  return delta;
}

TEST(AllocGuardTest, LanczosCycleBodyIsAllocationFlatWithTracingOnAndOff) {
  const auto off = lanczos_cycle_samples(false);
  const auto on = lanczos_cycle_samples(true);
  const std::uint64_t delta_off = steady_delta(off);
  const std::uint64_t delta_on = steady_delta(on);
  EXPECT_EQ(delta_on, delta_off)
      << "span instrumentation changed the Lanczos cycle's allocation count";
}

TEST(AllocGuardTest, ArnoldiCycleBodyIsAllocationFlatWithTracingOnAndOff) {
  const auto off = arnoldi_cycle_samples(false);
  const auto on = arnoldi_cycle_samples(true);
  const std::uint64_t delta_off = steady_delta(off);
  const std::uint64_t delta_on = steady_delta(on);
  EXPECT_EQ(delta_on, delta_off)
      << "span instrumentation changed the Arnoldi cycle's allocation count";
}

TEST(AllocGuardTest, RepeatedSolvesThroughOneWorkspaceStayAllocationFlat) {
  const auto model = core::MutationModel::uniform(9, 0.02);
  const auto fitness = core::Landscape::random(9, 4.0, 1.0, 5);
  const core::PlannedOperator op(model, fitness);

  solvers::PowerOptions options;
  options.tolerance = 0.0;
  options.stall_window = 0;
  options.max_iterations = 10;
  options.workspace = &op.workspace();

  // First solve grows the workspace to the working size.
  solvers::power_iteration(op, {}, options);
  const std::size_t warm_bytes = op.workspace().bytes();

  // Further solves reuse the grown buffers verbatim.
  solvers::power_iteration(op, {}, options);
  EXPECT_EQ(op.workspace().bytes(), warm_bytes);
}

}  // namespace
}  // namespace qs
