// Unit tests for the restarted Arnoldi solver (nonsymmetric models).
#include "solvers/arnoldi.hpp"

#include <gtest/gtest.h>

#include "core/fmmp.hpp"
#include "core/site_process.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::solvers {
namespace {

core::MutationModel asymmetric_model(unsigned nu, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<transforms::Factor2> sites;
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(
        core::asymmetric_site(rng.uniform(0.01, 0.1), rng.uniform(0.01, 0.1)));
  }
  return core::MutationModel::per_site(std::move(sites));
}

TEST(Arnoldi, MatchesPowerIterationOnAsymmetricModel) {
  const unsigned nu = 9;
  const auto model = asymmetric_model(nu, 1);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 2);

  const auto arnoldi = arnoldi_dominant_w(model, landscape);
  ASSERT_TRUE(arnoldi.converged);

  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(pi.converged);

  EXPECT_NEAR(arnoldi.eigenvalue, pi.eigenvalue, 1e-9 * pi.eigenvalue);
  EXPECT_LT(linalg::max_abs_diff(arnoldi.concentrations, pi.eigenvector), 1e-8);
}

TEST(Arnoldi, FewerProductsThanPowerIteration) {
  const unsigned nu = 10;
  const auto model = asymmetric_model(nu, 3);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 4);

  const auto arnoldi = arnoldi_dominant_w(model, landscape);
  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  ASSERT_TRUE(arnoldi.converged);
  ASSERT_TRUE(pi.converged);
  EXPECT_LT(arnoldi.matvec_count, pi.iterations);
}

TEST(Arnoldi, HandlesSymmetricModelsToo) {
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 5);
  const auto arnoldi = arnoldi_dominant_w(model, landscape);
  ASSERT_TRUE(arnoldi.converged);

  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  EXPECT_NEAR(arnoldi.eigenvalue, pi.eigenvalue, 1e-9);
  EXPECT_LT(linalg::max_abs_diff(arnoldi.concentrations, pi.eigenvector), 1e-8);
}

TEST(Arnoldi, SmallBasisRestartsConverge) {
  const unsigned nu = 8;
  const auto model = asymmetric_model(nu, 7);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 8);
  ArnoldiOptions opts;
  opts.basis_size = 3;
  const auto r = arnoldi_dominant_w(model, landscape, {}, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.restarts, 1u);
  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  EXPECT_NEAR(r.eigenvalue, pi.eigenvalue, 1e-8 * pi.eigenvalue);
}

TEST(Arnoldi, ConcentrationsArePositiveAndNormalised) {
  const auto model = asymmetric_model(8, 9);
  const auto landscape = core::Landscape::random(8, 5.0, 1.0, 10);
  const auto r = arnoldi_dominant_w(model, landscape);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(linalg::norm1(std::span<const double>(r.concentrations)), 1.0, 1e-12);
  for (double v : r.concentrations) EXPECT_GT(v, 0.0);
}

TEST(Arnoldi, GroupedModelsWork) {
  const auto model = core::MutationModel::grouped(
      {core::coupled_single_flip_group(3, 0.1),
       core::coupled_single_flip_group(3, 0.05)});
  const auto landscape = core::Landscape::random(6, 5.0, 1.0, 11);
  const auto r = arnoldi_dominant_w(model, landscape);
  ASSERT_TRUE(r.converged);
  const core::FmmpOperator op(model, landscape);
  const auto pi = power_iteration(op, landscape_start(landscape));
  EXPECT_NEAR(r.eigenvalue, pi.eigenvalue, 1e-9 * pi.eigenvalue);
}

TEST(Arnoldi, RejectsBadArguments) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  const auto landscape = core::Landscape::flat(4, 1.0);
  ArnoldiOptions bad;
  bad.basis_size = 1;
  EXPECT_THROW(arnoldi_dominant_w(model, landscape, {}, bad), precondition_error);
  std::vector<double> wrong(8, 1.0);
  EXPECT_THROW(arnoldi_dominant_w(model, landscape, wrong), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
