// Tests for the panel-batched replica-ensemble engine: RNG stream jumping,
// batched-vs-sequential equivalence, the cross-backend bit-identity
// contract, and convergence to the deterministic quasispecies.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "parallel/engine.hpp"
#include "solvers/power_iteration.hpp"
#include "stochastic/ensemble.hpp"
#include "stochastic/wright_fisher.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::stochastic {
namespace {

TEST(JumpedStreams, DeterministicDistinctAndJumpConsistent) {
  // Same (seed, index) -> same stream.
  auto a = jumped_stream(123, 3);
  auto b = jumped_stream(123, 3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());

  // Different indices -> different streams (2^128 draws apart).
  auto s0 = jumped_stream(123, 0);
  auto s1 = jumped_stream(123, 1);
  auto s2 = jumped_stream(123, 2);
  EXPECT_NE(s0(), s1());
  EXPECT_NE(s1(), s2());

  // Index k is exactly k applications of jump() to the root.
  Xoshiro256 root(123);
  root.jump();
  root.jump();
  auto direct = jumped_stream(123, 2);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(root(), direct());
}

TEST(ReplicaEnsemble, StepConservesEveryPopulation) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;
  options.replicas = 5;
  options.population_size = 1000;
  ReplicaEnsemble ensemble(model, landscape, options);
  for (int g = 0; g < 10; ++g) {
    ensemble.step();
    for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
      ASSERT_EQ(ensemble.population(r).size(), 1000u) << "g=" << g << " r=" << r;
    }
  }
}

TEST(ReplicaEnsemble, ExpectedMatchesWrightFisherPerReplica) {
  // The panel-batched expected-offspring of each replica must agree with
  // the WrightFisher class's own single-population computation.
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;
  options.replicas = 5;  // deliberately not a multiple of the panel width
  options.population_size = 3000;
  options.start_uniform = true;
  ReplicaEnsemble ensemble(model, landscape, options);
  ensemble.compute_expected(true);

  WrightFisher wf(model, landscape, 1);
  for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
    const auto reference = wf.expected_offspring(ensemble.population(r));
    const auto batched = ensemble.expected(r);
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_NEAR(batched[i], reference[i], 1e-12) << "r=" << r << " i=" << i;
    }
  }
}

TEST(ReplicaEnsemble, BatchedAndSequentialExpectedAgree) {
  // Panel and single-vector paths share the math but not the instruction
  // schedule (FMA-fused microkernels); agreement is to rounding, not bits.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.015);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 11);
  EnsembleOptions options;
  options.replicas = 11;
  options.population_size = 2000;
  options.start_uniform = true;
  ReplicaEnsemble ensemble(model, landscape, options);

  ensemble.compute_expected(false);
  std::vector<std::vector<double>> sequential;
  for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
    const auto e = ensemble.expected(r);
    sequential.emplace_back(e.begin(), e.end());
  }
  ensemble.compute_expected(true);
  for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
    const auto batched = ensemble.expected(r);
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ASSERT_NEAR(batched[i], sequential[r][i], 1e-12) << "r=" << r << " i=" << i;
    }
  }
}

std::vector<std::vector<std::uint64_t>> run_counts(parallel::Backend backend,
                                                   std::uint64_t generations) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;
  options.replicas = 5;  // final panel chunk is narrower than the width
  options.population_size = 2000;
  options.seed = 42;
  const auto engine = parallel::make_engine(backend);
  ReplicaEnsemble ensemble(model, landscape, options, engine.get());
  for (std::uint64_t g = 0; g < generations; ++g) ensemble.step();
  std::vector<std::vector<std::uint64_t>> counts;
  for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
    const auto c = ensemble.population(r).counts();
    counts.emplace_back(c.begin(), c.end());
  }
  return counts;
}

TEST(ReplicaEnsemble, TrajectoryIsBitIdenticalAcrossBackends) {
  // The reproducibility contract: per-replica RNG streams, elementwise
  // panel work, and fixed-order normaliser reductions make the whole
  // resampled trajectory independent of the backend and thread count.
  const auto serial = run_counts(parallel::Backend::serial, 15);
  const auto openmp = run_counts(parallel::Backend::openmp, 15);
  const auto pool = run_counts(parallel::Backend::thread_pool, 15);
  ASSERT_EQ(serial.size(), openmp.size());
  ASSERT_EQ(serial.size(), pool.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    ASSERT_EQ(serial[r], openmp[r]) << "replica " << r;
    ASSERT_EQ(serial[r], pool[r]) << "replica " << r;
  }
}

TEST(ReplicaEnsemble, MoranEnsembleConservesAndIsBitIdentical) {
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 0.03);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;
  options.replicas = 4;
  options.population_size = 300;
  options.process = EnsembleProcess::moran;
  options.seed = 7;

  auto run = [&](parallel::Backend backend) {
    const auto engine = parallel::make_engine(backend);
    ReplicaEnsemble ensemble(model, landscape, options, engine.get());
    for (int g = 0; g < 8; ++g) ensemble.step();
    std::vector<std::vector<std::uint64_t>> counts;
    for (std::size_t r = 0; r < ensemble.replicas(); ++r) {
      EXPECT_EQ(ensemble.population(r).size(), 300u);
      const auto c = ensemble.population(r).counts();
      counts.emplace_back(c.begin(), c.end());
    }
    return counts;
  };
  const auto serial = run(parallel::Backend::serial);
  const auto pool = run(parallel::Backend::thread_pool);
  for (std::size_t r = 0; r < serial.size(); ++r) {
    ASSERT_EQ(serial[r], pool[r]) << "replica " << r;
  }
}

TEST(ReplicaEnsemble, MeanConvergesToDeterministicEigenvectorAsNGrows) {
  // Finite-N ensembles approach the infinite-population quasispecies: the
  // ensemble mean at large N_pop matches the dominant eigenvector's class
  // sums, and the cross-replica smearing width shrinks with N_pop.
  const unsigned nu = 8;
  const double p = 0.02;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  const core::FmmpOperator op(model, landscape);
  const auto eigen =
      solvers::power_iteration(op, solvers::landscape_start(landscape));
  ASSERT_TRUE(eigen.converged);
  const auto det_classes = analysis::class_concentrations(nu, eigen.eigenvector);

  auto smearing = [&](std::uint64_t n_pop) {
    EnsembleOptions options;
    options.replicas = 8;
    options.population_size = n_pop;
    options.seed = 5;
    ReplicaEnsemble ensemble(model, landscape, options);
    ensemble.run(300, 150);
    return ensemble.statistics();
  };

  const auto small = smearing(500);
  const auto large = smearing(50000);

  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(large.class_mean[k], det_classes[k], 0.02) << "k=" << k;
  }
  // sigma([Gamma_0]) ~ 1/sqrt(N_pop): a 100x population gap leaves a wide
  // margin over the chi-distribution noise of an 8-replica estimate.
  EXPECT_LT(large.master_std, small.master_std);
  EXPECT_GT(small.master_std, 0.0);
}

TEST(ReplicaEnsemble, StatisticsSingleReplicaHasZeroVariance) {
  const unsigned nu = 5;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;
  options.replicas = 1;
  options.population_size = 500;
  ReplicaEnsemble ensemble(model, landscape, options);
  ensemble.run(50, 25);
  const auto stats = ensemble.statistics();
  EXPECT_EQ(stats.replicas, 1u);
  EXPECT_EQ(stats.master_std, 0.0);
  for (double v : stats.variance) EXPECT_EQ(v, 0.0);
  const auto avg = ensemble.replica_average(0);
  for (std::size_t i = 0; i < avg.size(); ++i) {
    EXPECT_EQ(stats.mean[i], avg[i]);
  }
  double mass = 0.0;
  for (double v : stats.mean) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(ReplicaEnsemble, RejectsInvalidOptions) {
  const unsigned nu = 4;
  const auto model = core::MutationModel::uniform(nu, 0.02);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  EnsembleOptions options;

  options.replicas = 0;
  EXPECT_THROW(ReplicaEnsemble(model, landscape, options), precondition_error);
  options.replicas = 2;
  options.panel_width = 0;
  EXPECT_THROW(ReplicaEnsemble(model, landscape, options), precondition_error);
  options.panel_width = kMaxPanelWidth + 1;
  EXPECT_THROW(ReplicaEnsemble(model, landscape, options), precondition_error);
  options.panel_width = 8;
  options.population_size = 1;
  EXPECT_THROW(ReplicaEnsemble(model, landscape, options), precondition_error);

  options.population_size = 100;
  ReplicaEnsemble ok(model, landscape, options);
  EXPECT_THROW(ok.statistics(), precondition_error);   // before run()
  EXPECT_THROW(ok.population(2), precondition_error);  // out of range
}

}  // namespace
}  // namespace qs::stochastic
