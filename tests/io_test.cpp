// Unit tests for binary persistence (vectors, landscapes, checkpoints).
#include "io/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/fmmp.hpp"
#include "solvers/power_iteration.hpp"
#include "support/rng.hpp"

namespace qs::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("qs_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path path(const char* name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

TEST_F(IoTest, VectorRoundTrip) {
  std::vector<double> data(1000);
  Xoshiro256 rng(1);
  for (double& v : data) v = rng.uniform(-1.0, 1.0);
  save_vector(path("v.qs"), data);
  const auto loaded = load_vector(path("v.qs"));
  ASSERT_EQ(loaded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded[i], data[i]);  // bit exact
  }
}

TEST_F(IoTest, EmptyVectorRoundTrip) {
  save_vector(path("empty.qs"), {});
  EXPECT_TRUE(load_vector(path("empty.qs")).empty());
}

TEST_F(IoTest, LandscapeRoundTrip) {
  const auto original = core::Landscape::random(8, 5.0, 1.0, 42);
  save_landscape(path("l.qs"), original);
  const auto loaded = load_landscape(path("l.qs"));
  EXPECT_EQ(loaded.nu(), original.nu());
  for (seq_t i = 0; i < original.dimension(); ++i) {
    EXPECT_EQ(loaded.value(i), original.value(i));
  }
}

TEST_F(IoTest, CheckpointRoundTrip) {
  SolverCheckpoint state;
  state.iteration = 123456;
  state.eigenvalue = 4.321;
  state.eigenvector.assign(256, 0.0);
  Xoshiro256 rng(2);
  for (double& v : state.eigenvector) v = rng.uniform(0.0, 1.0);

  save_checkpoint(path("c.qs"), state);
  const auto loaded = load_checkpoint(path("c.qs"));
  EXPECT_EQ(loaded.iteration, state.iteration);
  EXPECT_EQ(loaded.eigenvalue, state.eigenvalue);
  ASSERT_EQ(loaded.eigenvector.size(), state.eigenvector.size());
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(loaded.eigenvector[i], state.eigenvector[i]);
  }
}

TEST_F(IoTest, RejectsMissingFile) {
  EXPECT_THROW(load_vector(path("does_not_exist.qs")), std::runtime_error);
}

TEST_F(IoTest, RejectsWrongMagic) {
  std::ofstream file(path("garbage.qs"), std::ios::binary);
  file << "this is not a quasispecies file at all, padding padding padding";
  file.close();
  EXPECT_THROW(load_vector(path("garbage.qs")), std::runtime_error);
}

TEST_F(IoTest, RejectsKindMismatch) {
  save_vector(path("v.qs"), std::vector<double>{1.0, 2.0});
  EXPECT_THROW(load_landscape(path("v.qs")), std::runtime_error);
  EXPECT_THROW(load_checkpoint(path("v.qs")), std::runtime_error);
}

TEST_F(IoTest, RejectsTruncatedPayload) {
  std::vector<double> data(100, 1.0);
  save_vector(path("t.qs"), data);
  // Chop the file short.
  const auto full = std::filesystem::file_size(path("t.qs"));
  std::filesystem::resize_file(path("t.qs"), full - 64);
  EXPECT_THROW(load_vector(path("t.qs")), std::runtime_error);
}

TEST_F(IoTest, TamperedPayloadFailsTheChecksum) {
  // A landscape with one payload double overwritten after the fact is caught
  // by the header checksum before the Landscape constructor ever sees it.
  const auto original = core::Landscape::flat(3, 1.0);
  save_landscape(path("l.qs"), original);
  std::fstream file(path("l.qs"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(40);  // just past the 40-byte header
  const double zero = 0.0;
  file.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  file.close();
  EXPECT_THROW(load_landscape(path("l.qs")), std::runtime_error);
}

TEST_F(IoTest, RejectsLengthMismatch) {
  // The declared element count is validated against the true file size in
  // both directions before any payload is read.
  save_vector(path("v.qs"), std::vector<double>(64, 1.0));
  {
    // Longer than declared: append trailing garbage.
    std::ofstream file(path("v.qs"), std::ios::binary | std::ios::app);
    file << "trailing garbage";
  }
  EXPECT_THROW(load_vector(path("v.qs")), std::runtime_error);

  save_vector(path("w.qs"), std::vector<double>(64, 1.0));
  // Shorter than declared but still past the header: a classic torn write.
  std::filesystem::resize_file(path("w.qs"),
                               std::filesystem::file_size(path("w.qs")) - 8);
  EXPECT_THROW(load_vector(path("w.qs")), std::runtime_error);
}

TEST_F(IoTest, RejectsAbsurdDeclaredLengthBeforeAllocating) {
  // A corrupted count field near 2^62 is the dangerous case: multiplying it
  // by sizeof(double) wraps std::uint64_t, so a size check phrased as
  // `header + count * 8 == file_size` could pass and drive a huge
  // allocation.  The reader must reject on the count itself, before any
  // resize.
  save_vector(path("a.qs"), std::vector<double>(8, 1.0));
  std::fstream file(path("a.qs"), std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(16);  // meta0 (element count) lives after magic/version/kind/checksum
  const std::uint64_t absurd = 1ull << 62;
  file.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  file.close();
  try {
    load_vector(path("a.qs"));
    FAIL() << "absurd declared length must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("absurd payload length"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, SaveLeavesNoTemporaryBehind) {
  save_vector(path("v.qs"), std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(std::filesystem::exists(path("v.qs")));
  EXPECT_FALSE(std::filesystem::exists(path("v.qs.tmp")));
}

TEST_F(IoTest, FailedSaveKeepsThePreviousFileIntact) {
  // Atomicity contract: when a save cannot complete, the destination keeps
  // its previous content.  A directory squatting on the temporary sibling's
  // path makes the write fail before the rename ever happens.
  std::vector<double> v1{1.0, 2.0};
  save_vector(path("v.qs"), v1);
  std::filesystem::create_directories(path("v.qs.tmp"));
  EXPECT_THROW(save_vector(path("v.qs"), std::vector<double>{9.0}),
               std::runtime_error);
  const auto still = load_vector(path("v.qs"));
  ASSERT_EQ(still.size(), v1.size());
  EXPECT_EQ(still[0], 1.0);
  EXPECT_EQ(still[1], 2.0);
}

TEST_F(IoTest, CheckpointRoundTripPreservesProgressState) {
  SolverCheckpoint state;
  state.iteration = 999;
  state.eigenvalue = 2.5;
  state.residual = 1e-7;
  state.best_residual = 5e-8;
  state.window_start_best = 6e-8;
  state.checks_without_progress = 3;
  state.eigenvector = {0.25, 0.75};
  save_checkpoint(path("c.qs"), state);
  const auto loaded = load_checkpoint(path("c.qs"));
  EXPECT_EQ(loaded.iteration, state.iteration);
  EXPECT_EQ(loaded.eigenvalue, state.eigenvalue);
  EXPECT_EQ(loaded.residual, state.residual);
  EXPECT_EQ(loaded.best_residual, state.best_residual);
  EXPECT_EQ(loaded.window_start_best, state.window_start_best);
  EXPECT_EQ(loaded.checks_without_progress, state.checks_without_progress);
  ASSERT_EQ(loaded.eigenvector.size(), 2u);
  EXPECT_EQ(loaded.eigenvector[0], 0.25);
  EXPECT_EQ(loaded.eigenvector[1], 0.75);
}


TEST_F(IoTest, CheckpointResumeContinuesThePowerIteration) {
  // Interrupt a solve, persist the state, reload, and finish: the resumed
  // run must converge to the same eigenpair in far fewer iterations than a
  // cold start.
  const unsigned nu = 10;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 77);
  const core::FmmpOperator op(model, landscape);
  const auto start = solvers::landscape_start(landscape);

  // Phase 1: run a few iterations only and checkpoint.
  solvers::PowerOptions first_leg;
  first_leg.max_iterations = 8;
  first_leg.tolerance = 1e-15;
  const auto partial = solvers::power_iteration(op, start, first_leg);
  EXPECT_FALSE(partial.converged);
  SolverCheckpoint state;
  state.iteration = partial.iterations;
  state.eigenvalue = partial.eigenvalue;
  state.eigenvector = partial.eigenvector;
  save_checkpoint(path("resume.qs"), state);

  // Phase 2: reload and resume.
  const auto loaded = load_checkpoint(path("resume.qs"));
  EXPECT_EQ(loaded.iteration, 8u);
  solvers::PowerOptions second_leg;
  const auto resumed = solvers::power_iteration(op, loaded.eigenvector, second_leg);
  ASSERT_TRUE(resumed.converged);

  // Reference: full cold solve.
  const auto cold = solvers::power_iteration(op, start, second_leg);
  ASSERT_TRUE(cold.converged);
  EXPECT_NEAR(resumed.eigenvalue, cold.eigenvalue, 1e-11);
  EXPECT_LT(resumed.iterations + loaded.iteration, cold.iterations + 4u);
}

}  // namespace
}  // namespace qs::io
