// Unit tests for the 2x2-factor Kronecker butterfly transforms.
#include "transforms/butterfly.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "linalg/dense_matrix.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "transforms/kronecker.hpp"

namespace qs::transforms {
namespace {

linalg::DenseMatrix factor_to_dense(const Factor2& f) {
  linalg::DenseMatrix m(2, 2);
  m(0, 0) = f.m00; m(0, 1) = f.m01;
  m(1, 0) = f.m10; m(1, 1) = f.m11;
  return m;
}

/// Dense matrix represented by the factor list (factor 0 = LSB), i.e.
/// F_{nu-1} (x) ... (x) F_0.
linalg::DenseMatrix factors_to_dense(std::span<const Factor2> factors) {
  linalg::DenseMatrix acc = factor_to_dense(factors[0]);
  for (std::size_t k = 1; k < factors.size(); ++k) {
    acc = kronecker_dense(factor_to_dense(factors[k]), acc);
  }
  return acc;
}

TEST(Factor2, UniformAndAsymmetricConstruction) {
  const Factor2 u = Factor2::uniform(0.1);
  EXPECT_DOUBLE_EQ(u.m00, 0.9);
  EXPECT_DOUBLE_EQ(u.m01, 0.1);
  EXPECT_DOUBLE_EQ(u.m10, 0.1);
  EXPECT_DOUBLE_EQ(u.m11, 0.9);
  EXPECT_NEAR(u.stochastic_deviation(), 0.0, 1e-16);

  const Factor2 a = Factor2::asymmetric(0.2, 0.05);
  EXPECT_DOUBLE_EQ(a.m10, 0.2);   // P(1 after | 0 before)
  EXPECT_DOUBLE_EQ(a.m01, 0.05);  // P(0 after | 1 before)
  EXPECT_NEAR(a.stochastic_deviation(), 0.0, 1e-16);
}

TEST(Butterfly, SingleLevelMatchesDenseKronecker) {
  // One level of stride 2^k is I (x) F (x) I with F on bit k.
  const Factor2 f = Factor2::asymmetric(0.3, 0.1);
  const unsigned nu = 4;
  const std::size_t n = 16;
  for (unsigned k = 0; k < nu; ++k) {
    std::vector<Factor2> identity_factors(nu, Factor2{});
    identity_factors[k] = f;
    const linalg::DenseMatrix dense = factors_to_dense(identity_factors);

    std::vector<double> v(n), expected(n);
    Xoshiro256 rng(k);
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    dense.multiply(v, expected);
    apply_butterfly_level(v, f, k);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(v[i], expected[i], 1e-14);
  }
}

TEST(Butterfly, FullTransformMatchesDense) {
  for (unsigned nu : {1u, 2u, 5u, 8u}) {
    std::vector<Factor2> factors;
    Xoshiro256 rng(nu * 7 + 1);
    for (unsigned k = 0; k < nu; ++k) {
      factors.push_back(Factor2::asymmetric(rng.uniform(0.0, 0.5), rng.uniform(0.0, 0.5)));
    }
    const linalg::DenseMatrix dense = factors_to_dense(factors);
    const std::size_t n = std::size_t{1} << nu;
    std::vector<double> v(n), expected(n);
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    dense.multiply(v, expected);
    apply_butterfly(v, factors);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(v[i], expected[i], 1e-13) << "nu=" << nu;
    }
  }
}

TEST(Butterfly, LevelOrdersAgree) {
  // Eq. (9) vs Eq. (10): ascending and descending orders compute the same
  // product because the level operators commute.
  const unsigned nu = 10;
  const std::size_t n = 1024;
  std::vector<Factor2> factors;
  Xoshiro256 rng(3);
  for (unsigned k = 0; k < nu; ++k) {
    factors.push_back(Factor2::uniform(rng.uniform(0.01, 0.49)));
  }
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = rng.uniform(-1.0, 1.0);
  apply_butterfly(a, factors, LevelOrder::ascending);
  apply_butterfly(b, factors, LevelOrder::descending);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 1e-13);
}

TEST(Butterfly, UniformSpecialCaseMatchesGeneral) {
  const unsigned nu = 8;
  const std::size_t n = 256;
  const double p = 0.03;
  std::vector<Factor2> factors(nu, Factor2::uniform(p));
  std::vector<double> a(n), b(n);
  Xoshiro256 rng(6);
  for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = rng.uniform(0.0, 1.0);
  apply_butterfly(a, factors);
  apply_uniform_butterfly(b, p);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Butterfly, PreservesTotalMassForStochasticFactors) {
  // Column-stochastic transforms preserve the component sum.
  const std::size_t n = 128;
  std::vector<Factor2> factors;
  Xoshiro256 rng(12);
  for (unsigned k = 0; k < 7; ++k) {
    factors.push_back(Factor2::asymmetric(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)));
  }
  std::vector<double> v(n);
  double mass = 0.0;
  for (double& x : v) {
    x = rng.uniform(0.0, 1.0);
    mass += x;
  }
  apply_butterfly(v, factors);
  double after = 0.0;
  for (double x : v) after += x;
  EXPECT_NEAR(after, mass, 1e-12 * mass);
}

TEST(Butterfly, RejectsBadArguments) {
  std::vector<double> v(8);
  std::vector<Factor2> two(2);  // needs 3 for length 8
  EXPECT_THROW(apply_butterfly(v, two), qs::precondition_error);
  std::vector<double> odd(6);
  std::vector<Factor2> three(3);
  EXPECT_THROW(apply_butterfly(odd, three), qs::precondition_error);
  EXPECT_THROW(apply_butterfly_level(v, Factor2{}, 3), qs::precondition_error);
}

}  // namespace
}  // namespace qs::transforms
