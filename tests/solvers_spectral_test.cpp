// Unit tests for the shift-and-invert solvers on Q (Section 3).
#include "solvers/spectral_solvers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(InverseIterationQ, FindsDominantEigenpairWithShiftNearOne) {
  // Q's dominant eigenvalue is 1 with the uniform eigenvector.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.06);
  const auto r = inverse_iteration_q(model, 1.0 + 1e-3);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 1.0, 1e-10);
  // Uniform eigenvector: all entries equal in magnitude.
  const double expected = 1.0 / std::sqrt(256.0);
  for (double x : r.eigenvector) EXPECT_NEAR(std::abs(x), expected, 1e-8);
}

TEST(InverseIterationQ, TargetsInteriorEigenvalue) {
  // Shift near (1-2p)^2 must converge to an eigenvector of exactly that
  // eigenvalue (the power iteration could never find an interior pair).
  const unsigned nu = 7;
  const double p = 0.11;
  const auto model = core::MutationModel::uniform(nu, p);
  const double target = std::pow(1.0 - 2.0 * p, 2);
  const auto r = inverse_iteration_q(model, target + 1e-4);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, target, 1e-9);
  EXPECT_LT(r.iterations, 50u);
}

TEST(InverseIterationQ, ConvergesInFewIterationsNearEigenvalue) {
  const unsigned nu = 10;
  const double p = 0.03;
  const auto model = core::MutationModel::uniform(nu, p);
  const double target = std::pow(1.0 - 2.0 * p, 1);
  const auto r = inverse_iteration_q(model, target * (1.0 + 1e-8));
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 5u);
  EXPECT_NEAR(r.eigenvalue, target, 1e-11);
}

TEST(RayleighQuotientIterationQ, LocksOnFromBiasedStart) {
  const unsigned nu = 8;
  const double p = 0.09;
  const auto model = core::MutationModel::uniform(nu, p);
  // Start leaning towards the uniform (dominant) eigenvector with a
  // perturbation; RQI should converge to eigenvalue 1 cubically.
  std::vector<double> start(256, 1.0);
  start[3] += 0.2;
  start[100] -= 0.1;
  const auto r = rayleigh_quotient_iteration_q(model, start);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 1.0, 1e-10);
  EXPECT_LE(r.iterations, 8u);
}

TEST(RayleighQuotientIterationQ, ResidualIsTight) {
  const unsigned nu = 6;
  const auto model = core::MutationModel::uniform(nu, 0.2);
  std::vector<double> start(64, 1.0);
  start[1] += 0.3;
  const auto r = rayleigh_quotient_iteration_q(model, start);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.residual, 1e-12);
}

TEST(SpectralSolvers, RejectBadArguments) {
  const auto model = core::MutationModel::uniform(4, 0.1);
  std::vector<double> wrong(8, 1.0);
  EXPECT_THROW(inverse_iteration_q(model, 0.5, wrong), precondition_error);
  EXPECT_THROW(rayleigh_quotient_iteration_q(model, wrong), precondition_error);
  std::vector<double> empty;
  EXPECT_THROW(rayleigh_quotient_iteration_q(model, empty), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
