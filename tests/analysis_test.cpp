// Unit tests for error-class analysis, sweeps and threshold detection.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/error_classes.hpp"
#include "analysis/sweep.hpp"
#include "analysis/threshold.hpp"
#include "support/contracts.hpp"

namespace qs::analysis {
namespace {

TEST(ErrorClasses, ConcentrationsPartitionTheTotal) {
  const unsigned nu = 6;
  std::vector<double> x(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = static_cast<double>(i + 1);
  const auto classes = class_concentrations(nu, x);
  double total_classes = 0.0, total_x = 0.0;
  for (double c : classes) total_classes += c;
  for (double v : x) total_x += v;
  EXPECT_NEAR(total_classes, total_x, 1e-12);
}

TEST(ErrorClasses, DeltaVectorLandsInOneClass) {
  const unsigned nu = 5;
  std::vector<double> x(32, 0.0);
  x[0b10110] = 1.0;  // weight 3
  const auto classes = class_concentrations(nu, x);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_DOUBLE_EQ(classes[k], k == 3 ? 1.0 : 0.0);
  }
}

TEST(ErrorClasses, ReferenceShiftsTheClasses) {
  const unsigned nu = 4;
  std::vector<double> x(16, 0.0);
  x[0b1001] = 1.0;
  // Relative to reference 0b1001 the mass is at distance 0.
  const auto classes = class_concentrations(nu, x, 0b1001);
  EXPECT_DOUBLE_EQ(classes[0], 1.0);
}

TEST(ErrorClasses, CardinalitiesAreBinomials) {
  const auto card = class_cardinalities(5);
  const double expected[] = {1, 5, 10, 10, 5, 1};
  for (unsigned k = 0; k <= 5; ++k) EXPECT_DOUBLE_EQ(card[k], expected[k]);
}

TEST(ErrorClasses, UniformConcentrationsSumToOne) {
  const auto u = uniform_class_concentrations(20);
  double s = 0.0;
  for (double v : u) s += v;
  EXPECT_NEAR(s, 1.0, 1e-12);
  EXPECT_NEAR(u[0], 1.0 / 1048576.0, 1e-18);
}

TEST(ErrorClasses, MembersHaveRightDistanceAndCount) {
  const auto members = class_members(6, 2, 0b000111);
  EXPECT_EQ(members.size(), 15u);  // C(6,2)
  for (seq_t m : members) {
    EXPECT_EQ(hamming_distance(m, 0b000111), 2u);
  }
}

TEST(ErrorClasses, EntropyLimits) {
  std::vector<double> uniform(16, 1.0 / 16.0);
  EXPECT_NEAR(population_entropy(uniform), std::log(16.0), 1e-12);
  std::vector<double> point(16, 0.0);
  point[3] = 1.0;
  EXPECT_DOUBLE_EQ(population_entropy(point), 0.0);
}

TEST(Sweep, GridGeneration) {
  const auto grid = error_rate_grid(0.01, 0.05, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.01);
  EXPECT_DOUBLE_EQ(grid.back(), 0.05);
  EXPECT_NEAR(grid[1] - grid[0], 0.01, 1e-15);
  EXPECT_THROW(error_rate_grid(0.0, 0.1, 3), qs::precondition_error);
  EXPECT_THROW(error_rate_grid(0.1, 0.6, 3), qs::precondition_error);
  EXPECT_THROW(error_rate_grid(0.01, 0.05, 1), qs::precondition_error);
}

TEST(Sweep, ReducedAndFullSweepsAgree) {
  const unsigned nu = 8;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto grid = error_rate_grid(0.01, 0.09, 5);

  const auto reduced = sweep_error_rates(ecl, grid);
  const auto full = sweep_error_rates(ecl.expand(), grid);

  ASSERT_EQ(reduced.error_rates.size(), full.error_rates.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(reduced.eigenvalues[i], full.eigenvalues[i], 1e-8);
    for (unsigned k = 0; k <= nu; ++k) {
      EXPECT_NEAR(reduced.class_concentrations[i][k],
                  full.class_concentrations[i][k], 1e-7)
          << "p=" << grid[i] << " k=" << k;
    }
  }
}

TEST(Sweep, EigenvalueDecreasesWithErrorRateOnSinglePeak) {
  // More mutation spreads mass off the peak: the mean fitness at the
  // stationary state decreases monotonically.
  const auto ecl = core::ErrorClassLandscape::single_peak(12, 2.0, 1.0);
  const auto grid = error_rate_grid(0.005, 0.1, 12);
  const auto sweep = sweep_error_rates(ecl, grid);
  for (std::size_t i = 1; i < sweep.eigenvalues.size(); ++i) {
    EXPECT_LT(sweep.eigenvalues[i], sweep.eigenvalues[i - 1] + 1e-12);
  }
}

TEST(Sweep, CsvOutputHasHeaderAndRows) {
  const auto ecl = core::ErrorClassLandscape::single_peak(4, 2.0, 1.0);
  const auto grid = error_rate_grid(0.01, 0.03, 3);
  const auto sweep = sweep_error_rates(ecl, grid);
  std::ostringstream out;
  write_sweep_csv(sweep, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("p,G0,G1,G2,G3,G4,eigenvalue"), std::string::npos);
  // Header + three data rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Threshold, UniformityDistanceZeroForUniform) {
  const unsigned nu = 10;
  EXPECT_NEAR(uniformity_distance(nu, uniform_class_concentrations(nu)), 0.0, 1e-15);
}

TEST(Threshold, SinglePeakNu20MatchesPaperFigureOne) {
  // Figure 1 (left): nu = 20, f0 = 2, rest 1 -> p_max ~ 0.035.
  const auto ecl = core::ErrorClassLandscape::single_peak(20, 2.0, 1.0);
  const auto pmax = find_error_threshold(ecl);
  ASSERT_TRUE(pmax.has_value());
  EXPECT_GT(*pmax, 0.02);
  EXPECT_LT(*pmax, 0.05);
}

TEST(Threshold, KinkSeparatesPeakFromLinear) {
  // Figure 1: the single peak has a genuine phase transition at p_max — a
  // slope discontinuity (kink) of the order parameter — while the linear
  // landscape approaches the uniform distribution with a continuous
  // derivative. The kink statistic must separate the regimes clearly.
  const unsigned nu = 20;
  const auto peak = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto linear = core::ErrorClassLandscape::linear(nu, 2.0, 1.0);
  const double k_peak = transition_kink(peak, 0.005, 0.09);
  const double k_linear = transition_kink(linear, 0.005, 0.09);
  EXPECT_GT(k_peak, 3.0 * k_linear);
}

TEST(Threshold, SharpnessIsPositiveAndFiniteForBothRegimes) {
  const unsigned nu = 16;
  const auto peak = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const double s = transition_sharpness(peak, 0.005, 0.09);
  EXPECT_GT(s, 0.0);
  EXPECT_TRUE(std::isfinite(s));
}

TEST(Threshold, KinkRejectsBadArguments) {
  const auto ecl = core::ErrorClassLandscape::single_peak(8, 2.0, 1.0);
  EXPECT_THROW(transition_kink(ecl, 0.1, 0.01), qs::precondition_error);
  EXPECT_THROW(transition_kink(ecl, 0.01, 0.1, 2), qs::precondition_error);
}

TEST(Threshold, FlatLandscapeIsAlwaysUniform) {
  // Equal fitness: the quasispecies is uniform for every p, so there is no
  // ordered phase and no threshold.
  const auto flat = core::ErrorClassLandscape::from_values(8, std::vector<double>(9, 1.0));
  const auto pmax = find_error_threshold(flat);
  EXPECT_FALSE(pmax.has_value());
}

TEST(Threshold, RejectsBadBracket) {
  const auto ecl = core::ErrorClassLandscape::single_peak(8, 2.0, 1.0);
  ThresholdOptions bad;
  bad.p_lo = 0.2;
  bad.p_hi = 0.1;
  EXPECT_THROW(find_error_threshold(ecl, bad), qs::precondition_error);
}

}  // namespace
}  // namespace qs::analysis
