// Equivalence tests for the multi-vector (panel) kernels: the interleaved
// panel butterfly, its fused scalings (broadcast and per-column), the SIMD
// microkernel dispatch, and the group-banded Kronecker kernel must all match
// their single-vector serial references across every engine backend, panel
// width (SIMD-divisible and tail cases), and tiling plan.
#include "transforms/panel_butterfly.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "parallel/engine.hpp"
#include "support/rng.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/kronecker.hpp"
#include "transforms/panel_microkernel.hpp"

namespace qs::transforms {
namespace {

constexpr double kTol = 1e-14;

const std::initializer_list<parallel::Backend> kBackends = {
    parallel::Backend::serial, parallel::Backend::openmp,
    parallel::Backend::thread_pool};

// Panel widths covering every microkernel regime: scalar (1), below SIMD
// width (2, 3), exactly SIMD width (4), SIMD width + tail (5), two SIMD
// lanes (8).
const std::initializer_list<std::size_t> kWidths = {1, 2, 3, 4, 5, 8};

std::vector<Factor2> asymmetric_factors(unsigned nu, std::uint64_t seed) {
  std::vector<Factor2> sites;
  sites.reserve(nu);
  Xoshiro256 rng(seed);
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(Factor2::asymmetric(rng.uniform(0.001, 0.4), rng.uniform(0.001, 0.4)));
  }
  return sites;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

std::vector<double> positive_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(0.5, 2.0);
  return v;
}

void expect_near_all(const std::vector<double>& expected,
                     const std::vector<double>& actual, double tol) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(expected[i], actual[i], tol) << "index " << i;
  }
}

TEST(PanelButterfly, MatchesSingleVectorAcrossBackendsWidthsAndNu) {
  for (unsigned nu : {1u, 3u, 6u, 10u, 12u}) {
    const std::size_t n = std::size_t{1} << nu;
    const auto factors = asymmetric_factors(nu, nu);
    for (std::size_t m : kWidths) {
      // Reference: each column through the serial single-vector butterfly.
      std::vector<std::vector<double>> columns(m);
      std::vector<double> panel(n * m);
      for (std::size_t j = 0; j < m; ++j) {
        columns[j] = random_vector(n, 100 * nu + j);
        pack_panel_column(columns[j], panel, m, j);
        apply_butterfly(columns[j], factors);
      }
      for (parallel::Backend kind : kBackends) {
        const auto engine = parallel::make_engine(kind);
        std::vector<double> work = panel;
        apply_blocked_panel_butterfly(work, m, factors, *engine);
        std::vector<double> column(n);
        for (std::size_t j = 0; j < m; ++j) {
          unpack_panel_column(work, m, j, column);
          expect_near_all(columns[j], column, kTol);
        }
      }
    }
  }
}

TEST(PanelButterfly, WidthOneMatchesBlockedButterfly) {
  // m = 1 reduces to the single-vector banded kernel: same bands, same
  // operation order.  With the scalar microkernel table active the results
  // are bit-identical; with FMA-fused SIMD kernels each butterfly rounds
  // once less, so equality holds to a few ULP instead.
  const unsigned nu = 12;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 7);
  const auto x = random_vector(n, 7);
  std::vector<double> single = x;
  std::vector<double> panel = x;
  const auto& engine = parallel::serial_engine();
  apply_blocked_butterfly(single, factors, engine);
  apply_blocked_panel_butterfly(panel, 1, factors, engine);
  const bool scalar_active =
      std::string_view(panel_kernels().name) == std::string_view("scalar");
  for (std::size_t i = 0; i < n; ++i) {
    if (scalar_active) {
      ASSERT_EQ(single[i], panel[i]) << "index " << i;
    } else {
      ASSERT_NEAR(single[i], panel[i], kTol) << "index " << i;
    }
  }
}

TEST(PanelButterfly, FusedBroadcastScalingsMatchSingleVectorFused) {
  const unsigned nu = 11;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 21);
  const auto pre = positive_vector(n, 1);
  const auto post = positive_vector(n, 2);
  for (std::size_t m : kWidths) {
    std::vector<std::vector<double>> reference(m);
    std::vector<double> panel(n * m);
    for (std::size_t j = 0; j < m; ++j) {
      const auto x = random_vector(n, 40 + j);
      pack_panel_column(x, panel, m, j);
      reference[j].resize(n);
      apply_blocked_butterfly_fused(x, reference[j], factors, pre, post,
                                    parallel::serial_engine());
    }
    for (parallel::Backend kind : kBackends) {
      const auto engine = parallel::make_engine(kind);
      std::vector<double> out(n * m);
      apply_blocked_panel_butterfly_fused(panel, out, m, factors, pre, post,
                                          *engine);
      std::vector<double> column(n);
      for (std::size_t j = 0; j < m; ++j) {
        unpack_panel_column(out, m, j, column);
        expect_near_all(reference[j], column, kTol);
      }
    }
  }
}

TEST(PanelButterfly, PerColumnScalingsGiveEachColumnItsOwnDiagonal) {
  // Length N*m scalings: column j must see exactly its own diagonals — the
  // landscape-family mode W_j = D_post_j Q D_pre_j.
  const unsigned nu = 9;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 5);
  for (std::size_t m : {2ul, 3ul, 8ul}) {
    std::vector<double> pre_panel(n * m), post_panel(n * m), panel(n * m);
    std::vector<std::vector<double>> reference(m);
    for (std::size_t j = 0; j < m; ++j) {
      const auto pre = positive_vector(n, 300 + j);
      const auto post = positive_vector(n, 400 + j);
      const auto x = random_vector(n, 500 + j);
      pack_panel_column(pre, pre_panel, m, j);
      pack_panel_column(post, post_panel, m, j);
      pack_panel_column(x, panel, m, j);
      reference[j].resize(n);
      apply_blocked_butterfly_fused(x, reference[j], factors, pre, post,
                                    parallel::serial_engine());
    }
    for (parallel::Backend kind : kBackends) {
      const auto engine = parallel::make_engine(kind);
      std::vector<double> out = panel;
      apply_blocked_panel_butterfly_fused(out, out, m, factors, pre_panel,
                                          post_panel, *engine);
      std::vector<double> column(n);
      for (std::size_t j = 0; j < m; ++j) {
        unpack_panel_column(out, m, j, column);
        expect_near_all(reference[j], column, kTol);
      }
    }
  }
}

TEST(PanelButterfly, PlanVariationsAllAgree) {
  // Different tilings change the sweep order, never the math.
  const unsigned nu = 12;
  const std::size_t n = std::size_t{1} << nu;
  const std::size_t m = 4;
  const auto factors = asymmetric_factors(nu, 3);
  std::vector<double> base(n * m);
  for (std::size_t j = 0; j < m; ++j) {
    pack_panel_column(random_vector(n, 60 + j), base, m, j);
  }
  std::vector<double> reference = base;
  apply_blocked_panel_butterfly(reference, m, factors, parallel::serial_engine());
  for (const BlockedPlan plan : {BlockedPlan{4, 2}, BlockedPlan{6, 3},
                                 BlockedPlan{9, 5}, BlockedPlan{20, 6}}) {
    std::vector<double> work = base;
    apply_blocked_panel_butterfly(work, m, factors, parallel::serial_engine(),
                                  plan);
    expect_near_all(reference, work, kTol);
  }
}

TEST(PanelButterfly, PanelPlanShrinksTileOnlyForWidePanels) {
  // Panels up to m = 8 keep the full tile (the default tile is small
  // relative to L2, and fewer bands = fewer panel passes); wider panels
  // shrink by ceil(log2(m)) - 3.
  const BlockedPlan base{14, 6};
  EXPECT_EQ(panel_plan(base, 1).tile_log2, 14u);
  EXPECT_EQ(panel_plan(base, 2).tile_log2, 14u);
  EXPECT_EQ(panel_plan(base, 8).tile_log2, 14u);
  EXPECT_EQ(panel_plan(base, 16).tile_log2, 13u);
  EXPECT_EQ(panel_plan(base, 64).tile_log2, 11u);
  EXPECT_EQ(panel_plan(base, 48).tile_log2, 11u);  // ceil(log2(48)) = 6
  // Never shrinks below chunk_log2 + 1.
  const BlockedPlan tight{8, 6};
  EXPECT_EQ(panel_plan(tight, 8).tile_log2, 8u);
  EXPECT_EQ(panel_plan(tight, 1u << 10).tile_log2, 7u);
  EXPECT_GT(panel_plan(tight, 1u << 12).tile_log2, tight.chunk_log2);
}

TEST(PanelButterfly, PackUnpackRoundTrip) {
  const std::size_t n = 64, m = 5;
  std::vector<double> panel(n * m, 0.0);
  std::vector<std::vector<double>> columns(m);
  for (std::size_t j = 0; j < m; ++j) {
    columns[j] = random_vector(n, 900 + j);
    pack_panel_column(columns[j], panel, m, j);
  }
  std::vector<double> column(n);
  for (std::size_t j = 0; j < m; ++j) {
    unpack_panel_column(panel, m, j, column);
    expect_near_all(columns[j], column, 0.0);
  }
}

TEST(PanelMicrokernels, ActiveKernelsMatchScalarIncludingTails) {
  // The runtime-dispatched table (AVX2 where available) must agree with the
  // always-compiled scalar kernels on every span length around the SIMD
  // width, including the odd tails.
  const PanelKernels& scalar = scalar_panel_kernels();
  const PanelKernels& active = panel_kernels();
  const Factor2 f = Factor2::asymmetric(0.013, 0.27);
  for (std::size_t cnt : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 15ul, 64ul, 101ul}) {
    const auto lo0 = random_vector(cnt, cnt);
    const auto hi0 = random_vector(cnt, cnt + 1);
    const auto s = positive_vector(cnt, cnt + 2);

    auto lo_a = lo0, hi_a = hi0, lo_b = lo0, hi_b = hi0;
    scalar.butterfly_span(lo_a.data(), hi_a.data(), cnt, f);
    active.butterfly_span(lo_b.data(), hi_b.data(), cnt, f);
    expect_near_all(lo_a, lo_b, kTol);
    expect_near_all(hi_a, hi_b, kTol);

    std::vector<double> ya(cnt), yb(cnt);
    scalar.mul_span(ya.data(), lo0.data(), s.data(), cnt);
    active.mul_span(yb.data(), lo0.data(), s.data(), cnt);
    expect_near_all(ya, yb, 0.0);  // plain multiply: bitwise equal

    // Radix-4 quad: must equal two successive pair levels (any kernel mix).
    const Factor2 f_hi = Factor2::asymmetric(0.041, 0.18);
    auto quad_ref = random_vector(4 * cnt, cnt + 3);
    auto quad_act = quad_ref;
    {
      double* q = quad_ref.data();
      scalar.butterfly_span(q, q + cnt, cnt, f);
      scalar.butterfly_span(q + 2 * cnt, q + 3 * cnt, cnt, f);
      scalar.butterfly_span(q, q + 2 * cnt, cnt, f_hi);
      scalar.butterfly_span(q + cnt, q + 3 * cnt, cnt, f_hi);
    }
    {
      double* q = quad_act.data();
      active.butterfly_quad_span(q, q + cnt, q + 2 * cnt, q + 3 * cnt, cnt, f,
                                 f_hi);
    }
    expect_near_all(quad_ref, quad_act, kTol);

    // Radix-8 oct: must equal three successive pair levels.
    const Factor2 f_top = Factor2::asymmetric(0.009, 0.33);
    auto oct_ref = random_vector(8 * cnt, cnt + 4);
    auto oct_act = oct_ref;
    {
      double* q = oct_ref.data();
      for (std::size_t k = 0; k < 8; k += 2) {
        scalar.butterfly_span(q + k * cnt, q + (k + 1) * cnt, cnt, f);
      }
      for (std::size_t k : {0ul, 1ul, 4ul, 5ul}) {
        scalar.butterfly_span(q + k * cnt, q + (k + 2) * cnt, cnt, f_hi);
      }
      for (std::size_t k = 0; k < 4; ++k) {
        scalar.butterfly_span(q + k * cnt, q + (k + 4) * cnt, cnt, f_top);
      }
    }
    active.butterfly_oct_span(oct_act.data(), cnt, cnt, f, f_hi, f_top);
    expect_near_all(oct_ref, oct_act, kTol);

    auto za = lo0, zb = lo0;
    scalar.mul_span_inplace(za.data(), s.data(), cnt);
    active.mul_span_inplace(zb.data(), s.data(), cnt);
    expect_near_all(za, zb, 0.0);
  }
  for (std::size_t m : {1ul, 3ul, 4ul, 5ul, 8ul}) {
    const std::size_t rows = 9;
    const auto x = random_vector(rows * m, m);
    const auto s = positive_vector(rows, m + 1);
    std::vector<double> ya(rows * m), yb(rows * m);
    scalar.mul_rows_broadcast(ya.data(), x.data(), s.data(), rows, m);
    active.mul_rows_broadcast(yb.data(), x.data(), s.data(), rows, m);
    expect_near_all(ya, yb, 0.0);
    auto za = x, zb = x;
    scalar.mul_rows_broadcast_inplace(za.data(), s.data(), rows, m);
    active.mul_rows_broadcast_inplace(zb.data(), s.data(), rows, m);
    expect_near_all(za, zb, 0.0);
  }
}

void expect_bitwise(const std::vector<double>& expected,
                    const std::vector<double>& actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], actual[i]) << what << " index " << i;
  }
}

TEST(PanelWide, WideFusedMatchesEightColumnBlocksBitwise) {
  // The wide path (m > 8) sweeps at full width under the caller's plan;
  // band and stage boundaries only reorder work across elements, so every
  // column must come out BIT-IDENTICAL to the m = 8 panel holding the same
  // columns — not merely close.
  const unsigned nu = 10;
  const std::size_t n = std::size_t{1} << nu;
  const auto factors = asymmetric_factors(nu, 81);
  const auto pre = positive_vector(n, 82);
  const auto post = positive_vector(n, 83);
  constexpr std::size_t kColBlock = 8;
  for (std::size_t m : {16ul, 32ul}) {
    std::vector<double> panel(n * m);
    std::vector<std::vector<double>> columns(m);
    for (std::size_t j = 0; j < m; ++j) {
      columns[j] = random_vector(n, 90 * m + j);
      pack_panel_column(columns[j], panel, m, j);
    }

    // Reference: each 8-column block through the direct m = 8 fused panel.
    std::vector<std::vector<double>> reference(m);
    for (std::size_t j0 = 0; j0 < m; j0 += kColBlock) {
      std::vector<double> block(n * kColBlock), out(n * kColBlock);
      for (std::size_t c = 0; c < kColBlock; ++c) {
        pack_panel_column(columns[j0 + c], block, kColBlock, c);
      }
      apply_blocked_panel_butterfly_fused(block, out, kColBlock, factors, pre,
                                          post, parallel::serial_engine());
      for (std::size_t c = 0; c < kColBlock; ++c) {
        reference[j0 + c].resize(n);
        unpack_panel_column(out, kColBlock, c, reference[j0 + c]);
      }
    }

    for (parallel::Backend kind : kBackends) {
      const auto engine = parallel::make_engine(kind);
      std::vector<double> out(n * m);
      apply_panel_wide_fused(panel, out, m, factors, pre, post, *engine,
                             BlockedPlan{});
      std::vector<double> column(n);
      for (std::size_t j = 0; j < m; ++j) {
        unpack_panel_column(out, m, j, column);
        expect_bitwise(reference[j], column, "wide fused column");
      }

      // In-place (x aliasing y exactly) must equal out-of-place bitwise.
      std::vector<double> in_place = panel;
      apply_panel_wide_fused(in_place, in_place, m, factors, pre, post,
                             *engine, BlockedPlan{});
      expect_bitwise(out, in_place, "wide fused in-place");

      // The no-scalings wrapper agrees with empty spans through the fused
      // entry point.
      std::vector<double> plain = panel;
      apply_panel_wide(plain, m, factors, *engine, BlockedPlan{});
      std::vector<double> plain_ref(n * m);
      apply_panel_wide_fused(panel, plain_ref, m, factors, {}, {}, *engine,
                             BlockedPlan{});
      expect_bitwise(plain_ref, plain, "wide plain wrapper");
    }
  }
}

TEST(PanelWide, OperatorPanelRoutesWideWidthsThroughWidePath) {
  // FmmpOperator::apply_panel with m in {16, 32}: every column must be
  // bit-identical to the m = 8 apply_panel of the block holding it (the
  // full-width sweep only reorders work across elements; per column the
  // arithmetic matches the m = 8 path), and in-place application must match
  // out-of-place.
  const unsigned nu = 8;
  const std::size_t n = std::size_t{1} << nu;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 37);
  constexpr std::size_t kColBlock = 8;
  for (parallel::Backend kind : kBackends) {
    const auto engine = parallel::make_engine(kind);
    const core::FmmpOperator op(model, landscape, core::Formulation::right,
                                engine.get());
    for (std::size_t m : {16ul, 32ul}) {
      std::vector<double> panel(n * m);
      std::vector<std::vector<double>> columns(m);
      for (std::size_t j = 0; j < m; ++j) {
        columns[j] = random_vector(n, 70 * m + j);
        pack_panel_column(columns[j], panel, m, j);
      }

      std::vector<std::vector<double>> reference(m);
      for (std::size_t j0 = 0; j0 < m; j0 += kColBlock) {
        std::vector<double> block(n * kColBlock), out(n * kColBlock);
        for (std::size_t c = 0; c < kColBlock; ++c) {
          pack_panel_column(columns[j0 + c], block, kColBlock, c);
        }
        op.apply_panel(block, out, kColBlock);
        for (std::size_t c = 0; c < kColBlock; ++c) {
          reference[j0 + c].resize(n);
          unpack_panel_column(out, kColBlock, c, reference[j0 + c]);
        }
      }

      std::vector<double> out(n * m);
      op.apply_panel(panel, out, m);
      std::vector<double> column(n);
      for (std::size_t j = 0; j < m; ++j) {
        unpack_panel_column(out, m, j, column);
        expect_bitwise(reference[j], column, "operator wide column");
      }

      op.apply_panel(panel, panel, m);
      expect_bitwise(out, panel, "operator wide in-place");
    }
  }
}

std::vector<linalg::DenseMatrix> random_group_factors(
    const std::vector<unsigned>& bits, std::uint64_t seed) {
  // Column-stochastic random factors of size 2^bits[i].
  Xoshiro256 rng(seed);
  std::vector<linalg::DenseMatrix> factors;
  for (unsigned b : bits) {
    const std::size_t s = std::size_t{1} << b;
    linalg::DenseMatrix f(s, s);
    for (std::size_t c = 0; c < s; ++c) {
      double sum = 0.0;
      for (std::size_t r = 0; r < s; ++r) {
        f(r, c) = rng.uniform(0.01, 1.0);
        sum += f(r, c);
      }
      for (std::size_t r = 0; r < s; ++r) f(r, c) /= sum;
    }
    factors.push_back(std::move(f));
  }
  return factors;
}

TEST(BlockedKronecker, MatchesSerialReferenceAcrossGroupShapes) {
  // Group layouts covering: all-equal small groups, mixed sizes, one big
  // group, and a group wider than the tile budget (its own band).
  const std::vector<std::vector<unsigned>> shapes = {
      {1, 1, 1, 1, 1, 1, 1, 1}, {2, 2, 2, 2}, {3, 1, 2, 3, 1},
      {4, 4, 2}, {1, 5, 1, 3}, {10}};
  for (const auto& bits : shapes) {
    const KroneckerProduct kp(random_group_factors(bits, bits.size()));
    const std::size_t n = kp.dimension();
    for (std::size_t m : {1ul, 3ul, 4ul}) {
      std::vector<double> panel(n * m);
      std::vector<std::vector<double>> reference(m);
      for (std::size_t j = 0; j < m; ++j) {
        reference[j] = random_vector(n, 70 + j);
        pack_panel_column(reference[j], panel, m, j);
        kp.apply(reference[j]);
      }
      for (parallel::Backend kind : kBackends) {
        const auto engine = parallel::make_engine(kind);
        for (const BlockedPlan plan :
             {BlockedPlan{}, BlockedPlan{4, 2}, BlockedPlan{7, 3}}) {
          std::vector<double> work = panel;
          apply_blocked_kronecker(work, m, kp, *engine, plan);
          std::vector<double> column(n);
          for (std::size_t j = 0; j < m; ++j) {
            unpack_panel_column(work, m, j, column);
            expect_near_all(reference[j], column, kTol);
          }
        }
      }
    }
  }
}

TEST(BlockedKronecker, GroupedMutationModelEnginePathsMatchSerial) {
  // MutationModel's grouped engine paths now route through the banded
  // Kronecker kernel; all of them must match the serial reference apply().
  const auto factors = random_group_factors({2, 3, 1, 2}, 11);
  const auto model = core::MutationModel::grouped(factors);
  const std::size_t n = model.dimension();
  std::vector<double> reference = random_vector(n, 12);
  const std::vector<double> input = reference;
  model.apply(reference);
  for (parallel::Backend kind : kBackends) {
    const auto engine = parallel::make_engine(kind);
    std::vector<double> v = input;
    model.apply(std::span<double>(v), *engine);
    expect_near_all(reference, v, kTol);
    v = input;
    model.apply_blocked(v, *engine, BlockedPlan{5, 3});
    expect_near_all(reference, v, kTol);
    v = input;
    model.apply_per_level(v, *engine);
    expect_near_all(reference, v, kTol);
  }
}

TEST(PanelFmmp, MutationModelPanelMatchesPerColumnApply) {
  for (const bool grouped : {false, true}) {
    const auto model =
        grouped ? core::MutationModel::grouped(random_group_factors({2, 3, 2}, 9))
                : core::MutationModel::per_site(asymmetric_factors(7, 9));
    const std::size_t n = model.dimension();
    for (std::size_t m : {2ul, 5ul, 8ul}) {
      std::vector<double> panel(n * m);
      std::vector<std::vector<double>> reference(m);
      for (std::size_t j = 0; j < m; ++j) {
        reference[j] = random_vector(n, 20 + j);
        pack_panel_column(reference[j], panel, m, j);
        model.apply(reference[j]);
      }
      for (parallel::Backend kind : kBackends) {
        const auto engine = parallel::make_engine(kind);
        std::vector<double> work = panel;
        model.apply_panel(work, m, *engine);
        std::vector<double> column(n);
        for (std::size_t j = 0; j < m; ++j) {
          unpack_panel_column(work, m, j, column);
          expect_near_all(reference[j], column, kTol);
        }
      }
    }
  }
}

TEST(PanelFmmp, OperatorPanelMatchesPerColumnApplyAllFormulations) {
  const unsigned nu = 8;
  const std::size_t n = std::size_t{1} << nu;
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 33);
  for (const bool grouped : {false, true}) {
    const auto model =
        grouped
            ? core::MutationModel::grouped(random_group_factors({2, 2, 2, 2}, 4))
            : core::MutationModel::uniform(nu, 0.01);
    for (const core::Formulation form :
         {core::Formulation::right, core::Formulation::symmetric,
          core::Formulation::left}) {
      if (form == core::Formulation::symmetric && !model.symmetric()) continue;
      for (parallel::Backend kind : kBackends) {
        const auto engine = parallel::make_engine(kind);
        const core::FmmpOperator op(model, landscape, form, engine.get());
        const std::size_t m = 4;
        std::vector<double> panel(n * m), reference(n), x(n);
        std::vector<std::vector<double>> expected(m);
        for (std::size_t j = 0; j < m; ++j) {
          x = random_vector(n, 50 + j);
          pack_panel_column(x, panel, m, j);
          expected[j].resize(n);
          op.apply(x, expected[j]);
        }
        std::vector<double> out(n * m);
        op.apply_panel(panel, out, m);
        std::vector<double> column(n);
        for (std::size_t j = 0; j < m; ++j) {
          unpack_panel_column(out, m, j, column);
          expect_near_all(expected[j], column, kTol);
        }
        // In-place panel application agrees with out-of-place.
        op.apply_panel(panel, panel, m);
        expect_near_all(out, panel, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace qs::transforms
