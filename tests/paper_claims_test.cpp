// Verifications of the paper's side statements that no other suite covers:
// footnote 2 (Gray-code ordering), Eq. (12) (the inverse mutation matrix),
// the norm bounds of Section 3, and the Xmvp(1) complexity remark of
// Section 2.1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/explicit_q.hpp"
#include "core/xmvp.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "linalg/dense_matrix.hpp"
#include "support/binomial.hpp"
#include "support/bits.hpp"

namespace qs {
namespace {

TEST(PaperClaims, Footnote2GrayCodeGivesConstantFirstOffDiagonals) {
  // "using the Gray code as permutation would deliver a matrix Q where the
  // first diagonal above and below the main diagonal are constant. This
  // comes from ... d_H(X_i, X_{i+1}) = 1 for all i."
  const unsigned nu = 8;
  const double p = 0.04;
  const auto model = core::MutationModel::uniform(nu, p);
  const seq_t n = sequence_count(nu);

  const double expected = model.class_value(1);  // p (1-p)^{nu-1}
  for (seq_t i = 0; i + 1 < n; ++i) {
    // Permuted matrix entry Q_{pi(i), pi(i+1)} with pi = gray_code.
    EXPECT_DOUBLE_EQ(model.entry(gray_code(i), gray_code(i + 1)), expected);
    EXPECT_DOUBLE_EQ(model.entry(gray_code(i + 1), gray_code(i)), expected);
  }
}

TEST(PaperClaims, Equation12InverseMutationMatrix) {
  // Q(nu)^{-1} = (1-2p)^{-nu} (x)_k [[1-p, -p], [-p, 1-p]], with absolute
  // row and column sums all (1-2p)^{-nu}.
  const unsigned nu = 6;
  const double p = 0.08;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto q = core::build_q_dense(model);
  const std::size_t n = 64;

  // Build the claimed inverse explicitly.
  linalg::DenseMatrix claimed(n, n);
  const double scale = std::pow(1.0 - 2.0 * p, -static_cast<double>(nu));
  for (seq_t i = 0; i < n; ++i) {
    for (seq_t j = 0; j < n; ++j) {
      const unsigned d = hamming_distance(i, j);
      claimed(i, j) = scale * std::pow(-p, static_cast<double>(d)) *
                      std::pow(1.0 - p, static_cast<double>(nu - d));
    }
  }
  const auto product = q.multiply(claimed);
  EXPECT_LT(product.max_abs_distance(linalg::DenseMatrix::identity(n)), 1e-10);

  // Absolute row sums: sum_j |claimed_ij| = scale * sum_d C(nu,d) p^d
  // (1-p)^{nu-d} = scale.
  for (seq_t i = 0; i < n; ++i) {
    double abs_sum = 0.0;
    for (seq_t j = 0; j < n; ++j) abs_sum += std::abs(claimed(i, j));
    EXPECT_NEAR(abs_sum, scale, 1e-10 * scale);
  }
}

TEST(PaperClaims, Section3NormBounds) {
  // lambda_0 <= ||W||_1 <= f_max and lambda_min >= (1-2p)^nu f_min,
  // verified against the actual dense 1-norm (max absolute column sum).
  const unsigned nu = 6;
  const double p = 0.05;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 17);
  const auto w = core::build_w_dense(model, landscape, core::Formulation::right);

  double norm1 = 0.0;
  for (std::size_t j = 0; j < w.cols(); ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) col += std::abs(w(i, j));
    norm1 = std::max(norm1, col);
  }
  // ||W||_1 = max_j f_j * (column sum of Q = 1) = f_max exactly here.
  EXPECT_NEAR(norm1, landscape.max_fitness(), 1e-12);
}

TEST(PaperClaims, Xmvp1CostIsNPlusOneTerms) {
  // Section 2.1: Xmvp(1) touches N (nu + 1) terms — pattern count nu + 1.
  const unsigned nu = 12;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::flat(nu, 1.0);
  const core::XmvpOperator xmvp1(model, landscape, 1);
  EXPECT_EQ(xmvp1.pattern_count(), nu + 1u);
}

TEST(PaperClaims, QEntriesTakeOnlyNuPlusOneValues) {
  // "the entire matrix Q contains only nu + 1 different values."
  const unsigned nu = 7;
  const auto model = core::MutationModel::uniform(nu, 0.09);
  std::vector<double> classes(nu + 1);
  for (unsigned k = 0; k <= nu; ++k) classes[k] = model.class_value(k);
  for (seq_t i = 0; i < 128; i += 3) {
    for (seq_t j = 0; j < 128; j += 5) {
      EXPECT_DOUBLE_EQ(model.entry(i, j), classes[hamming_distance(i, j)]);
    }
  }
}

TEST(PaperClaims, ErrorClassCardinalitiesAreBinomial) {
  // "Gamma_k contains C(nu, k) sequences."
  const unsigned nu = 12;
  BinomialRow row(nu);
  std::vector<std::size_t> counts(nu + 1, 0);
  for (seq_t i = 0; i < sequence_count(nu); ++i) ++counts[hamming_weight(i)];
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_EQ(counts[k], row.exact(k));
  }
}

TEST(PaperClaims, EquallyFitSequencesGiveTheUniformDistribution) {
  // Section 1.1: "in the special case where all values in F are equal the
  // problem reduces to ... an eigenvector where all entries are equal."
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.07);
  const auto landscape = core::Landscape::flat(nu, 1.7);
  const auto result = solvers::solve(model, landscape);
  ASSERT_TRUE(result.converged);
  const double uniform = 1.0 / static_cast<double>(sequence_count(nu));
  for (double x : result.concentrations) EXPECT_NEAR(x, uniform, 1e-12);
}

TEST(PaperClaims, RandomReplicationExactlyAtOneHalf) {
  // Section 1.1: "random replication as exact solution of the ODE system is
  // obtained only for p = 0.5" — at p = 1/2 the quasispecies is uniform for
  // *any* landscape.
  const unsigned nu = 8;
  const auto model = core::MutationModel::uniform(nu, 0.5);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 23);
  const auto result = solvers::solve(model, landscape);
  ASSERT_TRUE(result.converged);
  const double uniform = 1.0 / static_cast<double>(sequence_count(nu));
  for (double x : result.concentrations) EXPECT_NEAR(x, uniform, 1e-10);
}

}  // namespace
}  // namespace qs
