// Unit tests for dense vector kernels.
#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/contracts.hpp"

namespace qs::linalg {
namespace {

TEST(VectorOps, Axpy) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(VectorOps, AxpyRejectsDimensionMismatch) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), qs::precondition_error);
}

TEST(VectorOps, Scale) {
  std::vector<double> x{1.0, -2.0};
  scale(x, -0.5);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(VectorOps, DotAndNorms) {
  std::vector<double> x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
  EXPECT_DOUBLE_EQ(sum(x), -1.0);
}

TEST(VectorOps, Norm2AvoidsOverflow) {
  // Naive sum of squares overflows; the scaled algorithm must not.
  std::vector<double> x{1e200, 1e200};
  EXPECT_DOUBLE_EQ(norm2(x), 1e200 * std::sqrt(2.0));
}

TEST(VectorOps, Norm2OfZeroVector) {
  std::vector<double> x{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(VectorOps, Normalize1) {
  std::vector<double> x{1.0, 3.0};
  const double before = normalize1(x);
  EXPECT_DOUBLE_EQ(before, 4.0);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
}

TEST(VectorOps, Normalize2) {
  std::vector<double> x{3.0, 4.0};
  const double before = normalize2(x);
  EXPECT_DOUBLE_EQ(before, 5.0);
  EXPECT_NEAR(norm2(x), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeRejectsZeroVector) {
  std::vector<double> x{0.0, 0.0};
  EXPECT_THROW(normalize1(x), qs::precondition_error);
  EXPECT_THROW(normalize2(x), qs::precondition_error);
}

TEST(VectorOps, MaxAbsDiff) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 1.0);
}

TEST(VectorOps, CopyAndHadamard) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> z(2);
  copy(x, z);
  EXPECT_EQ(z, x);
  std::vector<double> d{3.0, 0.5};
  hadamard_scale(z, d);
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
}

TEST(VectorOps, DotRejectsDimensionMismatch) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(dot(x, y), qs::precondition_error);
  EXPECT_THROW(copy(x, y), qs::precondition_error);
  EXPECT_THROW(max_abs_diff(x, y), qs::precondition_error);
  std::vector<double> z{1.0, 2.0};
  EXPECT_THROW(hadamard_scale(z, x), qs::precondition_error);
}

}  // namespace
}  // namespace qs::linalg
