// Tests for core/planned_operator: the one-stop execution object that owns
// the FmmpOperator, the tiling plan (fixed or autotuned), and the scratch
// workspace the solver loops draw from.
//
// The numerical contract is transparency: a PlannedOperator built with the
// defaults computes bit-for-bit what a bare FmmpOperator computes, and the
// autotuned variant computes bit-for-bit what a bare FmmpOperator with the
// winning plan computes (the banded butterfly's arithmetic per element does
// not depend on the tiling).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/planned_operator.hpp"
#include "core/workspace.hpp"

namespace qs::core {
namespace {

MutationModel test_model() { return MutationModel::uniform(8, 0.02); }
Landscape test_landscape() { return Landscape::random(8, 4.0, 1.0, 11); }

std::vector<double> test_vector(std::size_t n, std::size_t m = 1) {
  std::vector<double> x(n * m);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.125 * static_cast<double>(i % 17);
  }
  return x;
}

TEST(PlannedOperatorTest, DefaultApplyMatchesABareFmmpOperatorBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();
  const PlannedOperator planned(model, fitness);
  const FmmpOperator bare(model, fitness);

  const std::size_t n = static_cast<std::size_t>(planned.dimension());
  const auto x = test_vector(n);
  std::vector<double> y_planned(n), y_bare(n);
  planned.apply(x, y_planned);
  bare.apply(x, y_bare);

  ASSERT_EQ(y_planned, y_bare);
  EXPECT_FALSE(planned.autotune_report().has_value());
}

TEST(PlannedOperatorTest, SymmetricPanelApplyMatchesBitForBit) {
  const auto model = test_model();
  const auto fitness = test_landscape();
  PlannedOperatorConfig config;
  config.formulation = Formulation::symmetric;
  const PlannedOperator planned(model, fitness, config);
  const FmmpOperator bare(model, fitness, Formulation::symmetric);
  EXPECT_EQ(planned.fmmp().formulation(), Formulation::symmetric);

  const std::size_t n = static_cast<std::size_t>(planned.dimension());
  const std::size_t m = 4;
  const auto x = test_vector(n, m);
  std::vector<double> y_planned(n * m), y_bare(n * m);
  planned.apply_panel(x, y_planned, m);
  bare.apply_panel(x, y_bare, m);

  ASSERT_EQ(y_planned, y_bare);
}

TEST(PlannedOperatorTest, AutotuneRetainsTheReportAndStaysTransparent) {
  const auto model = test_model();
  const auto fitness = test_landscape();
  PlannedOperatorConfig config;
  config.autotune = true;
  const PlannedOperator planned(model, fitness, config);

  ASSERT_TRUE(planned.autotune_report().has_value());
  const auto& report = *planned.autotune_report();
  ASSERT_FALSE(report.timings.empty());
  EXPECT_EQ(planned.plan().tile_log2, report.best.tile_log2);
  EXPECT_EQ(planned.plan().chunk_log2, report.best.chunk_log2);

  // Whatever plan won, the product is the same arithmetic: a bare operator
  // handed the winning plan computes identical bits.
  const FmmpOperator bare(model, fitness, Formulation::right, nullptr,
                          transforms::LevelOrder::ascending,
                          EngineKernel::blocked, planned.plan());
  const std::size_t n = static_cast<std::size_t>(planned.dimension());
  const auto x = test_vector(n);
  std::vector<double> y_planned(n), y_bare(n);
  planned.apply(x, y_planned);
  bare.apply(x, y_bare);
  ASSERT_EQ(y_planned, y_bare);
}

TEST(PlannedOperatorTest, WorkspaceSlotsAreStableAndGrowOnly) {
  Workspace workspace;
  const auto a = workspace.take(Workspace::Slot::product, 100);
  ASSERT_EQ(a.size(), 100u);
  a[0] = 42.0;

  // A smaller take on the same slot reuses the same backing buffer.
  const auto b = workspace.take(Workspace::Slot::product, 50);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(b[0], 42.0);

  // Distinct slots are distinct buffers.
  const auto c = workspace.take(Workspace::Slot::recurrence, 100);
  EXPECT_NE(c.data(), a.data());

  // Growth never shrinks: bytes() is monotone across takes.
  const std::size_t before = workspace.bytes();
  const auto d = workspace.take(Workspace::Slot::product, 200);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_GE(workspace.bytes(), before);
  workspace.take(Workspace::Slot::product, 10);
  EXPECT_GE(workspace.bytes(), before);

  // Any slot index is valid, including the high Krylov slots.
  const auto e = workspace.take(Workspace::Slot::krylov6, 8);
  EXPECT_EQ(e.size(), 8u);
}

TEST(PlannedOperatorTest, WorkspaceIsSharedAcrossRepeatedTakes) {
  const auto model = test_model();
  const auto fitness = test_landscape();
  const PlannedOperator planned(model, fitness);

  const std::size_t n = static_cast<std::size_t>(planned.dimension());
  Workspace& workspace = planned.workspace();
  const auto first = workspace.take(Workspace::Slot::product, n);
  const auto second = workspace.take(Workspace::Slot::product, n);
  EXPECT_EQ(first.data(), second.data());
  EXPECT_GE(workspace.bytes(), n * sizeof(double));
}

}  // namespace
}  // namespace qs::core
