// End-to-end integration tests: every solver path against every other on
// shared problems, mirroring the cross-checks behind the paper's claims.
#include <gtest/gtest.h>

#include <cmath>
#include "support/rng.hpp"

#include "analysis/error_classes.hpp"
#include "analysis/threshold.hpp"
#include "core/explicit_q.hpp"
#include "core/fmmp.hpp"
#include "core/smvp.hpp"
#include "core/spectral.hpp"
#include "core/xmvp.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "ode/integrators.hpp"
#include "ode/replicator.hpp"
#include "solvers/kronecker_solver.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "solvers/reduced_solver.hpp"

namespace qs {
namespace {

TEST(Integration, FiveIndependentSolversAgreeOnOneProblem) {
  // One random-landscape problem (nu = 8, p = 0.02), solved by:
  //  1. power iteration on Fmmp,
  //  2. power iteration on the dense Smvp,
  //  3. power iteration on Xmvp(nu),
  //  4. dense Jacobi on the symmetric formulation,
  //  5. long-time ODE integration.
  const unsigned nu = 8;
  const double p = 0.02;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 2024);
  const auto start = solvers::landscape_start(landscape);

  const core::FmmpOperator fmmp(model, landscape);
  const auto r1 = solvers::power_iteration(fmmp, start);
  ASSERT_TRUE(r1.converged);

  const core::SmvpOperator smvp(model, landscape);
  const auto r2 = solvers::power_iteration(smvp, start);
  ASSERT_TRUE(r2.converged);

  const core::XmvpOperator xmvp(model, landscape, nu);
  const auto r3 = solvers::power_iteration(xmvp, start);
  ASSERT_TRUE(r3.converged);

  const auto w_sym = core::build_w_dense(model, landscape,
                                         core::Formulation::symmetric);
  const auto dense = linalg::jacobi_eigen(w_sym);

  const ode::ReplicatorODE replicator(model, landscape);
  auto x_ode = replicator.master_start();
  ode::StationaryOptions ode_opts;
  ode_opts.derivative_tol = 1e-12;
  const auto r5 = ode::integrate_to_stationary(replicator, x_ode, ode_opts);
  ASSERT_TRUE(r5.converged);

  EXPECT_NEAR(r1.eigenvalue, dense.values[0], 1e-10);
  EXPECT_NEAR(r2.eigenvalue, dense.values[0], 1e-10);
  EXPECT_NEAR(r3.eigenvalue, dense.values[0], 1e-10);
  EXPECT_NEAR(r5.mean_fitness, dense.values[0], 1e-8);

  EXPECT_LT(linalg::max_abs_diff(r1.eigenvector, r2.eigenvector), 1e-11);
  EXPECT_LT(linalg::max_abs_diff(r1.eigenvector, r3.eigenvector), 1e-11);
  EXPECT_LT(linalg::max_abs_diff(r1.eigenvector, x_ode), 1e-8);
}

TEST(Integration, ErrorThresholdCurveMatchesPaperQualitatively) {
  // Figure 1 (left) behaviour at nu = 20, f0 = 2: ordered at p = 0.01
  // (master class dominates), uniform at p = 0.06 (beyond p_max ~ 0.035).
  const unsigned nu = 20;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);

  const auto ordered = solvers::solve_reduced(0.01, ecl);
  // Master class holds a macroscopic share of the population although it is
  // 1 of 2^20 sequences.
  EXPECT_GT(ordered.class_concentrations[0], 0.1);

  const auto uniform = solvers::solve_reduced(0.06, ecl);
  EXPECT_LT(analysis::uniformity_distance(nu, uniform.class_concentrations), 1e-3);
}

TEST(Integration, MasterSequenceDominatesBelowThresholdPerSequence) {
  // Per-sequence view: below threshold the master sequence concentration
  // towers over any single mutant's.
  const unsigned nu = 12;
  const double p = 0.01;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto result = solvers::solve(model, landscape);
  ASSERT_TRUE(result.converged);
  const double master = result.concentrations[0];
  for (seq_t i = 1; i < result.concentrations.size(); ++i) {
    EXPECT_GT(master, result.concentrations[i]);
  }
  EXPECT_GT(master, 100.0 * result.concentrations[sequence_count(nu) - 1]);
}

TEST(Integration, KroneckerAndReducedPathsAgreeOnFlatCompatibleCase) {
  // A Kronecker landscape with identical flat factors is also an error-class
  // landscape; the two special-case solvers must agree with each other and
  // with the general path.
  const unsigned nu = 6;
  const double p = 0.05;
  const double c = 1.7;
  const auto model = core::MutationModel::uniform(nu, p);

  const core::KroneckerLandscape kron_landscape(
      std::vector<std::vector<double>>(3, std::vector<double>{c, c, c, c}));
  const auto kron = solvers::solve_kronecker(model, kron_landscape);

  // Flat landscape: dominant eigenvalue is c^? ... the full flat landscape
  // value is c^3 per sequence (product of three factors).
  const auto general = solvers::solve(model, kron_landscape.expand());
  ASSERT_TRUE(general.converged);
  EXPECT_NEAR(kron.eigenvalue(), general.eigenvalue, 1e-9 * general.eigenvalue);
  EXPECT_NEAR(general.eigenvalue, c * c * c, 1e-9);  // flat: lambda_0 = f
  EXPECT_LT(linalg::max_abs_diff(kron.expand(), general.concentrations), 1e-10);
}

TEST(Integration, GrayCodePermutationPreservesClassConcentrations) {
  // Footnote 2: reordering sequences (e.g. by Gray code) is a similarity
  // permutation; class concentrations relative to the permuted master are
  // unchanged. Verify by permuting the landscape and un-permuting the
  // solution.
  const unsigned nu = 8;
  const double p = 0.03;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 4096);

  const auto base = solvers::solve(model, landscape);
  ASSERT_TRUE(base.converged);

  // Permuted problem: f'_i = f_{gray(i)} does NOT commute with Q in general,
  // so instead permute by XOR with a fixed mask, which is an automorphism of
  // the hypercube (distance preserving): Q_{i^m, j^m} = Q_{i,j}.
  const seq_t mask = 0b10110101;
  std::vector<double> permuted_values(landscape.dimension());
  for (seq_t i = 0; i < landscape.dimension(); ++i) {
    permuted_values[i] = landscape.value(i ^ mask);
  }
  const auto permuted_landscape =
      core::Landscape::from_values(nu, std::move(permuted_values));
  const auto permuted = solvers::solve(model, permuted_landscape);
  ASSERT_TRUE(permuted.converged);

  EXPECT_NEAR(base.eigenvalue, permuted.eigenvalue, 1e-10);
  for (seq_t i = 0; i < landscape.dimension(); ++i) {
    EXPECT_NEAR(base.concentrations[i], permuted.concentrations[i ^ mask], 1e-10);
  }
}

TEST(Integration, GeneralizedMutationBeyondUniformRates) {
  // Section 2.2 end-to-end: an asymmetric per-site model solved through the
  // facade against the dense reference.
  const unsigned nu = 7;
  std::vector<transforms::Factor2> sites;
  Xoshiro256 rng(11);
  for (unsigned k = 0; k < nu; ++k) {
    sites.push_back(
        transforms::Factor2::asymmetric(rng.uniform(0.005, 0.1), rng.uniform(0.005, 0.1)));
  }
  const auto model = core::MutationModel::per_site(sites);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 12);

  solvers::SolveOptions opts;  // Fmmp handles asymmetric models transparently
  const auto fast = solvers::solve(model, landscape, opts);
  ASSERT_TRUE(fast.converged);

  solvers::SolveOptions dense_opts;
  dense_opts.matvec = solvers::MatvecKind::smvp;
  const auto dense = solvers::solve(model, landscape, dense_opts);
  ASSERT_TRUE(dense.converged);

  EXPECT_NEAR(fast.eigenvalue, dense.eigenvalue, 1e-10);
  EXPECT_LT(linalg::max_abs_diff(fast.concentrations, dense.concentrations), 1e-10);
}


TEST(Integration, SurvivalOfTheFlattest) {
  // Classic quasispecies prediction (only computable with a *general*
  // landscape solver): a lower fitness peak on a neutral plateau overtakes
  // a higher sharp peak once the error rate is large enough — selection
  // acts on the mutant cloud, not the single fittest sequence.
  const unsigned nu = 10;
  const seq_t sharp_master = 0;
  const seq_t flat_master = sequence_count(nu) - 1;
  std::vector<double> values(sequence_count(nu), 1.0);
  values[sharp_master] = 4.0;
  values[flat_master] = 3.0;
  for (unsigned b = 0; b < nu; ++b) values[flat_master ^ (seq_t{1} << b)] = 3.0;
  const auto landscape = core::Landscape::from_values(nu, std::move(values));

  auto region_mass = [&](std::span<const double> x, seq_t center) {
    double mass = 0.0;
    for (seq_t i = 0; i < x.size(); ++i) {
      if (hamming_distance(i, center) <= 2) mass += x[i];
    }
    return mass;
  };

  solvers::SolveOptions opts;
  opts.tolerance = 1e-10;
  const auto low_p =
      solvers::solve(core::MutationModel::uniform(nu, 0.005), landscape, opts);
  ASSERT_TRUE(low_p.converged);
  EXPECT_GT(region_mass(low_p.concentrations, sharp_master),
            10.0 * region_mass(low_p.concentrations, flat_master));

  const auto high_p =
      solvers::solve(core::MutationModel::uniform(nu, 0.12), landscape, opts);
  ASSERT_TRUE(high_p.converged);
  EXPECT_GT(region_mass(high_p.concentrations, flat_master),
            10.0 * region_mass(high_p.concentrations, sharp_master));
}

}  // namespace
}  // namespace qs
