// Unit tests for the kernel-dispatch execution engine (GPU substitute).
#include "parallel/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/mutation_model.hpp"
#include "parallel/thread_pool_backend.hpp"
#include "support/rng.hpp"

namespace qs::parallel {
namespace {

class EngineTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<Engine> engine_ = make_engine(GetParam());
};

TEST_P(EngineTest, DispatchCoversEveryIndexExactlyOnce) {
  const std::size_t n = 100001;
  std::vector<std::atomic<int>> hits(n);
  engine_->dispatch(n, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(EngineTest, DispatchOfZeroIsNoOp) {
  bool called = false;
  engine_->dispatch(0, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(EngineTest, DispatchHasBarrierSemantics) {
  // All writes from the kernel must be visible after dispatch returns.
  const std::size_t n = 4096;
  std::vector<double> out(n, 0.0);
  engine_->dispatch(n, [&out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = static_cast<double>(i);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], static_cast<double>(i));
}

TEST_P(EngineTest, ReductionsMatchSerialReference) {
  const std::size_t n = 12345;
  std::vector<double> a(n), b(n);
  Xoshiro256 rng(42);
  double sum = 0.0, abs_sum = 0.0, sq = 0.0, dp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
    sum += a[i];
    abs_sum += std::abs(a[i]);
    sq += a[i] * a[i];
    dp += a[i] * b[i];
  }
  EXPECT_NEAR(engine_->reduce_sum(a), sum, 1e-9);
  EXPECT_NEAR(engine_->reduce_abs_sum(a), abs_sum, 1e-9);
  EXPECT_NEAR(engine_->reduce_sum_squares(a), sq, 1e-9);
  EXPECT_NEAR(engine_->reduce_dot(a, b), dp, 1e-9);
}

TEST_P(EngineTest, DispatchPropagatesKernelExceptions) {
  // An exception thrown inside a kernel lane must surface on the dispatching
  // thread (not terminate the process), and every lane must still pass the
  // barrier — verified by the engine staying usable afterwards.
  const std::size_t n = 100000;
  EXPECT_THROW(engine_->dispatch(n,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin == 0) {
                                     throw std::runtime_error("kernel fault");
                                   }
                                 }),
               std::runtime_error);
  // The engine survives and the next dispatch is complete and correct.
  std::vector<double> out(n, 0.0);
  engine_->dispatch(n, [&out](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = 1.0;
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], 1.0);
}

TEST_P(EngineTest, DispatchPropagatesWhenEveryLaneThrows) {
  // First-wins capture: with all lanes throwing, exactly one exception
  // reaches the caller and the rest are swallowed, not std::terminate'd.
  EXPECT_THROW(engine_->dispatch(10000,
                                 [](std::size_t, std::size_t) {
                                   throw std::invalid_argument("all lanes");
                                 }),
               std::invalid_argument);
  EXPECT_NEAR(engine_->reduce_sum(std::vector<double>{1.0, 2.0}), 3.0, 1e-15);
}

TEST_P(EngineTest, ReducePartialsPropagatesKernelExceptions) {
  EXPECT_THROW(engine_->reduce_partials(100000,
                                        [](std::size_t begin, std::size_t) -> double {
                                          if (begin == 0) {
                                            throw std::runtime_error("reduce fault");
                                          }
                                          return 0.0;
                                        }),
               std::runtime_error);
  // Reductions still work afterwards.
  const double total = engine_->reduce_partials(
      1000, [](std::size_t begin, std::size_t end) {
        return static_cast<double>(end - begin);
      });
  EXPECT_EQ(total, 1000.0);
}

TEST_P(EngineTest, ExceptionTypeAndMessageSurviveThePropagation) {
  try {
    engine_->dispatch(1000, [](std::size_t, std::size_t) {
      throw std::out_of_range("specific message");
    });
    FAIL() << "dispatch must rethrow";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST_P(EngineTest, ConcurrencyIsAtLeastOne) {
  EXPECT_GE(engine_->concurrency(), 1u);
}

TEST_P(EngineTest, HasNonEmptyName) {
  EXPECT_FALSE(engine_->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EngineTest,
                         ::testing::Values(Backend::serial, Backend::openmp,
                                           Backend::thread_pool),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::serial: return "serial";
                             case Backend::openmp: return "openmp";
                             case Backend::thread_pool: return "thread_pool";
                           }
                           return "unknown";
                         });

TEST(ThreadPool, ExplicitThreadCountAndFmmpAgreement) {
  // A pool with several genuine std::threads must reproduce the serial
  // butterfly bit for bit (the kernel bodies are identical arithmetic).
  const auto pool = make_engine(Backend::thread_pool);
  EXPECT_GE(pool->concurrency(), 1u);
  EXPECT_EQ(pool->name(), "thread-pool");

  const auto model = qs::core::MutationModel::uniform(10, 0.03);
  std::vector<double> serial(1024), pooled(1024);
  qs::Xoshiro256 rng(5);
  for (std::size_t i = 0; i < 1024; ++i) serial[i] = pooled[i] = rng.uniform();
  model.apply(serial);
  model.apply(pooled, *pool);
  for (std::size_t i = 0; i < 1024; ++i) ASSERT_DOUBLE_EQ(serial[i], pooled[i]);
}

TEST(ThreadPool, ManyThreadsOnFewItems) {
  // More lanes than work: chunking must stay correct.
  qs::parallel::ThreadPoolBackend pool(8);
  EXPECT_EQ(pool.concurrency(), 8u);
  std::vector<double> out(3, 0.0);
  pool.dispatch(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] += 1.0;
  });
  for (double v : out) EXPECT_EQ(v, 1.0);
  // Repeated dispatches reuse the same workers (barrier generations).
  for (int round = 0; round < 50; ++round) {
    pool.dispatch(3, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] += 1.0;
    });
  }
  for (double v : out) EXPECT_EQ(v, 51.0);
}

TEST(EngineSingletons, Available) {
  EXPECT_EQ(serial_engine().name(), "serial");
  EXPECT_GE(parallel_engine().concurrency(), 1u);
}

TEST(EngineSingletons, SerialDispatchRunsOneChunk) {
  int chunks = 0;
  serial_engine().dispatch(1000, [&chunks](std::size_t begin, std::size_t end) {
    ++chunks;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
  });
  EXPECT_EQ(chunks, 1);
}

}  // namespace
}  // namespace qs::parallel
