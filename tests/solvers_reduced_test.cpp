// Unit tests for the exact (nu+1) x (nu+1) reduction (Section 5.1).
#include "solvers/reduced_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "support/binomial.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

TEST(ReducedMutationMatrix, RowsSumToOne) {
  // Q_Gamma(d, k) is the probability of landing in class k starting from a
  // fixed member of class d; classes partition the space.
  for (unsigned nu : {3u, 10u, 25u}) {
    const auto q = reduced_mutation_matrix(nu, 0.07);
    for (std::size_t d = 0; d <= nu; ++d) {
      double s = 0.0;
      for (std::size_t k = 0; k <= nu; ++k) s += q(d, k);
      EXPECT_NEAR(s, 1.0, 1e-12) << "nu=" << nu << " d=" << d;
    }
  }
}

TEST(ReducedMutationMatrix, MatchesDirectClassSums) {
  // Q_Gamma(d, k) must equal sum over j in Gamma_k of Q_{rep(d), j} for the
  // representative rep(d) = 2^d - 1 (the paper's natural choice).
  const unsigned nu = 8;
  const double p = 0.04;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto reduced = reduced_mutation_matrix(nu, p);
  for (unsigned d = 0; d <= nu; ++d) {
    const seq_t rep = (seq_t{1} << d) - 1;
    std::vector<double> sums(nu + 1, 0.0);
    for (seq_t j = 0; j < sequence_count(nu); ++j) {
      sums[hamming_weight(j)] += model.entry(rep, j);
    }
    for (unsigned k = 0; k <= nu; ++k) {
      EXPECT_NEAR(reduced(d, k), sums[k], 1e-13) << "d=" << d << " k=" << k;
    }
  }
}

TEST(ReducedMutationMatrix, TotalFlowMatrixIsSymmetric) {
  // T_{d,k} = C(nu,d) Q_Gamma(d,k) is the total probability flow between
  // classes; symmetry underpins the Jacobi backend.
  const unsigned nu = 12;
  const auto q = reduced_mutation_matrix(nu, 0.09);
  BinomialRow row(nu);
  for (unsigned d = 0; d <= nu; ++d) {
    for (unsigned k = d + 1; k <= nu; ++k) {
      EXPECT_NEAR(row.value(d) * q(d, k), row.value(k) * q(k, d), 1e-12);
    }
  }
}

TEST(ReducedMutationMatrix, RejectsBadArguments) {
  EXPECT_THROW(reduced_mutation_matrix(0, 0.1), precondition_error);
  EXPECT_THROW(reduced_mutation_matrix(5, 0.0), precondition_error);
  EXPECT_THROW(reduced_mutation_matrix(5, 0.6), precondition_error);
}

struct ReducedCase {
  unsigned nu;
  double p;
  const char* name;
};

class ReducedVsFull : public ::testing::TestWithParam<ReducedCase> {};

TEST_P(ReducedVsFull, SinglePeakMatchesFullSolver) {
  const auto [nu, p, name] = GetParam();
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto reduced = solve_reduced(p, ecl);

  // Full problem via Pi(Fmmp).
  const auto model = core::MutationModel::uniform(nu, p);
  const auto full_landscape = ecl.expand();
  const core::FmmpOperator op(model, full_landscape);
  PowerOptions opts;
  opts.shift = core::conservative_shift(model, full_landscape);
  const auto full = power_iteration(op, landscape_start(full_landscape), opts);
  ASSERT_TRUE(full.converged);

  EXPECT_NEAR(reduced.eigenvalue, full.eigenvalue, 1e-10 * full.eigenvalue);
  const auto full_classes = analysis::class_concentrations(nu, full.eigenvector);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(reduced.class_concentrations[k], full_classes[k], 1e-9)
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReducedVsFull,
    ::testing::Values(ReducedCase{6, 0.01, "nu6_p001"},
                      ReducedCase{6, 0.05, "nu6_p005"},
                      ReducedCase{8, 0.02, "nu8_p002"},
                      ReducedCase{10, 0.03, "nu10_p003"},
                      ReducedCase{12, 0.01, "nu12_p001"},
                      ReducedCase{12, 0.10, "nu12_p010"}),
    [](const auto& info) { return info.param.name; });

TEST(ReducedSolver, GeneralPhiMatchesFullSolver) {
  const unsigned nu = 9;
  const double p = 0.04;
  // Arbitrary positive phi profile.
  std::vector<double> phi;
  for (unsigned k = 0; k <= nu; ++k) {
    phi.push_back(1.0 + 2.0 * std::exp(-0.5 * k) + 0.3 * ((k % 3 == 0) ? 1.0 : 0.0));
  }
  const auto ecl = core::ErrorClassLandscape::from_values(nu, phi);
  const auto reduced = solve_reduced(p, ecl);

  const auto model = core::MutationModel::uniform(nu, p);
  const auto full_landscape = ecl.expand();
  const core::FmmpOperator op(model, full_landscape);
  PowerOptions opts;
  opts.shift = core::conservative_shift(model, full_landscape);
  const auto full = power_iteration(op, landscape_start(full_landscape), opts);
  ASSERT_TRUE(full.converged);

  EXPECT_NEAR(reduced.eigenvalue, full.eigenvalue, 1e-9 * full.eigenvalue);
  const auto full_classes = analysis::class_concentrations(nu, full.eigenvector);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(reduced.class_concentrations[k], full_classes[k], 1e-8);
  }
}

TEST(ReducedSolver, AllBackendsAgree) {
  const unsigned nu = 14;
  const double p = 0.03;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto jac = solve_reduced(p, ecl, ReducedMethod::jacobi);
  const auto pow = solve_reduced(p, ecl, ReducedMethod::power);
  const auto qri = solve_reduced(p, ecl, ReducedMethod::qr_inverse);
  EXPECT_NEAR(jac.eigenvalue, pow.eigenvalue, 1e-9);
  EXPECT_NEAR(jac.eigenvalue, qri.eigenvalue, 1e-9);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(jac.class_concentrations[k], pow.class_concentrations[k], 1e-8);
    EXPECT_NEAR(jac.class_concentrations[k], qri.class_concentrations[k], 1e-8);
  }
}

TEST(ReducedSolver, ClassConcentrationsFormDistribution) {
  const auto ecl = core::ErrorClassLandscape::single_peak(20, 2.0, 1.0);
  const auto r = solve_reduced(0.02, ecl);
  double s = 0.0;
  for (double c : r.class_concentrations) {
    EXPECT_GE(c, 0.0);
    s += c;
  }
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(ReducedSolver, RepresentativesTimesCardinalityIsClassTotal) {
  const unsigned nu = 10;
  const auto ecl = core::ErrorClassLandscape::linear(nu, 2.0, 1.0);
  const auto r = solve_reduced(0.05, ecl);
  BinomialRow row(nu);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(r.representatives[k] * row.value(k), r.class_concentrations[k],
                1e-13);
  }
}

TEST(ReducedSolver, HalfErrorRateGivesExactlyUniformDistribution) {
  // p = 1/2 is random replication: every sequence equally likely.
  const unsigned nu = 12;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  const auto r = solve_reduced(0.5, ecl);
  const auto uniform = analysis::uniform_class_concentrations(nu);
  for (unsigned k = 0; k <= nu; ++k) {
    EXPECT_NEAR(r.class_concentrations[k], uniform[k], 1e-10);
  }
}

TEST(ReducedSolver, ScalesToHugeChainLengths) {
  // nu = 500 is hopeless for any 2^nu method; the reduction runs in
  // milliseconds and must stay finite and normalised.
  const unsigned nu = 500;
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, 5.0, 1.0);
  const auto r = solve_reduced(0.001, ecl);
  EXPECT_TRUE(std::isfinite(r.eigenvalue));
  EXPECT_GT(r.eigenvalue, 1.0);
  double s = 0.0;
  for (double c : r.class_concentrations) {
    ASSERT_TRUE(std::isfinite(c));
    ASSERT_GE(c, 0.0);
    s += c;
  }
  EXPECT_NEAR(s, 1.0, 1e-10);
  // Master class clearly dominates at this tiny p.
  EXPECT_GT(r.class_concentrations[0], 0.3);
}

TEST(ExpandRepresentatives, BuildsErrorClassVector) {
  std::vector<double> reps{0.5, 0.25, 0.125};
  const auto full = expand_representatives(2, reps);
  ASSERT_EQ(full.size(), 4u);
  EXPECT_DOUBLE_EQ(full[0], 0.5);    // weight 0
  EXPECT_DOUBLE_EQ(full[1], 0.25);   // weight 1
  EXPECT_DOUBLE_EQ(full[2], 0.25);   // weight 1
  EXPECT_DOUBLE_EQ(full[3], 0.125);  // weight 2
}

TEST(ExpandRepresentatives, RejectsBadArguments) {
  std::vector<double> reps{1.0, 1.0};
  EXPECT_THROW(expand_representatives(2, reps), precondition_error);
}

}  // namespace
}  // namespace qs::solvers
