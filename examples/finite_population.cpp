// Finite populations: stochastic Wright-Fisher dynamics vs the
// deterministic quasispecies.
//
// The eigenvector describes an infinite population.  Real virus populations
// are finite, and the reference [11] of the paper (Nowak & Schuster 1989)
// showed that finiteness effectively *lowers* the error threshold: random
// drift destroys the ordered phase before the deterministic p_max is
// reached.  This example simulates Wright-Fisher populations of increasing
// size at a fixed error rate near the threshold and shows the convergence
// to the deterministic prediction as N_pop grows.
//
//   $ ./finite_population [nu] [p]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.04;

  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  // Deterministic reference (infinite population).
  const auto deterministic = solvers::solve(model, landscape);
  const double det_master = deterministic.class_concentrations[0];
  std::cout << "single peak, nu = " << nu << ", p = " << p
            << " (deterministic threshold p_max ~ " << std::log(2.0) / nu << ")\n"
            << "deterministic master-class concentration [Gamma_0] = "
            << det_master << "\n\n";

  std::cout << "Wright-Fisher simulations (time average over the second half "
               "of 400 generations):\n"
            << "  N_pop     [Gamma_0]     relative deviation\n";
  for (std::uint64_t n_pop : {100ull, 1000ull, 10000ull, 100000ull}) {
    stochastic::WrightFisher wf(model, landscape, 1234 + n_pop);
    auto population = stochastic::Population::monomorphic(nu, n_pop);
    const auto average = wf.run(population, 400, 200);
    const auto classes = analysis::class_concentrations(nu, average);
    std::cout << "  " << n_pop << "     " << classes[0] << "      "
              << std::abs(classes[0] - det_master) / det_master << "\n";
  }

  std::cout << "\nexpected shape: the deviation shrinks roughly like "
               "1/sqrt(N_pop); small populations lose the master class to "
               "drift (the finite-population threshold shift of Nowak & "
               "Schuster).\n";
  return 0;
}
