// Chain lengths beyond any explicit method: Kronecker landscapes
// (Section 5.2 of the paper).
//
// A chain of nu = 100 positions has 2^100 ~ 1.3e30 species — no vector of
// that length will ever be stored.  If the fitness landscape factorises
// over groups of positions, the problem decouples exactly: the dominant
// eigenvector is the Kronecker product of per-group eigenvectors, kept
// implicit, and every quantity of interest (single concentrations, class
// totals, per-class extremes) is queried from the factors.
//
//   $ ./long_chain_kronecker [nu] [groups]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 100;
  const unsigned groups = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;
  if (nu % groups != 0) {
    std::cerr << "groups must divide nu\n";
    return 1;
  }
  const unsigned bits = nu / groups;
  const double p = 0.002;

  // Each group gets its own fitness factor: a peak within the group plus
  // random variation — the product structure models independently
  // contributing genome regions.
  Xoshiro256 rng(7);
  std::vector<std::vector<double>> factors;
  for (unsigned g = 0; g < groups; ++g) {
    std::vector<double> f(std::size_t{1} << bits);
    for (double& v : f) v = rng.uniform(0.8, 1.2);
    f[0] = 1.5;  // group-local master motif
    factors.push_back(std::move(f));
  }
  const core::KroneckerLandscape landscape(std::move(factors));
  const auto model = core::MutationModel::uniform(nu, p);

  std::cout << "chain length nu = " << nu << "  (2^" << nu
            << " species — far beyond storage), " << groups
            << " groups of 2^" << bits << "\n";
  Timer t;
  const auto result = solvers::solve_kronecker(model, landscape);
  std::cout << "solved " << groups << " decoupled subproblems in " << t.seconds()
            << " s\n"
            << "dominant eigenvalue lambda_0 = " << result.eigenvalue() << "\n\n";

  std::cout << "implicit eigenvector queries:\n"
            << "  master sequence concentration x_0 = " << result.concentration(0)
            << "\n"
            << "  single mutant (bit 0) x_1        = " << result.concentration(1)
            << "\n\n";

  const auto classes = result.class_concentrations();
  const auto extremes = result.class_min_max();
  std::cout << "error classes of the full " << nu << "-bit problem (exact, via "
               "the factor DP — no 2^nu work):\n"
            << "  k     [Gamma_k]      min x in class   max x in class\n";
  for (unsigned k : {0u, 1u, 2u, 3u, 5u, 10u, nu / 2, nu}) {
    std::cout << "  " << k << "     " << classes[k] << "     "
              << extremes[k].first << "     " << extremes[k].second << "\n";
  }

  double mass = 0.0;
  for (double c : classes) mass += c;
  std::cout << "\ntotal probability mass across classes: " << mass
            << " (must be 1)\n"
            << "\nThe same population modelled per-class only (Section 5.1 "
               "reduction) would need the landscape to be a function of the "
               "Hamming distance; Kronecker landscapes keep "
            << groups << " * 2^" << bits << " = " << groups * (1u << bits)
            << " independent fitness degrees of freedom instead of " << nu + 1
            << ".\n";
  return 0;
}
