// Error-threshold study: reproduce Figure 1 of the paper as CSV files and
// locate the critical error rate for a family of landscapes.
//
// For Hamming-distance (error-class) landscapes the exact (nu+1) x (nu+1)
// reduction of Section 5.1 makes a dense p-sweep at nu = 20 essentially
// free, so this example also sweeps the peak height to show how the
// threshold p_max moves with the selective advantage (classic quasispecies
// theory predicts p_max ~ ln(sigma)/nu).
//
//   $ ./error_threshold_study [output_dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";
  const unsigned nu = 20;

  const auto grid = analysis::error_rate_grid(0.0005, 0.09, 180);

  // Figure 1 left: single peak, sharp threshold.
  const auto peak = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);
  {
    std::ofstream file(out_dir / "fig1_left_single_peak.csv");
    analysis::write_sweep_csv(analysis::sweep_error_rates(peak, grid), file);
  }
  // Figure 1 right: linear landscape, smooth transition.
  const auto linear = core::ErrorClassLandscape::linear(nu, 2.0, 1.0);
  {
    std::ofstream file(out_dir / "fig1_right_linear.csv");
    analysis::write_sweep_csv(analysis::sweep_error_rates(linear, grid), file);
  }
  std::cout << "wrote fig1_left_single_peak.csv and fig1_right_linear.csv to "
            << out_dir << "\n\n";

  const auto p_peak = analysis::find_error_threshold(peak);
  const auto p_linear = analysis::find_error_threshold(linear);
  std::cout << "single peak: threshold p_max = "
            << (p_peak ? std::to_string(*p_peak) : "none") << " (paper: ~0.035)\n"
            << "linear:      first uniform p  = "
            << (p_linear ? std::to_string(*p_linear) : "none")
            << " (smooth transition — kink "
            << analysis::transition_kink(linear, 0.005, 0.09) << " vs peak kink "
            << analysis::transition_kink(peak, 0.005, 0.09) << ")\n\n";

  // Threshold vs selective advantage sigma: p_max ~ ln(sigma)/nu.
  std::cout << "threshold vs peak height (nu = " << nu << "):\n";
  std::cout << "  sigma   p_max(measured)   ln(sigma)/nu\n";
  for (double sigma : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    const auto landscape = core::ErrorClassLandscape::single_peak(nu, sigma, 1.0);
    const auto pmax = analysis::find_error_threshold(landscape);
    std::cout << "  " << sigma << "     "
              << (pmax ? std::to_string(*pmax) : "none") << "       "
              << std::log(sigma) / nu << "\n";
  }
  return 0;
}
