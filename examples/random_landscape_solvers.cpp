// General (random) landscapes: the regime where the paper's fast solver is
// the only practical option.
//
// Random landscapes (Eq. (13)) have no error-class or Kronecker structure,
// so neither the reduced nor the decoupled solver applies — the general
// machinery runs: the shifted power iteration on the Fmmp product.  This
// example compares it against the approximative Xmvp(5) path (the paper's
// earlier approach) and reports accuracy and runtime side by side.
//
//   $ ./random_landscape_solvers [nu] [seed]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 14;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const double p = 0.01;

  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, /*c=*/5.0, /*sigma=*/1.0, seed);
  std::cout << "random landscape (Eq. 13): nu = " << nu << ", c = 5, sigma = 1, "
            << "seed = " << seed << ", p = " << p << "\n\n";

  // Exact: Pi(Fmmp).
  Timer t_exact;
  const auto exact = solvers::solve(model, landscape);
  const double exact_s = t_exact.seconds();
  std::cout << "Pi(Fmmp)    : lambda = " << exact.eigenvalue << ", "
            << exact.iterations << " iterations, " << exact_s << " s, residual "
            << exact.residual << "\n";

  // Approximate: Pi(Xmvp(5)) with the paper's tau = 1e-10.
  solvers::SolveOptions approx_opts;
  approx_opts.matvec = solvers::MatvecKind::xmvp;
  approx_opts.xmvp_d_max = 5;
  approx_opts.tolerance = 1e-10;
  Timer t_approx;
  const auto approx = solvers::solve(model, landscape, approx_opts);
  const double approx_s = t_approx.seconds();

  double max_diff = 0.0;
  for (seq_t i = 0; i < exact.concentrations.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(exact.concentrations[i] -
                                           approx.concentrations[i]));
  }
  std::cout << "Pi(Xmvp(5)) : lambda = " << approx.eigenvalue << ", "
            << approx.iterations << " iterations, " << approx_s << " s\n"
            << "              concentration error vs exact: " << max_diff
            << " (the paper reports ~5 lost digits for the approximation)\n\n";

  // What the quasispecies looks like on an unstructured landscape.
  std::cout << "exact solution summary:\n"
            << "  mean fitness (lambda_0): " << exact.eigenvalue << "\n"
            << "  master concentration x_0: " << exact.concentrations[0] << "\n"
            << "  population entropy: "
            << analysis::population_entropy(exact.concentrations) << " nats (max "
            << nu * std::log(2.0) << ")\n"
            << "  class concentrations [G0..G4]: ";
  for (unsigned k = 0; k <= std::min(nu, 4u); ++k) {
    std::cout << exact.class_concentrations[k] << " ";
  }
  std::cout << "\n";
  return 0;
}
