// Lethal mutagenesis as an antiviral strategy (the paper's motivation).
//
// Section 1.1: "This sudden change from an ordered distribution to random
// replication is of potential interest as a building block for new
// antiviral strategies because the error rates of RNA viruses are usually
// close to this critical value and an increase of p is possible by the use
// of pharmaceutical drugs."  (Eigen 2002, "Error catastrophe and antiviral
// strategy".)
//
// This example plays that scenario out dynamically: a virus population
// evolves at its natural error rate just below the threshold; a mutagenic
// drug is then applied in escalating doses (each dose raises p), and the
// replicator-mutator dynamics show the master sequence collapsing once the
// dose pushes p beyond p_max — while sub-threshold doses merely thin it.
//
//   $ ./antiviral_strategy [nu]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const double sigma = 4.0;  // replication advantage of the wild type
  const auto landscape = core::Landscape::single_peak(nu, sigma, 1.0);
  const auto ecl = core::ErrorClassLandscape::single_peak(nu, sigma, 1.0);

  // At moderate nu the transition is finite-size smeared, so locate the
  // threshold with a percent-level uniformity tolerance (a strict 1e-4
  // tolerance would place it deep inside the disordered phase).
  analysis::ThresholdOptions threshold_opts;
  threshold_opts.uniformity_tol = 0.01;
  const auto pmax = analysis::find_error_threshold(ecl, threshold_opts);
  if (!pmax) {
    std::cerr << "no threshold for this landscape\n";
    return 1;
  }
  const double natural_p = 0.6 * *pmax;  // RNA viruses live near the threshold
  std::cout << "single peak, nu = " << nu << ", sigma = " << sigma
            << ": error threshold p_max = " << *pmax << "\n"
            << "natural viral error rate p = " << natural_p
            << " (ordered phase)\n\n";

  // Establish the pre-treatment population (stationary at the natural p).
  auto model = core::MutationModel::uniform(nu, natural_p);
  const auto pretreatment = solvers::solve(model, landscape);
  std::vector<double> x = pretreatment.concentrations;
  std::cout << "pre-treatment: master concentration x_0 = " << x[0]
            << ", mean fitness = " << pretreatment.eigenvalue << "\n\n";

  // Escalating mutagen doses: each multiplies the error rate.
  std::cout << "dose escalation (each dose runs the replicator-mutator "
               "dynamics to its new equilibrium):\n"
            << "  dose  p(drug)    vs p_max   x_0 (master)   mean fitness   "
               "entropy/max\n";
  for (double dose : {1.0, 1.2, 1.5, 1.8, 2.2, 3.0}) {
    const double p_drug = natural_p * dose;
    const auto drugged = core::MutationModel::uniform(nu, p_drug);
    const ode::ReplicatorODE dynamics(drugged, landscape);
    ode::StationaryOptions opts;
    opts.derivative_tol = 1e-10;
    const auto run = ode::integrate_to_stationary(dynamics, x, opts);
    const double entropy = analysis::population_entropy(x) /
                           (nu * std::log(2.0));
    std::printf("  %.1fx  %.5f    %s p_max   %.6f       %.4f         %.3f\n",
                dose, p_drug, p_drug > *pmax ? "above" : "below", x[0],
                run.mean_fitness, entropy);
  }

  std::cout << "\nreading: below-threshold doses thin the master but the "
               "population stays structured (entropy well below 1); the "
               "first above-threshold dose collapses it into random "
               "replication (x_0 -> 1/2^nu = "
            << 1.0 / static_cast<double>(sequence_count(nu))
            << ", entropy -> 1) — the error catastrophe the therapy aims "
               "for.\n";
  return 0;
}
