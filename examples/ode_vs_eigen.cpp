// The quasispecies as the long-time limit of Eigen's replicator-mutator
// ODE (Eq. (1) of the paper).
//
// The eigenvector formulation and the dynamical formulation must agree:
// integrating dx/dt = Q F x - Phi x from the pure-master initial condition
// converges to the dominant eigenvector of W = Q F, and the mean fitness
// Phi(t) converges to the dominant eigenvalue.  This example runs both and
// prints the trajectory of the approach to equilibrium.
//
//   $ ./ode_vs_eigen [nu] [p]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.02;

  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 123);

  // Eigen path: shifted power iteration on Fmmp.
  Timer t_eigen;
  const auto eigen_result = solvers::solve(model, landscape);
  std::cout << "eigen solver:  lambda_0 = " << eigen_result.eigenvalue << "  ("
            << t_eigen.seconds() << " s, " << eigen_result.iterations
            << " iterations)\n";

  // ODE path: integrate from x_0 = 1 and watch Phi(t) -> lambda_0.
  const ode::ReplicatorODE replicator(model, landscape);
  auto x = replicator.master_start();
  std::vector<double> dx(x.size());

  std::cout << "\nODE trajectory (adaptive RKF45 from the pure-master state):\n"
            << "  t        Phi(t)      ||dx/dt||_inf   distance to eigenvector\n";
  double t_now = 0.0;
  double dt = 1e-2;
  ode::AdaptiveOptions step_opts;
  const double t_marks[] = {0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0};
  std::size_t mark = 0;
  while (mark < std::size(t_marks)) {
    t_now += ode::rkf45_step(replicator, x, dt, step_opts);
    if (t_now >= t_marks[mark]) {
      const double phi = replicator.derivative(x, dx);
      std::cout << "  " << t_marks[mark] << "     " << phi << "   "
                << linalg::norm_inf(dx) << "    "
                << linalg::max_abs_diff(x, eigen_result.concentrations) << "\n";
      ++mark;
    }
  }

  // Drive fully to stationarity and compare.
  ode::StationaryOptions stat;
  stat.derivative_tol = 1e-12;
  const auto stationary = ode::integrate_to_stationary(replicator, x, stat);
  std::cout << "\nstationary state reached at t = " << stationary.time << " ("
            << stationary.steps << " further steps)\n"
            << "  Phi_infinity = " << stationary.mean_fitness
            << "  vs eigen lambda_0 = " << eigen_result.eigenvalue << "\n"
            << "  max |x_ode - x_eigen| = "
            << linalg::max_abs_diff(x, eigen_result.concentrations) << "\n"
            << "\nThe agreement validates both machineries against each other: "
               "the ODE integrator rides on the same fast mutation matrix "
               "product, so even dynamics cost Theta(N log2 N) per step.\n";
  return 0;
}
