// Quasispecies over the full four-letter RNA alphabet (Section 5.2's
// closing remark, implemented).
//
// Builds a Kimura two-parameter mutation model (transitions A<->G, C<->U
// more frequent than transversions, as in real RNA virus replication) over
// an 8-base master sequence, solves for the quasispecies, and reports the
// population structure at base resolution.
//
//   $ ./rna_quasispecies [master-sequence] [alpha] [beta]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const std::string master = argc > 1 ? argv[1] : "AUGGCACU";
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.02;  // transition rate
  const double beta = argc > 3 ? std::atof(argv[3]) : 0.004;  // transversion rate
  const unsigned bases = static_cast<unsigned>(master.size());

  const auto substitution = rna::kimura(alpha, beta);
  const auto model = rna::uniform_rna_model(bases, substitution);
  const auto landscape = rna::rna_single_peak(master, 3.0, 1.0);
  std::cout << "RNA quasispecies: master " << master << " (" << bases
            << " bases = 4^" << bases << " = " << sequence_count(2 * bases)
            << " species)\n"
            << "Kimura model: transitions " << alpha << ", transversions " << beta
            << " (ratio " << alpha / beta << ")\n\n";

  Timer timer;
  const auto result = solvers::solve(model, landscape);
  if (!result.converged) {
    std::cerr << "solver did not converge\n";
    return 1;
  }
  std::cout << "lambda_0 = " << result.eigenvalue << "  (" << timer.seconds()
            << " s, " << result.iterations << " iterations)\n\n";

  const seq_t master_index = rna::encode(master);
  std::cout << "top sequences:\n";
  std::vector<seq_t> order(result.concentrations.size());
  for (seq_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 8, order.end(),
                    [&](seq_t a, seq_t b) {
                      return result.concentrations[a] > result.concentrations[b];
                    });
  for (int r = 0; r < 8; ++r) {
    const seq_t s = order[r];
    std::cout << "  " << rna::decode(s, bases) << "  (base distance "
              << rna::base_hamming_distance(s, master_index, bases)
              << "): " << result.concentrations[s] << "\n";
  }

  const auto classes =
      rna::base_class_concentrations(bases, result.concentrations, master_index);
  std::cout << "\nconcentration per base-Hamming class:\n";
  for (unsigned k = 0; k <= bases; ++k) {
    std::cout << "  d = " << k << ": " << classes[k] << "\n";
  }

  // Transition/transversion signature: among single mutants of the first
  // base, the transition product should dominate the transversions.
  const auto mutate_base0 = [&](rna::Nucleotide n) {
    return (master_index & ~seq_t{3}) | static_cast<seq_t>(n);
  };
  std::cout << "\nsingle-mutant spectrum at base 0 (master base "
            << rna::to_char(rna::base_at(master_index, 0)) << "):\n";
  for (auto n : {rna::Nucleotide::A, rna::Nucleotide::C, rna::Nucleotide::G,
                 rna::Nucleotide::U}) {
    const seq_t s = mutate_base0(n);
    if (s == master_index) continue;
    std::cout << "  -> " << rna::to_char(n) << ": " << result.concentrations[s]
              << "\n";
  }
  std::cout << "\nexpected shape: the transition partner carries ~"
            << alpha / beta << "x the concentration of each transversion "
            << "partner, mirroring the mutation bias.\n";
  return 0;
}
