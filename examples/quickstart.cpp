// Quickstart: compute a quasispecies distribution in a dozen lines.
//
// Models a virus population of chain length nu = 12 (4096 species) with a
// single-peak fitness landscape (the master sequence replicates twice as
// fast as every mutant) and a uniform per-position error rate p = 0.01,
// then prints the dominant species and the cumulative error-class
// concentrations.
//
//   $ ./quickstart [nu] [p]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  const double p = argc > 2 ? std::atof(argv[2]) : 0.01;

  // 1. Describe the model: mutation matrix Q (implicit, never stored) and
  //    fitness landscape F.
  const auto mutation = core::MutationModel::uniform(nu, p);
  const auto fitness = core::Landscape::single_peak(nu, /*peak=*/2.0, /*rest=*/1.0);

  // 2. Solve for the quasispecies: the dominant eigenpair of W = Q * F via
  //    the shifted power iteration on the fast mutation matrix product.
  const auto result = solvers::solve(mutation, fitness);
  if (!result.converged) {
    std::cerr << "solver did not converge (residual " << result.residual << ")\n";
    return 1;
  }

  std::cout << "chain length nu = " << nu << "  (N = " << sequence_count(nu)
            << " species), error rate p = " << p << "\n"
            << "dominant eigenvalue (mean fitness at equilibrium): "
            << result.eigenvalue << "\n"
            << "power iterations: " << result.iterations
            << ", residual: " << result.residual << "\n\n";

  std::cout << "top species by concentration:\n";
  // The master sequence and its one-mutant neighbours dominate below the
  // error threshold.
  std::vector<seq_t> order(8);
  for (seq_t rank = 0; rank < order.size(); ++rank) {
    seq_t best = 0;
    double best_value = -1.0;
    for (seq_t i = 0; i < result.concentrations.size(); ++i) {
      bool taken = false;
      for (seq_t r = 0; r < rank; ++r) taken |= (order[r] == i);
      if (!taken && result.concentrations[i] > best_value) {
        best = i;
        best_value = result.concentrations[i];
      }
    }
    order[rank] = best;
    std::cout << "  X_" << best << "  (distance " << hamming_weight(best)
              << " from master): " << best_value << "\n";
  }

  std::cout << "\ncumulative error-class concentrations [Gamma_k]:\n";
  for (unsigned k = 0; k <= nu; ++k) {
    std::cout << "  [Gamma_" << k << "] = " << result.class_concentrations[k]
              << "\n";
  }
  return 0;
}
