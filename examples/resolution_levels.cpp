// Resolution levels: marginal concentrations and linkage (the paper's
// concluding future-work item, implemented).
//
// "…efficient methods which allow for computing quasispecies concentrations
// at various resolution levels."  Full per-sequence resolution is one
// extreme and error classes the other; in between sit *marginals*: the
// joint concentration of a chosen subset of positions with everything else
// summed out.  This example shows three levels on one problem —
// per-sequence, two-site joint (with linkage disequilibrium), and error
// classes — and then answers the same marginal queries on a chain of
// nu = 60 through a Kronecker landscape, where the implicit eigenvector
// makes them exact without ever forming 2^60 concentrations.
//
//   $ ./resolution_levels
#include <iostream>

#include "quasispecies.hpp"

int main() {
  using namespace qs;

  // --- Explicit vector, nu = 12 ------------------------------------------
  const unsigned nu = 12;
  const double p = 0.02;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto result = solvers::solve(model, landscape);
  if (!result.converged) {
    std::cerr << "solve failed\n";
    return 1;
  }

  std::cout << "single peak, nu = " << nu << ", p = " << p << "\n\n"
            << "level 1 — single sequences: x_0 = " << result.concentrations[0]
            << ", x_1 = " << result.concentrations[1] << "\n\n";

  std::cout << "level 2 — two-site joint (positions 0 and 1):\n";
  const auto joint =
      analysis::marginal_distribution(nu, result.concentrations, 0b11);
  std::cout << "  P(00) = " << joint[0] << "  P(10) = " << joint[1]
            << "  P(01) = " << joint[2] << "  P(11) = " << joint[3] << "\n"
            << "  linkage D = "
            << analysis::linkage_disequilibrium(nu, result.concentrations, 0, 1)
            << "  (mutations co-occur: the cloud is centred on the master)\n"
            << "  site correlation rho = "
            << analysis::site_correlation(nu, result.concentrations, 0, 1)
            << "\n\n";

  std::cout << "level 3 — error classes: [G0..G4] = ";
  for (unsigned k = 0; k <= 4; ++k) std::cout << result.class_concentrations[k] << " ";
  std::cout << "\n\nlevel 4 — population scalars: consensus = X_"
            << analysis::consensus_sequence(nu, result.concentrations)
            << ", cloud radius = "
            << analysis::mean_hamming_distance(nu, result.concentrations)
            << ", mutational load = "
            << analysis::mutational_load(landscape, result.concentrations) << "\n\n";

  // --- Implicit (Kronecker), nu = 60 --------------------------------------
  const unsigned big_nu = 60;
  Xoshiro256 rng(5);
  std::vector<std::vector<double>> factors;
  for (unsigned g = 0; g < 10; ++g) {
    std::vector<double> f(64);
    for (double& v : f) v = rng.uniform(0.8, 1.2);
    f[0] = 1.6;
    factors.push_back(std::move(f));
  }
  const core::KroneckerLandscape big_landscape(std::move(factors));
  const auto big_model = core::MutationModel::uniform(big_nu, 0.004);
  const auto kron = solvers::solve_kronecker(big_model, big_landscape);

  std::cout << "nu = " << big_nu << " (2^60 ~ 1.2e18 species, implicit "
            << "eigenvector): the same queries, exactly, from the factors\n";
  const seq_t mask = (seq_t{1} << 0) | (seq_t{1} << 30) | (seq_t{1} << 59);
  const auto big_marginal = kron.marginal_distribution(mask);
  std::cout << "  joint of positions {0, 30, 59}:\n";
  for (std::size_t c = 0; c < big_marginal.size(); ++c) {
    std::cout << "    config " << c << ": " << big_marginal[c] << "\n";
  }
  const auto classes = kron.class_concentrations();
  std::cout << "  error classes [G0..G3]: " << classes[0] << " " << classes[1]
            << " " << classes[2] << " " << classes[3] << "\n"
            << "\nevery number above at nu = 60 came from O(g * 2^g) factor "
               "work — no 2^nu object was ever formed.\n";
  return 0;
}
