// Generalized mutation processes (Section 2.2 of the paper).
//
// The classic quasispecies model assumes one uniform error rate p for every
// position — "one of the well known points of criticism".  The fast product
// only needs Kronecker structure, so this example builds three increasingly
// realistic mutation models at identical asymptotic cost:
//
//   1. uniform          — the classic model (baseline),
//   2. per-site         — a mutational hotspot plus transition/transversion
//                         style asymmetry (0->1 more likely than 1->0),
//   3. grouped          — two positions mutating dependently (at most one
//                         of the pair flips per replication event).
//
// and compares the resulting quasispecies distributions.
//
//   $ ./custom_mutation [nu]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  if (nu % 2 != 0) {
    std::cerr << "nu must be even (the grouped model pairs positions)\n";
    return 1;
  }
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);

  // 1. Classic uniform model.
  const auto uniform = core::MutationModel::uniform(nu, 0.01);

  // 2. Per-site: position nu/2 is a 10x hotspot, and all positions mutate
  //    0 -> 1 twice as often as 1 -> 0 (think deamination pressure).
  std::vector<transforms::Factor2> sites;
  for (unsigned k = 0; k < nu; ++k) {
    const double base = (k == nu / 2) ? 0.1 : 0.01;
    sites.push_back(core::asymmetric_site(/*p01=*/base, /*p10=*/base / 2.0));
  }
  const auto per_site = core::MutationModel::per_site(sites);

  // 3. Grouped: adjacent position pairs are coupled — a replication event
  //    flips at most one of the two with total probability 0.02.
  std::vector<linalg::DenseMatrix> groups;
  for (unsigned g = 0; g < nu / 2; ++g) {
    groups.push_back(core::coupled_single_flip_group(2, 0.02));
  }
  const auto grouped = core::MutationModel::grouped(std::move(groups));

  struct Row {
    const char* name;
    const core::MutationModel* model;
  };
  const Row rows[] = {{"uniform p=0.01", &uniform},
                      {"per-site hotspot+asymmetric", &per_site},
                      {"grouped pair-coupled", &grouped}};

  std::cout << "single-peak landscape, nu = " << nu << ": how the mutation "
            << "model shapes the quasispecies\n\n"
            << "model                          lambda_0     x_master    [G1]"
               "        time[s]   iters\n";
  for (const auto& row : rows) {
    Timer t;
    const auto result = solvers::solve(*row.model, landscape);
    std::printf("%-30s %-12.8f %-11.6f %-11.6f %-9.4f %u\n", row.name,
                result.eigenvalue, result.concentrations[0],
                result.class_concentrations[1], t.seconds(), result.iterations);
  }

  std::cout << "\nnotes:\n"
            << "  * the hotspot drains concentration from the master faster "
               "than the uniform model at the same typical rate;\n"
            << "  * the asymmetric 0->1 pressure skews the mutant cloud "
               "towards high Hamming classes;\n"
            << "  * the coupled pairs lower the total per-genome mutation "
               "yield (at most one flip per pair), stabilising the master;\n"
            << "  * all three run through the same Theta(N log2 N) product — "
               "generality is free (Section 2.2).\n";
  return 0;
}
