// Survival of the flattest: two competing quasispecies.
//
// A classic prediction of quasispecies theory (Schuster & Swetina 1988;
// Wilke et al. 2001): a *lower* fitness peak surrounded by a neutral
// plateau can outcompete a *higher* but sharper peak once the error rate is
// large, because selection acts on the mutant cloud's average replication
// rate, not on the peak height alone.  This example builds a two-peak
// landscape — a sharp peak at the master sequence against a flat plateau at
// the antipodal sequence — sweeps the error rate, and locates the crossover
// where the flat region takes over.
//
//   $ ./survival_of_the_flattest [nu]
#include <cstdlib>
#include <iostream>

#include "quasispecies.hpp"

namespace {

/// Total concentration within Hamming distance `radius` of `center`.
double region_mass(std::span<const double> x, qs::seq_t center,
                   unsigned radius) {
  double mass = 0.0;
  for (qs::seq_t i = 0; i < x.size(); ++i) {
    if (qs::hamming_distance(i, center) <= radius) mass += x[i];
  }
  return mass;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qs;
  const unsigned nu = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  const seq_t sharp_master = 0;
  const seq_t flat_master = sequence_count(nu) - 1;  // antipode

  // Sharp peak: fitness 4.0 on one sequence.  Flat peak: fitness 3.0 on the
  // antipode AND all its one-mutant neighbours (a neutral plateau of nu+1
  // sequences).  Background 1.0.
  std::vector<double> values(sequence_count(nu), 1.0);
  values[sharp_master] = 4.0;
  values[flat_master] = 3.0;
  for (unsigned b = 0; b < nu; ++b) values[flat_master ^ (seq_t{1} << b)] = 3.0;
  const auto landscape = core::Landscape::from_values(nu, std::move(values));

  std::cout << "survival of the flattest, nu = " << nu
            << ": sharp peak f = 4.0 (1 sequence) vs flat peak f = 3.0 ("
            << nu + 1 << " sequences)\n\n"
            << "  p        lambda_0   mass(sharp r<=2)  mass(flat r<=2)  winner\n";

  double crossover_lo = 0.0, crossover_hi = 0.0;
  bool sharp_was_winning = true;
  for (double p : {0.002, 0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.1, 0.13}) {
    const auto model = core::MutationModel::uniform(nu, p);
    solvers::SolveOptions opts;
    opts.tolerance = 1e-10;  // the gap closes near the crossover
    const auto r = solvers::solve(model, landscape, opts);
    const double sharp_mass = region_mass(r.concentrations, sharp_master, 2);
    const double flat_mass = region_mass(r.concentrations, flat_master, 2);
    const bool sharp_wins = sharp_mass > flat_mass;
    std::printf("  %.3f    %.5f    %.4f            %.4f           %s\n", p,
                r.eigenvalue, sharp_mass, flat_mass,
                sharp_wins ? "sharp (higher)" : "FLAT (lower!)");
    if (sharp_was_winning && !sharp_wins && crossover_hi == 0.0) {
      crossover_hi = p;
    }
    if (sharp_wins) crossover_lo = p;
    sharp_was_winning = sharp_wins;
  }

  if (crossover_hi > 0.0) {
    std::cout << "\ncrossover between p = " << crossover_lo << " and p = "
              << crossover_hi
              << ": beyond it the *lower* peak wins on mutational "
                 "robustness — selection acts on the quasispecies (cloud), "
                 "not the single fittest sequence.  This is only computable "
                 "because the landscape is fully general (two peaks + "
                 "plateau fit no error-class or Kronecker structure): "
                 "exactly the regime the paper's fast general solver opens "
                 "up.\n";
  } else {
    std::cout << "\nno crossover in the scanned range (increase nu or flatten "
                 "the plateau).\n";
  }
  return 0;
}
